"""Incremental cube maintenance for distributive/algebraic aggregates.

A warehouse keeps growing; recomputing the whole relaxed-cube lattice on
every batch of new facts is wasteful.  Because every cell is a fold of
per-fact contributions — and a fact's contribution to a cell does not
depend on other facts — appending facts updates each affected cell by
merging the delta's contribution, for *any* of our aggregate functions
(COUNT/SUM are distributive; AVG/MIN/MAX keep partial states).

Deletion is supported for the invertible aggregates (COUNT, SUM, AVG)
by subtracting contributions; MIN/MAX would need recomputation and are
rejected.

Cells store ``(partial_state, support_count)`` and finalize on read, so
algebraic aggregates stay exact and fully-retracted groups disappear.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.core.aggregates import AggregateFunction
from repro.core.bindings import FactRow, FactTable, GroupKey
from repro.core.cube import CubeResult
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint
from repro.errors import CubeError
from repro import obs

_INVERTIBLE = {"COUNT", "SUM", "AVG"}


class IncrementalCube:
    """A full cube maintained under fact insertions (and deletions).

    Args:
        table: the (initially possibly empty) fact table; its lattice
            and aggregate define the cube.
    """

    def __init__(self, table: FactTable) -> None:
        self.table = table
        self.lattice = table.lattice
        self.fn: AggregateFunction = table.aggregate.fn
        # point -> key -> (partial state, supporting fact count)
        self._cells: Dict[LatticePoint, Dict[GroupKey, Tuple[Any, int]]] = {
            point: {} for point in self.lattice.points()
        }
        self.applied_rows = 0
        if table.rows:
            self.insert(list(table.rows), _already_in_table=True)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert(
        self, rows: Iterable[FactRow], _already_in_table: bool = False
    ) -> int:
        """Fold new facts into every affected cell.  Returns the number
        of cell updates performed."""
        rows = list(rows)
        if not _already_in_table:
            self.table.rows.extend(rows)
        updates = 0
        with obs.span(
            "incremental.insert", category="incremental", rows=len(rows)
        ) as span:
            for row in rows:
                for point in self.lattice.points():
                    cells = self._cells[point]
                    for key in self.table.key_combinations(row, point):
                        state, support = cells.get(key, (self.fn.new(), 0))
                        cells[key] = (
                            self.fn.add(state, row.measure),
                            support + 1,
                        )
                        updates += 1
                self.applied_rows += 1
            span.annotate(updates=updates)
        obs.count("x3_incremental_updates_total", updates, op="insert")
        return updates

    def delete(self, rows: Iterable[FactRow]) -> int:
        """Retract facts (COUNT/SUM/AVG only)."""
        name = self.table.aggregate.function.upper()
        if name not in _INVERTIBLE:
            raise CubeError(
                f"{name} is not invertible; deletion requires recompute"
            )
        rows = list(rows)
        removed_ids = {row.fact_id for row in rows}
        before = len(self.table.rows)
        self.table.rows = [
            row for row in self.table.rows if row.fact_id not in removed_ids
        ]
        if before - len(self.table.rows) != len(rows):
            raise CubeError("attempted to delete facts not in the table")
        updates = 0
        with obs.span(
            "incremental.delete", category="incremental", rows=len(rows)
        ) as span:
            for row in rows:
                for point in self.lattice.points():
                    cells = self._cells[point]
                    for key in self.table.key_combinations(row, point):
                        if key not in cells:
                            raise CubeError(
                                "retracting from a non-existent cell"
                            )
                        state, support = cells[key]
                        state = _subtract(name, state, row.measure)
                        support -= 1
                        if support <= 0:
                            del cells[key]
                        else:
                            cells[key] = (state, support)
                        updates += 1
                self.applied_rows -= 1
            span.annotate(updates=updates)
        obs.count("x3_incremental_updates_total", updates, op="delete")
        return updates

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def cuboid(self, point: LatticePoint) -> Cuboid:
        return {
            key: self.fn.finalize(state)
            for key, (state, _) in self._cells[point].items()
        }

    def as_result(self) -> CubeResult:
        return CubeResult(
            lattice=self.lattice,
            cuboids={
                point: self.cuboid(point) for point in self.lattice.points()
            },
            algorithm="INCREMENTAL",
            aggregate=self.table.aggregate.function.upper(),
        )

    def cell(self, point: LatticePoint, key: GroupKey):
        entry = self._cells[point].get(key)
        return None if entry is None else self.fn.finalize(entry[0])


def _subtract(name: str, state: Any, measure: float) -> Any:
    if name == "COUNT":
        return state - 1
    if name == "SUM":
        return state - measure
    # AVG partial is (sum, count).
    return (state[0] - measure, state[1] - 1)


def split_rows(
    table: FactTable, initial_fraction: float
) -> Tuple[List[FactRow], List[FactRow]]:
    """Test/benchmark helper: split a table's rows into (initial, delta)."""
    cut = int(len(table.rows) * initial_fraction)
    return table.rows[:cut], table.rows[cut:]
