"""Unit tests for the CI perf-regression gate."""

import json
import pathlib

import pytest

import repro.bench.perfgate as perfgate
from repro.bench.perfgate import (
    ABSOLUTE_CEILINGS,
    ABSOLUTE_FLOORS,
    METRIC_DIRECTIONS,
    compare,
    load_baseline,
    main,
    write_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
COMMITTED_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "BENCH_baseline.json"
)

FAKE_METRICS = {
    "engine_serial_seconds": 1.0,
    "engine_parallel_critical_path_seconds": 0.5,
    "engine_modeled_speedup": 2.0,
    "serve_cold_seconds": 4.0,
    "serve_warm_seconds": 0.1,
    "serve_hit_rate": 0.9,
    "serve_p95_modeled_seconds": 0.002,
}


class TestCompare:
    def test_identical_metrics_pass(self):
        assert compare(FAKE_METRICS, dict(FAKE_METRICS), 0.25) == []

    def test_lower_is_better_regression_fails(self):
        worse = dict(FAKE_METRICS, engine_serial_seconds=1.3)
        failures = compare(worse, FAKE_METRICS, 0.25)
        assert len(failures) == 1
        assert "engine_serial_seconds" in failures[0]

    def test_lower_is_better_improvement_passes(self):
        better = dict(FAKE_METRICS, engine_serial_seconds=0.2)
        assert compare(better, FAKE_METRICS, 0.25) == []

    def test_higher_is_better_regression_fails(self):
        worse = dict(FAKE_METRICS, serve_hit_rate=0.5)
        failures = compare(worse, FAKE_METRICS, 0.25)
        assert len(failures) == 1
        assert "serve_hit_rate" in failures[0]

    def test_higher_is_better_improvement_passes(self):
        better = dict(FAKE_METRICS, engine_modeled_speedup=3.5)
        assert compare(better, FAKE_METRICS, 0.25) == []

    def test_within_tolerance_passes(self):
        slightly_worse = dict(FAKE_METRICS, serve_cold_seconds=4.9)
        assert compare(slightly_worse, FAKE_METRICS, 0.25) == []

    def test_metric_missing_from_baseline_ignored(self):
        baseline = dict(FAKE_METRICS)
        del baseline["serve_hit_rate"]
        assert compare(FAKE_METRICS, baseline, 0.25) == []

    def test_absolute_floor_fails_even_with_matching_baseline(self):
        metrics = dict(FAKE_METRICS, columnar_speedup_vs_dict=2.0)
        failures = compare(metrics, dict(metrics), 0.25)
        assert len(failures) == 1
        assert "absolute floor" in failures[0]

    def test_absolute_floor_cleared_passes(self):
        floor = ABSOLUTE_FLOORS["columnar_speedup_vs_dict"]
        metrics = dict(FAKE_METRICS, columnar_speedup_vs_dict=floor + 1.0)
        assert compare(metrics, dict(metrics), 0.25) == []

    def test_absolute_ceiling_fails_even_with_matching_baseline(self):
        metrics = dict(FAKE_METRICS, tracing_overhead_ratio=1.5)
        failures = compare(metrics, dict(metrics), 0.25)
        assert len(failures) == 1
        assert "absolute ceiling" in failures[0]
        assert "tracing_overhead_ratio" in failures[0]

    def test_absolute_ceiling_cleared_passes(self):
        ceiling = ABSOLUTE_CEILINGS["tracing_overhead_ratio"]
        metrics = dict(FAKE_METRICS, tracing_overhead_ratio=ceiling - 0.1)
        assert compare(metrics, dict(metrics), 0.25) == []


class TestReportRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "report.json"
        write_report(str(path), FAKE_METRICS)
        assert load_baseline(str(path)) == FAKE_METRICS
        document = json.loads(path.read_text())
        assert document["directions"] == METRIC_DIRECTIONS


class TestCommittedBaseline:
    def test_exists_and_covers_every_metric(self):
        baseline = load_baseline(str(COMMITTED_BASELINE))
        assert set(baseline) == set(METRIC_DIRECTIONS)
        assert all(value > 0 for value in baseline.values())


class TestMain:
    @pytest.fixture()
    def fake_collect(self, monkeypatch):
        monkeypatch.setattr(
            perfgate, "collect_metrics", lambda: dict(FAKE_METRICS)
        )

    def test_pass_against_matching_baseline(
        self, fake_collect, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        write_report(str(baseline), FAKE_METRICS)
        out = tmp_path / "BENCH_3.json"
        code = main(
            ["--baseline", str(baseline), "--out", str(out)]
        )
        assert code == 0
        assert "perf gate OK" in capsys.readouterr().out
        assert json.loads(out.read_text())["metrics"] == FAKE_METRICS

    def test_fails_on_regression(self, fake_collect, tmp_path, capsys):
        regressed = dict(FAKE_METRICS, serve_cold_seconds=1.0)
        baseline = tmp_path / "baseline.json"
        write_report(str(baseline), regressed)
        assert main(["--baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_update_writes_baseline(self, fake_collect, tmp_path):
        baseline = tmp_path / "baseline.json"
        code = main(["--baseline", str(baseline), "--update"])
        assert code == 0
        assert load_baseline(str(baseline)) == FAKE_METRICS

    def test_missing_baseline_is_an_error(
        self, fake_collect, tmp_path, capsys
    ):
        code = main(["--baseline", str(tmp_path / "absent.json")])
        assert code == 1
        assert "--update" in capsys.readouterr().err

    def test_wider_tolerance_tolerates(self, fake_collect, tmp_path):
        regressed = dict(FAKE_METRICS, serve_cold_seconds=2.5)
        baseline = tmp_path / "baseline.json"
        write_report(str(baseline), regressed)
        assert main(["--baseline", str(baseline)]) == 1
        assert (
            main(["--baseline", str(baseline), "--tolerance", "0.75"])
            == 0
        )
