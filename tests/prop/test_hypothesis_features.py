"""Property-based tests for the extension features: iceberg filtering,
materialized answering, and XML export round-trips on random tables."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axes import AxisSpec
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.cube import compute_cube
from repro.core.export import cube_from_xml, cube_to_xml
from repro.core.lattice import CubeLattice
from repro.core.materialize import MaterializedCube, select_views
from repro.core.properties import PropertyOracle
from repro.patterns.relaxation import Relaxation

VALUES = ["u", "v", "w", "x"]


@st.composite
def random_table(draw):
    axes = [
        AxisSpec.from_path("$a", "a", frozenset({Relaxation.LND})),
        AxisSpec.from_path("$b", "b", frozenset({Relaxation.LND})),
    ]
    lattice = CubeLattice(axes)
    rows = []
    for number in range(draw(st.integers(min_value=0, max_value=14))):
        axes_values = tuple(
            tuple(
                AnnotatedValue(value, 0b1)
                for value in draw(
                    st.lists(
                        st.sampled_from(VALUES), unique=True, max_size=2
                    )
                )
            )
            for _ in range(2)
        )
        rows.append(FactRow((0, number), 1.0, axes_values))
    return FactTable(lattice, rows)


@given(random_table(), st.integers(min_value=1, max_value=6))
@settings(max_examples=50, deadline=None)
def test_iceberg_equals_postfiltered_full(table, support):
    full = compute_cube(table, "BUC")
    iceberg = compute_cube(table, "BUC", min_support=support)
    for point, cuboid in full.cuboids.items():
        expected = {
            key: value for key, value in cuboid.items() if value >= support
        }
        assert iceberg.cuboids[point] == expected


@given(random_table())
@settings(max_examples=40, deadline=None)
def test_materialized_cube_answers_everything(table):
    oracle = PropertyOracle.from_data(table)
    selection = select_views(table, oracle, space_budget=500)
    materialized = MaterializedCube(table, selection, oracle)
    reference = compute_cube(table, "NAIVE")
    for point in table.lattice.points():
        assert materialized.cuboid(point) == reference.cuboids[point]


@given(random_table())
@settings(max_examples=40, deadline=None)
def test_cube_xml_round_trip(table):
    cube = compute_cube(table, "NAIVE")
    again = cube_from_xml(cube_to_xml(cube), table.lattice)
    assert again.same_contents(cube)
