"""Columnar-vs-dict benchmarks: the sweep kernel against COUNTER.

The acceptance signal is the duel (:func:`repro.bench.harness
.run_columnar_duel`): COUNTER and COLUMNAR on the same dense /
covered / disjoint table, results validated bit-identical.  CI runs the
duel at a reduced fact count to stay inside the job budget; the
committed ``BENCH_engine.json`` / ``BENCH_figures.json`` artifacts carry
the full 10^5-fact duel, where both speedups clear 5x.

The modeled speedup is deterministic (dictionary compression packs
~8x more entries per encoded page; the sweep folds 8 rows per modeled
CPU op), so it gets the hard bar.  Wall clock depends on the host, so
its bar is conservative.
"""

import pytest

from benchmarks.conftest import bench_once
from repro.bench.harness import run_columnar_duel

CI_DUEL_FACTS = 20_000
MODELED_TARGET = 3.0
WALL_TARGET = 1.5


@pytest.fixture(scope="module")
def duel():
    return run_columnar_duel(CI_DUEL_FACTS)


def test_duel_results_bit_identical(duel):
    runs, summary = duel
    columnar = next(run for run in runs if run.algorithm == "COLUMNAR")
    assert columnar.correct is True
    assert summary["identical"] is True


def test_duel_modeled_speedup(duel):
    _, summary = duel
    assert summary["modeled_speedup"] >= MODELED_TARGET, summary


def test_duel_wall_speedup(duel):
    _, summary = duel
    assert summary["wall_speedup"] >= WALL_TARGET, summary


def test_columnar_wall_on_bench_workload(benchmark, dense_cov_disj):
    reference = dense_cov_disj.run("NAIVE")
    result = bench_once(
        benchmark, lambda: dense_cov_disj.run("COLUMNAR")
    )
    assert result.same_contents(reference)


def test_columnar_modeled_speedup_on_bench_workload(dense_cov_disj):
    counter = dense_cov_disj.run("COUNTER")
    columnar = dense_cov_disj.run("COLUMNAR")
    speedup = (
        counter.cost.simulated_seconds / columnar.cost.simulated_seconds
    )
    assert speedup >= MODELED_TARGET, speedup
