"""Unit tests for the columnar encoding itself (layout, views, caching)."""

import pickle

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.columnar import (
    COLUMNAR_ENTRIES_PER_PAGE,
    ColumnarFactTable,
)
from repro.core.incremental import ingest_rows, retract_rows
from repro.core.lattice import CubeLattice
from repro.patterns.relaxation import Relaxation
from repro.testing import messy_workload, small_workload


def two_axis_table(rows):
    axes = [
        AxisSpec.from_path(
            "$a", "a", frozenset({Relaxation.LND, Relaxation.PC_AD})
        ),
        AxisSpec.from_path("$b", "b", frozenset({Relaxation.LND})),
    ]
    return FactTable(CubeLattice(axes), rows)


def make_row(number, a_values, b_values, measure=1.0):
    return FactRow(
        fact_id=(0, number),
        measure=measure,
        axes=(tuple(a_values), tuple(b_values)),
    )


class TestEncoding:
    def test_dictionary_first_seen_order(self):
        table = two_axis_table(
            [
                make_row(0, [AnnotatedValue("x", 0b11)], [AnnotatedValue("p", 1)]),
                make_row(1, [AnnotatedValue("y", 0b11)], [AnnotatedValue("p", 1)]),
                make_row(2, [AnnotatedValue("x", 0b11)], [AnnotatedValue("q", 1)]),
            ]
        )
        encoded = table.columnar()
        assert encoded.columns[0].dictionary == ("x", "y")
        assert encoded.columns[1].dictionary == ("p", "q")
        assert list(encoded.columns[0].codes) == [0, 1, 0]

    def test_offsets_address_multi_valued_rows(self):
        table = two_axis_table(
            [
                make_row(
                    0,
                    [AnnotatedValue("x", 0b11), AnnotatedValue("y", 0b10)],
                    [AnnotatedValue("p", 1)],
                ),
                make_row(1, [], [AnnotatedValue("p", 1)]),
                make_row(2, [AnnotatedValue("y", 0b11)], []),
            ]
        )
        encoded = table.columnar()
        assert list(encoded.columns[0].offsets) == [0, 2, 2, 3]
        assert list(encoded.columns[1].offsets) == [0, 1, 2, 2]

    def test_union_masks_are_participation_bits(self):
        table = two_axis_table(
            [
                make_row(
                    0,
                    [AnnotatedValue("x", 0b10), AnnotatedValue("y", 0b10)],
                    [AnnotatedValue("p", 1)],
                ),
                make_row(1, [AnnotatedValue("x", 0b11)], []),
            ]
        )
        encoded = table.columnar()
        # Row 0 binds axis $a only under PC-AD (bit 1), row 1 under both.
        assert list(encoded.columns[0].union_masks) == [0b10, 0b11]
        assert encoded.null_mask(0, 0) == bytes([1, 0])
        assert encoded.null_mask(0, 1) == bytes([0, 0])
        assert encoded.null_mask(1, 0) == bytes([0, 1])

    def test_state_view_flat_when_single_valued(self):
        table = two_axis_table(
            [
                make_row(0, [AnnotatedValue("x", 0b11)], [AnnotatedValue("p", 1)]),
                make_row(1, [], [AnnotatedValue("q", 1)]),
            ]
        )
        encoded = table.columnar()
        view = encoded.state_view(0, 0)
        assert view.per_row is None
        assert list(view.flat) == [0, -1]
        assert view.missing == 1
        assert view.codes_of(0) == (0,)
        assert view.codes_of(1) == ()

    def test_state_view_per_row_when_multi_valued(self):
        table = two_axis_table(
            [
                make_row(
                    0,
                    [AnnotatedValue("x", 0b11), AnnotatedValue("y", 0b11)],
                    [AnnotatedValue("p", 1)],
                ),
            ]
        )
        encoded = table.columnar()
        view = encoded.state_view(0, 0)
        assert view.flat is None
        assert view.per_row == ((0, 1),)

    def test_state_view_distinct_codes_despite_duplicates(self):
        # The same value annotated twice with different masks must count
        # once under a state both masks match (NAIVE's distinct rule).
        table = two_axis_table(
            [
                make_row(
                    0,
                    [AnnotatedValue("x", 0b11), AnnotatedValue("x", 0b10)],
                    [AnnotatedValue("p", 1)],
                ),
            ]
        )
        encoded = table.columnar()
        assert encoded.state_view(0, 1).codes_of(0) == (0,)
        assert encoded.values_under(0, 0, 1) == ("x",)

    def test_measures_and_fact_ids_lossless(self):
        table = two_axis_table(
            [
                make_row(0, [AnnotatedValue("x", 0b11)], [], measure=0.1),
                make_row(7, [AnnotatedValue("y", 0b11)], [], measure=-3.75),
            ]
        )
        encoded = table.columnar()
        assert list(encoded.measures) == [0.1, -3.75]
        decoded = encoded.to_fact_table()
        assert decoded.rows == table.rows

    def test_memoryview_accessors(self):
        table = small_workload(n_facts=10).fact_table()
        encoded = table.columnar()
        assert isinstance(encoded.measures_view(), memoryview)
        assert encoded.codes_view(0).format == "q"
        assert len(encoded.offsets_view(0)) == len(table) + 1

    def test_stats_and_pages(self):
        table = small_workload(n_facts=20).fact_table()
        encoded = table.columnar()
        stats = encoded.stats()
        assert stats["n_rows"] == 20
        assert stats["encoded_pages"] == max(
            1, -(-encoded.encoded_entries // COLUMNAR_ENTRIES_PER_PAGE)
        )


class TestSemanticsParity:
    @pytest.mark.parametrize("workload", ["regular", "messy"])
    def test_key_combinations_and_participates_match(self, workload):
        build = small_workload if workload == "regular" else messy_workload
        table = build().fact_table()
        encoded = table.columnar()
        for point in table.lattice.points():
            for index, row in enumerate(table.rows):
                assert encoded.key_combinations(index, point) == (
                    table.key_combinations(row, point)
                )
                assert encoded.participates(index, point) == (
                    table.participates(row, point)
                )

    def test_values_under_matches_rows(self):
        table = messy_workload().fact_table()
        encoded = table.columnar()
        for index, row in enumerate(table.rows):
            for position, states in enumerate(table.lattice.axis_states):
                for state in range(len(states.states)):
                    assert encoded.values_under(index, position, state) == (
                        tuple(row.values_under(position, state))
                    )


class TestCaching:
    def test_columnar_is_memoized(self):
        table = small_workload(n_facts=10).fact_table()
        assert table.columnar() is table.columnar()

    def test_ingest_invalidates(self):
        table = small_workload(n_facts=10).fact_table()
        first = table.columnar()
        ingest_rows(table, [table.rows[0]])
        second = table.columnar()
        assert second is not first
        assert second.n_rows == 11

    def test_retract_invalidates(self):
        table = small_workload(n_facts=10).fact_table()
        first = table.columnar()
        retract_rows(table, [table.rows[-1]])
        second = table.columnar()
        assert second is not first
        assert second.n_rows == 9

    def test_explicit_invalidation(self):
        table = small_workload(n_facts=10).fact_table()
        first = table.columnar()
        table.invalidate_columnar()
        assert table.columnar() is not first

    def test_pickle_drops_caches(self):
        table = small_workload(n_facts=10).fact_table()
        table.columnar()  # warm the table cache
        table.rows[0].values_under(0, 0)  # warm a row memo
        clone = pickle.loads(pickle.dumps(table))
        assert clone._columnar_cache is None
        assert "_values_cache" not in clone.rows[0].__dict__
        assert clone.rows == table.rows

    def test_values_under_memo_returns_same_answer(self):
        table = messy_workload().fact_table()
        row = table.rows[0]
        first = row.values_under(0, 0)
        again = row.values_under(0, 0)
        assert first == again
        fresh = FactRow(row.fact_id, row.measure, row.axes)
        assert fresh.values_under(0, 0) == first


class TestRoundTripAggregates:
    def test_aggregate_spec_preserved(self):
        table = small_workload(n_facts=5).fact_table()
        spec = AggregateSpec("SUM", "@m")
        table = FactTable(table.lattice, table.rows, spec)
        decoded = table.columnar().to_fact_table()
        assert decoded.aggregate == spec

    def test_empty_table(self):
        table = two_axis_table([])
        encoded = table.columnar()
        assert encoded.n_rows == 0
        assert encoded.to_fact_table().rows == []
        assert encoded.encoded_pages == 1

    def test_snapshot_is_json_shaped(self):
        import json

        table = small_workload(n_facts=6).fact_table()
        snapshot = table.columnar().snapshot()
        text = json.dumps(snapshot, sort_keys=True)
        assert json.loads(text) == snapshot

    def test_from_table_equals_accessor(self):
        table = small_workload(n_facts=6).fact_table()
        direct = ColumnarFactTable.from_table(table)
        assert direct.snapshot() == table.columnar().snapshot()
