"""Aggregate functions: distributive and algebraic, with partial states.

The cube algorithms only interact with aggregates through this protocol:

- :meth:`AggregateFunction.new` — an empty partial state;
- :meth:`AggregateFunction.add` — fold one fact's measure in;
- :meth:`AggregateFunction.merge` — combine two partials (what makes a
  function distributive/algebraic, and what roll-up uses);
- :meth:`AggregateFunction.finalize` — partial -> reported value.

COUNT counts *facts*; SUM/MIN/MAX/AVG fold a numeric measure extracted
from the fact (see :class:`AggregateSpec`).  The paper evaluates COUNT and
notes other distributive/algebraic operators behave similarly — all of
them are provided so the claim is testable here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import QueryError


class AggregateFunction:
    """Base protocol for aggregate functions over fact measures."""

    name = "?"

    def new(self) -> Any:
        raise NotImplementedError

    def add(self, state: Any, measure: float) -> Any:
        raise NotImplementedError

    def merge(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> float:
        raise NotImplementedError


class CountAggregate(AggregateFunction):
    """COUNT(fact): measures are ignored; every fact contributes 1."""

    name = "COUNT"

    def new(self) -> int:
        return 0

    def add(self, state: int, measure: float) -> int:
        return state + 1

    def merge(self, left: int, right: int) -> int:
        return left + right

    def finalize(self, state: int) -> float:
        return float(state)


class SumAggregate(AggregateFunction):
    name = "SUM"

    def new(self) -> float:
        return 0.0

    def add(self, state: float, measure: float) -> float:
        return state + measure

    def merge(self, left: float, right: float) -> float:
        return left + right

    def finalize(self, state: float) -> float:
        return state


class MinAggregate(AggregateFunction):
    name = "MIN"

    def new(self) -> Optional[float]:
        return None

    def add(self, state: Optional[float], measure: float) -> float:
        return measure if state is None else min(state, measure)

    def merge(
        self, left: Optional[float], right: Optional[float]
    ) -> Optional[float]:
        if left is None:
            return right
        if right is None:
            return left
        return min(left, right)

    def finalize(self, state: Optional[float]) -> float:
        if state is None:
            raise QueryError("MIN of an empty group")
        return state


class MaxAggregate(AggregateFunction):
    name = "MAX"

    def new(self) -> Optional[float]:
        return None

    def add(self, state: Optional[float], measure: float) -> float:
        return measure if state is None else max(state, measure)

    def merge(
        self, left: Optional[float], right: Optional[float]
    ) -> Optional[float]:
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)

    def finalize(self, state: Optional[float]) -> float:
        if state is None:
            raise QueryError("MAX of an empty group")
        return state


class AvgAggregate(AggregateFunction):
    """AVG: the canonical *algebraic* function — partial is (sum, count)."""

    name = "AVG"

    def new(self) -> Tuple[float, int]:
        return (0.0, 0)

    def add(self, state: Tuple[float, int], measure: float) -> Tuple[float, int]:
        return (state[0] + measure, state[1] + 1)

    def merge(
        self, left: Tuple[float, int], right: Tuple[float, int]
    ) -> Tuple[float, int]:
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state: Tuple[float, int]) -> float:
        if state[1] == 0:
            raise QueryError("AVG of an empty group")
        return state[0] / state[1]


_FUNCTIONS: Dict[str, AggregateFunction] = {
    "COUNT": CountAggregate(),
    "SUM": SumAggregate(),
    "MIN": MinAggregate(),
    "MAX": MaxAggregate(),
    "AVG": AvgAggregate(),
}


def get_function(name: str) -> AggregateFunction:
    try:
        return _FUNCTIONS[name.upper()]
    except KeyError:
        raise QueryError(f"unknown aggregate function {name!r}") from None


def registered_functions() -> Dict[str, AggregateFunction]:
    """Every registered aggregate, by name.

    The merge-law property tests quantify over this mapping, so a newly
    registered aggregate is automatically held to the associativity /
    commutativity / identity laws the distributed layers depend on.
    """
    return dict(_FUNCTIONS)


@dataclass(frozen=True)
class AggregateSpec:
    """What the RETURN clause computes.

    Attributes:
        function: COUNT / SUM / MIN / MAX / AVG.
        measure_path: relative path from the fact to a numeric measure
            (ignored by COUNT).  ``""`` means "the fact itself".
    """

    function: str = "COUNT"
    measure_path: str = ""

    def __post_init__(self) -> None:
        get_function(self.function)  # validate eagerly
        if self.function.upper() != "COUNT" and not self.measure_path:
            raise QueryError(
                f"{self.function} needs a measure path (e.g. '@price')"
            )

    @property
    def fn(self) -> AggregateFunction:
        return get_function(self.function)

    def __str__(self) -> str:
        inner = self.measure_path or "$fact"
        return f"{self.function.upper()}({inner})"
