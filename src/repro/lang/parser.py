"""The X^3QL recursive-descent parser.

Grammar (keywords case-insensitive, ``--`` comments, ``;`` separates
statements)::

    statement   := flwor | nav

    flwor       := FOR docbind (',' axisbind)*
                   x3op pathexpr BY byentry (',' byentry)*
                   RETURN NAME '(' pathexpr? ')' '.'?
    docbind     := VAR IN DOC '(' STRING ')' '//' NAME
    axisbind    := VAR IN VAR steps
    steps       := (('/' | '//') NAME)+
    x3op        := 'X^3' | 'X3' | 'X~3' | 'X"3'
    pathexpr    := VAR steps?
    byentry     := VAR '(' (NAME (',' NAME)*)? ')'

    nav         := EXPLAIN? verb NAME operand? clause*
    verb        := ROLLUP | DRILLDOWN | SLICE | DICE | CELL
    operand     := ON NAME ('=' STRING)?          -- drilldown / slice
                 | KEY '(' keypart (',' keypart)* ')'     -- cell
    keypart     := STRING | NULL
    clause      := BY assign (',' assign)*        -- each at most once
                 | WHERE pred (AND pred)*
                 | AT VERSION INT (',' INT)*
                 | WITHIN NUMBER unit?
                 | MEASURE NAME
    assign      := NAME (':' | '=') (NAME | STRING)
    pred        := NAME '=' STRING
                 | NAME IN '(' STRING (',' STRING)* ')'
    unit        := s | sec | secs | seconds | ms | millis | milliseconds

Every syntax error is a :class:`~repro.errors.QueryParseError` carrying
the 1-based source position of the offending token; running out of
input mid-statement sets its ``incomplete`` flag, which the REPL uses
to keep reading continuation lines.
"""

from __future__ import annotations

from typing import List, NoReturn, Optional, Tuple

from repro.errors import QueryParseError
from repro.lang.ast import (
    Assignment,
    AxisBinding,
    AxisRelaxations,
    NAV_VERBS,
    NavStatement,
    PathExpr,
    Pos,
    Predicate,
    Statement,
    X3Statement,
)
from repro.lang.tokens import Token, TokenKind, tokenize

#: ``WITHIN`` units, as a factor over seconds.
_UNITS = {
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "ms": 1e-3,
    "millis": 1e-3,
    "millisecond": 1e-3,
    "milliseconds": 1e-3,
}

_CLAUSE_KEYWORDS = ("BY", "WHERE", "AT", "WITHIN", "MEASURE")


class Parser:
    """One pass over a token list (see module docstring for grammar)."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind in (TokenKind.EOF, TokenKind.SEMI)

    def fail(self, message: str, token: Optional[Token] = None) -> NoReturn:
        token = token if token is not None else self.peek()
        raise QueryParseError(
            message,
            line=token.line,
            column=token.column,
            incomplete=token.kind is TokenKind.EOF,
        )

    def expect(self, kind: TokenKind, what: str = "") -> Token:
        token = self.peek()
        if token.kind is not kind:
            self.fail(
                f"expected {what or kind.value}, found {token.describe()}"
            )
        return self.advance()

    def is_keyword(self, word: str, ahead: int = 0) -> bool:
        token = self.peek(ahead)
        return (
            token.kind is TokenKind.NAME
            and token.text.upper() == word.upper()
        )

    def take_keyword(self, word: str) -> bool:
        if self.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not self.is_keyword(word):
            self.fail(f"expected '{word}', found {token.describe()}")
        return self.advance()

    def name(self, what: str) -> Token:
        return self.expect(TokenKind.NAME, what)

    @staticmethod
    def pos_of(token: Token) -> Pos:
        return Pos(token.line, token.column)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def statement(self) -> Statement:
        token = self.peek()
        if token.kind is TokenKind.EOF:
            self.fail("empty statement")
        if self.is_keyword("FOR"):
            return self.flwor()
        if self.is_keyword("EXPLAIN") or any(
            self.is_keyword(verb) for verb in NAV_VERBS
        ):
            return self.nav()
        self.fail(
            f"expected 'for' or a navigation verb "
            f"{'/'.join(NAV_VERBS)} or EXPLAIN, found {token.describe()}"
        )

    # ------------------------------------------------------------------
    # the FLWOR X^3 statement
    # ------------------------------------------------------------------
    def flwor(self) -> X3Statement:
        start = self.expect_keyword("FOR")
        fact_var, document, fact_tag = self.doc_binding()
        bindings: List[AxisBinding] = []
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            bindings.append(self.axis_binding())
        self.x3_operator()
        measure = self.path_expr()
        self.expect_keyword("BY")
        by: List[AxisRelaxations] = [self.by_entry()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            by.append(self.by_entry())
        self.expect_keyword("RETURN")
        aggregate = self.name("an aggregate function name")
        self.expect(TokenKind.LPAREN, "'('")
        arg: Optional[PathExpr] = None
        if self.peek().kind is TokenKind.VAR:
            arg = self.path_expr()
        self.expect(TokenKind.RPAREN, "')'")
        if self.peek().kind is TokenKind.DOT:
            self.advance()
        return X3Statement(
            document=document,
            fact_tag=fact_tag,
            fact_var=fact_var,
            bindings=tuple(bindings),
            measure=measure,
            by=tuple(by),
            aggregate=aggregate.text.upper(),
            aggregate_arg=arg,
            pos=self.pos_of(start),
        )

    def doc_binding(self) -> Tuple[str, str, str]:
        """``$b in doc("book.xml")//publication`` (must come first)."""
        var = self.expect(TokenKind.VAR, "the fact variable")
        self.expect_keyword("IN")
        if not self.is_keyword("DOC"):
            self.fail(
                'the first binding must be: $var in doc("...")//tag'
            )
        self.advance()
        self.expect(TokenKind.LPAREN, "'('")
        document = self.expect(TokenKind.STRING, "a document name")
        self.expect(TokenKind.RPAREN, "')'")
        self.expect(TokenKind.DSLASH, "'//'")
        tag = self.name("the fact tag")
        return var.text, str(document.value), tag.text

    def axis_binding(self) -> AxisBinding:
        var = self.expect(TokenKind.VAR, "an axis variable")
        self.expect_keyword("IN")
        source = self.expect(TokenKind.VAR, "the fact variable")
        path = self.steps(required=True)
        return AxisBinding(
            var=var.text,
            source_var=source.text,
            path=path,
            pos=self.pos_of(var),
        )

    def steps(self, required: bool) -> str:
        """Re-assemble ``(/|//) name`` steps into relative path text
        (leading single ``/`` dropped: the path is fact-relative)."""
        parts: List[str] = []
        while self.peek().kind in (TokenKind.SLASH, TokenKind.DSLASH):
            axis = self.advance()
            name = self.name("a step name")
            if axis.kind is TokenKind.DSLASH:
                parts.append(f"//{name.text}")
            elif parts:
                parts.append(f"/{name.text}")
            else:
                parts.append(name.text)
        if required and not parts:
            self.fail(
                f"expected a path step ('/name' or '//name'), found "
                f"{self.peek().describe()}"
            )
        return "".join(parts)

    def x3_operator(self) -> None:
        token = self.peek()
        if token.kind is TokenKind.X3OP or self.is_keyword("X3"):
            self.advance()
            return
        self.fail(
            f"expected the X^3 operator, found {token.describe()}"
        )

    def path_expr(self) -> PathExpr:
        var = self.expect(TokenKind.VAR, "a variable")
        path = self.steps(required=False)
        return PathExpr(var=var.text, path=path, pos=self.pos_of(var))

    def by_entry(self) -> AxisRelaxations:
        var = self.expect(TokenKind.VAR, "a grouping variable")
        self.expect(TokenKind.LPAREN, "'('")
        names: List[str] = []
        if self.peek().kind is not TokenKind.RPAREN:
            names.append(
                self.name("a relaxation name").text.upper()
            )
            while self.peek().kind is TokenKind.COMMA:
                self.advance()
                names.append(
                    self.name("a relaxation name").text.upper()
                )
        self.expect(TokenKind.RPAREN, "')'")
        return AxisRelaxations(
            var=var.text,
            relaxations=tuple(names),
            pos=self.pos_of(var),
        )

    # ------------------------------------------------------------------
    # the navigation statement
    # ------------------------------------------------------------------
    def nav(self) -> NavStatement:
        start = self.peek()
        explain = self.take_keyword("EXPLAIN")
        verb_token = self.peek()
        verb = next(
            (word for word in NAV_VERBS if self.is_keyword(word)), None
        )
        if verb is None:
            self.fail(
                f"expected a navigation verb {'/'.join(NAV_VERBS)}, "
                f"found {verb_token.describe()}"
            )
        self.advance()
        cube = self.name("a cube name")

        axis: Optional[str] = None
        value: Optional[str] = None
        key: Optional[Tuple[Optional[str], ...]] = None
        if verb in ("DRILLDOWN", "SLICE"):
            self.expect_keyword("ON")
            axis = self.name("a dimension name").text
            if verb == "SLICE":
                self.expect(TokenKind.EQ, "'='")
                value = str(
                    self.expect(TokenKind.STRING, "a value string").value
                )
        elif verb == "CELL":
            self.expect_keyword("KEY")
            key = self.key_tuple()

        group_by: Tuple[Assignment, ...] = ()
        where: Tuple[Predicate, ...] = ()
        at_version: Optional[Tuple[int, ...]] = None
        within: Optional[float] = None
        measure: Optional[str] = None
        seen: List[str] = []
        while not self.at_end():
            token = self.peek()
            keyword = next(
                (
                    word
                    for word in _CLAUSE_KEYWORDS
                    if self.is_keyword(word)
                ),
                None,
            )
            if keyword is None:
                self.fail(
                    f"expected a clause ({', '.join(_CLAUSE_KEYWORDS)}) "
                    f"or end of statement, found {token.describe()}"
                )
            if keyword in seen:
                self.fail(f"duplicate {keyword} clause", token)
            seen.append(keyword)
            self.advance()
            if keyword == "BY":
                group_by = self.assignments()
            elif keyword == "WHERE":
                where = self.predicates()
            elif keyword == "AT":
                self.expect_keyword("VERSION")
                at_version = self.int_list()
            elif keyword == "WITHIN":
                within = self.duration()
            else:  # MEASURE
                measure = self.name("an aggregate name").text.upper()
        return NavStatement(
            verb=verb,
            cube=cube.text,
            group_by=group_by,
            axis=axis,
            value=value,
            key=key,
            where=where,
            at_version=at_version,
            within_seconds=within,
            measure=measure,
            explain=explain,
            pos=self.pos_of(start),
        )

    def key_tuple(self) -> Tuple[Optional[str], ...]:
        self.expect(TokenKind.LPAREN, "'('")
        parts: List[Optional[str]] = [self.key_part()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            parts.append(self.key_part())
        self.expect(TokenKind.RPAREN, "')'")
        return tuple(parts)

    def key_part(self) -> Optional[str]:
        token = self.peek()
        if token.kind is TokenKind.STRING:
            self.advance()
            return str(token.value)
        if self.is_keyword("NULL"):
            self.advance()
            return None
        self.fail(
            f"expected a quoted key value or NULL, found "
            f"{token.describe()}"
        )

    def assignments(self) -> Tuple[Assignment, ...]:
        out = [self.assignment()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            out.append(self.assignment())
        return tuple(out)

    def assignment(self) -> Assignment:
        name = self.name("a dimension name")
        if self.peek().kind not in (TokenKind.COLON, TokenKind.EQ):
            self.fail(
                f"expected ':' after dimension {name.text!r}, found "
                f"{self.peek().describe()}"
            )
        self.advance()
        token = self.peek()
        if token.kind is TokenKind.NAME:
            self.advance()
            level = token.text
        elif token.kind is TokenKind.STRING:
            self.advance()
            level = str(token.value)
        else:
            self.fail(
                f"expected a level name for dimension {name.text!r}, "
                f"found {token.describe()}"
            )
        return Assignment(
            name=name.text, level=level, pos=self.pos_of(name)
        )

    def predicates(self) -> Tuple[Predicate, ...]:
        out = [self.predicate()]
        while self.take_keyword("AND"):
            out.append(self.predicate())
        return tuple(out)

    def predicate(self) -> Predicate:
        name = self.name("a dimension name")
        if self.peek().kind is TokenKind.EQ:
            self.advance()
            token = self.expect(TokenKind.STRING, "a value string")
            return Predicate(
                name=name.text,
                values=(str(token.value),),
                pos=self.pos_of(name),
            )
        if self.take_keyword("IN"):
            self.expect(TokenKind.LPAREN, "'('")
            values = [
                str(self.expect(TokenKind.STRING, "a value string").value)
            ]
            while self.peek().kind is TokenKind.COMMA:
                self.advance()
                values.append(
                    str(
                        self.expect(
                            TokenKind.STRING, "a value string"
                        ).value
                    )
                )
            self.expect(TokenKind.RPAREN, "')'")
            return Predicate(
                name=name.text,
                values=tuple(values),
                pos=self.pos_of(name),
            )
        self.fail(
            f"expected '=' or IN after dimension {name.text!r}, found "
            f"{self.peek().describe()}"
        )

    def int_list(self) -> Tuple[int, ...]:
        out = [self.integer()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            out.append(self.integer())
        return tuple(out)

    def integer(self) -> int:
        token = self.expect(TokenKind.NUMBER, "an integer")
        value = float(token.value)
        if value != int(value):
            self.fail(
                f"expected an integer, found {token.text!r}", token
            )
        return int(value)

    def duration(self) -> float:
        token = self.expect(TokenKind.NUMBER, "a duration")
        value = float(token.value)
        if self.peek().kind is TokenKind.NAME:
            unit = self.peek()
            factor = _UNITS.get(unit.text.lower())
            if factor is not None:
                self.advance()
                value *= factor
            elif unit.text.upper() not in _CLAUSE_KEYWORDS:
                self.fail(
                    f"unknown duration unit {unit.text!r} (use s or ms)",
                    unit,
                )
        return value


# ----------------------------------------------------------------------
# module-level entry points
# ----------------------------------------------------------------------
def parse_statement(text: str) -> Statement:
    """Parse exactly one statement (trailing ``;`` allowed).

    Raises :class:`~repro.errors.QueryParseError` — and nothing else —
    on any malformed input.
    """
    parser = Parser(tokenize(text))
    statement = parser.statement()
    while parser.peek().kind is TokenKind.SEMI:
        parser.advance()
    if parser.peek().kind is not TokenKind.EOF:
        parser.fail(
            f"unexpected {parser.peek().describe()} after the statement "
            f"(separate statements with ';')"
        )
    return statement


def parse_statements(text: str) -> List[Statement]:
    """Parse a ``;``-separated script into its statements."""
    parser = Parser(tokenize(text))
    out: List[Statement] = []
    while True:
        while parser.peek().kind is TokenKind.SEMI:
            parser.advance()
        if parser.peek().kind is TokenKind.EOF:
            return out
        out.append(parser.statement())
        if parser.peek().kind not in (TokenKind.SEMI, TokenKind.EOF):
            parser.fail(
                f"unexpected {parser.peek().describe()} after a "
                f"statement (separate statements with ';')"
            )
