"""Unit tests for the x3-server CLI."""

import json

import pytest

from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.server.cli import main, parse_tokens
from repro.errors import X3Error
from repro.xmlmodel.serializer import serialize


@pytest.fixture()
def inputs(tmp_path):
    query_path = tmp_path / "query.xq"
    query_path.write_text(QUERY1_TEXT)
    data_path = tmp_path / "data.xml"
    data_path.write_text(serialize(figure1_document()))
    return str(query_path), str(data_path)


class TestLoadgenMode:
    def test_default_run_reports_and_exits_zero(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data,
                "--clients", "2", "--requests", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "x3-server on http://127.0.0.1:" in out
        assert "serve backend" in out
        assert "loadgen: 16 requests from 2 clients" in out
        assert "16x200" in out
        assert "admission: 16 admitted, 0 rejected" in out
        assert "window:" in out

    def test_cluster_backend(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data,
                "--backend", "cluster", "--shards", "2",
                "--replicas", "1",
                "--clients", "2", "--requests", "5",
            ]
        )
        assert code == 0
        assert "cluster backend" in capsys.readouterr().out

    def test_latency_jsonl_written(self, inputs, tmp_path, capsys):
        query, data = inputs
        target = tmp_path / "latency.jsonl"
        code = main(
            [
                "--query", query, data,
                "--clients", "1", "--requests", "6",
                "--latency-jsonl", str(target),
            ]
        )
        assert code == 0
        assert f"wrote 6 latency records to {target}" in (
            capsys.readouterr().out
        )
        lines = target.read_text().splitlines()
        assert len(lines) == 6
        assert all(
            json.loads(line)["status"] == 200 for line in lines
        )

    def test_auth_token_drives_authenticated_loadgen(
        self, inputs, capsys
    ):
        query, data = inputs
        code = main(
            [
                "--query", query, data,
                "--auth-token", "s3cret=acme",
                "--clients", "1", "--requests", "5",
            ]
        )
        assert code == 0
        assert "5x200" in capsys.readouterr().out

    def test_custom_cube_name(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data,
                "--cube-name", "pubs",
                "--clients", "1", "--requests", "4",
            ]
        )
        assert code == 0
        assert "cube 'pubs'" in capsys.readouterr().out


class TestErrors:
    def test_missing_query_file(self, inputs, capsys):
        _, data = inputs
        assert main(["--query", "/nope/query.xq", data]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_auth_token_format(self, inputs, capsys):
        query, data = inputs
        assert (
            main(["--query", query, data, "--auth-token", "nosep"]) == 1
        )
        assert "TOKEN=TENANT" in capsys.readouterr().err


class TestParseTokens:
    def test_empty_is_open(self):
        assert parse_tokens(None).open
        assert parse_tokens([]).open

    def test_pairs_register_tenants(self):
        auth = parse_tokens(["a=t1", "b=t2"])
        assert not auth.open
        assert auth.authenticate({"Authorization": "Bearer a"}) == "t1"

    def test_malformed_pair_raises(self):
        with pytest.raises(X3Error):
            parse_tokens(["="])
        with pytest.raises(X3Error):
            parse_tokens(["only-token="])
