"""Unit tests for per-axis relaxation-state posets."""

import pytest

from repro.core.axes import AxisSpec
from repro.core.states import AxisStates
from repro.patterns.relaxation import Relaxation

ALL = frozenset({Relaxation.LND, Relaxation.SP, Relaxation.PC_AD})


def states_for(relaxations):
    axis = AxisSpec.from_path("$n", "author/name", frozenset(relaxations))
    return AxisStates.for_axis(axis)


class TestStructure:
    def test_lnd_only_two_states(self):
        states = states_for({Relaxation.LND})
        assert states.state_count == 2
        assert states.rigid_index == 0
        assert states.dropped_index == 1

    def test_one_structural_three_states(self):
        states = states_for({Relaxation.LND, Relaxation.PC_AD})
        assert states.state_count == 3

    def test_two_structural_five_states(self):
        states = states_for(ALL)
        assert states.state_count == 5
        assert states.states[0] == frozenset()
        assert states.states[-1] == {Relaxation.SP, Relaxation.PC_AD}

    def test_index_round_trip(self):
        states = states_for(ALL)
        for index, state in enumerate(states.states):
            assert states.index_of(state) == index


class TestOrder:
    def test_rigid_below_everything(self):
        states = states_for(ALL)
        for index in range(states.state_count):
            assert states.leq(states.rigid_index, index)

    def test_dropped_above_everything(self):
        states = states_for(ALL)
        for index in range(states.state_count):
            assert states.leq(index, states.dropped_index)
        assert not states.leq(states.dropped_index, states.rigid_index)

    def test_incomparable_singletons(self):
        states = states_for(ALL)
        sp = states.index_of(frozenset({Relaxation.SP}))
        pcad = states.index_of(frozenset({Relaxation.PC_AD}))
        assert not states.leq(sp, pcad)
        assert not states.leq(pcad, sp)


class TestSuccessors:
    def test_from_rigid(self):
        states = states_for(ALL)
        succ = set(states.successors(states.rigid_index))
        expected = {
            states.index_of(frozenset({Relaxation.SP})),
            states.index_of(frozenset({Relaxation.PC_AD})),
            states.dropped_index,
        }
        assert succ == expected

    def test_dropped_terminal(self):
        states = states_for(ALL)
        assert states.successors(states.dropped_index) == []

    def test_full_structural_goes_to_dropped(self):
        states = states_for(ALL)
        full = states.index_of(frozenset({Relaxation.SP, Relaxation.PC_AD}))
        assert states.successors(full) == [states.dropped_index]


class TestMasks:
    def test_upward_mask_monotone(self):
        states = states_for(ALL)
        rigid_mask = states.upward_mask(states.rigid_index)
        assert rigid_mask == (1 << len(states.states)) - 1
        full = states.index_of(frozenset({Relaxation.SP, Relaxation.PC_AD}))
        assert states.upward_mask(full) == 1 << full

    def test_dropped_has_no_mask(self):
        states = states_for(ALL)
        with pytest.raises(ValueError):
            states.mask_of(states.dropped_index)


class TestDescribe:
    def test_labels(self):
        states = states_for(ALL)
        labels = {states.describe(i) for i in range(states.state_count)}
        assert "rigid" in labels
        assert "LND" in labels
        assert "PC-AD+SP" in labels
