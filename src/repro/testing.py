"""Shared test/benchmark helpers (importable under ``PYTHONPATH=src``).

Both ``tests/conftest.py`` and ``benchmarks/conftest.py`` used to carry
their own copies of the workload builders; this module is the single
home.  The conftests keep only the thin ``@pytest.fixture`` wrappers so
that plain functions stay importable from anywhere (goldens, scripts,
property tests) without pytest in the loop.
"""

from __future__ import annotations

from repro.core.cube import ExecutionOptions, compute_cube
from repro.datagen.workload import WorkloadConfig, build_workload

BENCH_AXES = 4
BENCH_MEMORY = 4000


def small_workload(**overrides):
    """A fast controlled Treebank workload for algorithm tests."""
    defaults = dict(
        kind="treebank",
        n_facts=80,
        n_axes=3,
        density="dense",
        coverage=True,
        disjoint=True,
        seed=5,
    )
    defaults.update(overrides)
    return build_workload(WorkloadConfig(**defaults))


def messy_workload(**overrides):
    """Neither summarizability property holds."""
    defaults = dict(coverage=False, disjoint=False, seed=9)
    defaults.update(overrides)
    return small_workload(**defaults)


class PreparedWorkload:
    """A workload extracted once, reusable across benchmark runs."""

    def __init__(
        self, config: WorkloadConfig, memory_entries: int = BENCH_MEMORY
    ):
        self.config = config
        self.workload = build_workload(config)
        self.table = self.workload.fact_table()
        self.oracle = self.workload.oracle(self.table)
        self.memory_entries = memory_entries

    def run(
        self,
        algorithm: str,
        workers: int = 1,
        engine: str = "auto",
        encoding: str = "auto",
    ):
        return compute_cube(
            self.table,
            ExecutionOptions(
                algorithm=algorithm,
                oracle=self.oracle,
                memory_entries=self.memory_entries,
                workers=workers,
                engine=engine,
                encoding=encoding,
            ),
        )

    def simulated(self, algorithm: str) -> float:
        return self.run(algorithm).simulated_seconds


def treebank_workload(
    density, coverage, disjoint, n_facts=300, n_axes=BENCH_AXES
):
    """A prepared Treebank workload in one of the figure settings."""
    return PreparedWorkload(
        WorkloadConfig(
            kind="treebank",
            n_facts=n_facts,
            n_axes=n_axes,
            density=density,
            coverage=coverage,
            disjoint=disjoint,
        )
    )


def bench_once(benchmark, func):
    """Run a cube computation exactly once under pytest-benchmark.

    Cube runs are deterministic and seconds-long; multiple rounds add
    nothing but wall time.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
