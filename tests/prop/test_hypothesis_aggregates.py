"""Merge laws for every registered aggregate function.

The cluster's scatter-gather merge (and the engine's partition merge,
and roll-up) are only sound if, for every aggregate, ``merge`` is
associative and commutative with ``new()`` as identity, and merging
split folds equals folding everything — i.e. partial states form a
commutative monoid and the fold is a monoid homomorphism.  These tests
quantify over :func:`repro.core.aggregates.registered_functions`, so a
newly registered aggregate is automatically held to the same laws.

Measures are drawn as integer-valued floats: within 2**53 their
addition is exact, so the laws hold with ``==``, not approximately —
matching the bit-identity contract the serving and cluster tests assert.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import registered_functions
from repro.core.merge import (
    STATE_EXACT_AGGREGATES,
    finalize_states,
    merge_states,
)

FUNCTIONS = sorted(registered_functions())

measures = st.lists(
    st.integers(min_value=-(10**6), max_value=10**6).map(float),
    max_size=30,
)
nonempty_measures = st.lists(
    st.integers(min_value=-(10**6), max_value=10**6).map(float),
    min_size=1,
    max_size=30,
)


def fold(fn, values):
    state = fn.new()
    for value in values:
        state = fn.add(state, value)
    return state


@pytest.mark.parametrize("name", FUNCTIONS)
class TestMergeLaws:
    @settings(max_examples=60)
    @given(data=st.data())
    def test_identity(self, name, data):
        fn = registered_functions()[name]
        state = fold(fn, data.draw(measures))
        assert fn.merge(state, fn.new()) == state
        assert fn.merge(fn.new(), state) == state

    @settings(max_examples=60)
    @given(data=st.data())
    def test_commutative(self, name, data):
        fn = registered_functions()[name]
        left = fold(fn, data.draw(measures))
        right = fold(fn, data.draw(measures))
        assert fn.merge(left, right) == fn.merge(right, left)

    @settings(max_examples=60)
    @given(data=st.data())
    def test_associative(self, name, data):
        fn = registered_functions()[name]
        a = fold(fn, data.draw(measures))
        b = fold(fn, data.draw(measures))
        c = fold(fn, data.draw(measures))
        assert fn.merge(fn.merge(a, b), c) == fn.merge(
            a, fn.merge(b, c)
        )

    @settings(max_examples=60)
    @given(data=st.data())
    def test_merge_of_split_fold_equals_full_fold(self, name, data):
        """finalize(merge(fold(xs), fold(ys))) == finalize(fold(xs+ys)).

        This is exactly what the cluster does: each shard folds its
        slice of the facts, the coordinator merges the partials.
        """
        fn = registered_functions()[name]
        values = data.draw(nonempty_measures)
        split = data.draw(
            st.integers(min_value=0, max_value=len(values))
        )
        merged = fn.merge(
            fold(fn, values[:split]), fold(fn, values[split:])
        )
        assert fn.finalize(merged) == fn.finalize(fold(fn, values))

    @settings(max_examples=40)
    @given(data=st.data())
    def test_n_way_shard_merge(self, name, data):
        """The kernel's keyed merge over N shards equals one serial
        fold per key, independent of how facts landed on shards."""
        fn = registered_functions()[name]
        n_shards = data.draw(st.integers(min_value=1, max_value=5))
        keys = ["k0", "k1"]
        assignments = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(keys),
                    st.integers(min_value=0, max_value=n_shards - 1),
                    st.integers(min_value=-1000, max_value=1000).map(
                        float
                    ),
                ),
                min_size=1,
                max_size=25,
            )
        )
        shard_states = [{} for _ in range(n_shards)]
        serial = {}
        for key, shard, value in assignments:
            states = shard_states[shard]
            states[key] = fn.add(states.get(key, fn.new()), value)
            serial[key] = fn.add(serial.get(key, fn.new()), value)
        merged = merge_states(fn, shard_states)
        assert finalize_states(fn, merged) == {
            key: fn.finalize(state) for key, state in serial.items()
        }


class TestStateExactRegistry:
    def test_state_exact_functions_are_registered(self):
        assert STATE_EXACT_AGGREGATES <= set(FUNCTIONS)

    def test_avg_is_not_state_exact(self):
        # AVG's finalized value does not merge; the cluster must ship
        # its raw (sum, count) states instead.
        assert "AVG" not in STATE_EXACT_AGGREGATES
