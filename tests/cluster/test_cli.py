"""Unit tests for the x3-cluster CLI."""

import json

import pytest

from repro.cluster.cli import main, parse_shards, plan_writes, percentile
from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.errors import X3Error
from repro.testing import small_workload
from repro.xmlmodel.serializer import serialize


@pytest.fixture()
def inputs(tmp_path):
    query_path = tmp_path / "query.xq"
    query_path.write_text(QUERY1_TEXT)
    data_path = tmp_path / "data.xml"
    data_path.write_text(serialize(figure1_document()))
    return str(query_path), str(data_path)


class TestHelpers:
    def test_parse_shards(self):
        assert parse_shards("1,2,4") == [1, 2, 4]
        assert parse_shards("8") == [8]

    @pytest.mark.parametrize("bad", ["", "0", "-1,2", "two"])
    def test_parse_shards_rejects(self, bad):
        with pytest.raises(X3Error):
            parse_shards(bad)

    def test_percentile(self):
        values = [float(n) for n in range(1, 101)]
        assert percentile(values, 0.50) == pytest.approx(50.0, abs=1.0)
        assert percentile(values, 0.95) == pytest.approx(95.0, abs=1.0)
        assert percentile([], 0.95) == 0.0

    def test_plan_writes_balanced_and_deterministic(self):
        rows = small_workload().fact_table().rows
        plan = plan_writes(rows, requests=60, writes=4)
        assert plan == plan_writes(rows, requests=60, writes=4)
        ops = [op for op, _ in plan.values()]
        assert ops.count("delete") == ops.count("insert")
        assert all(0 < position < 60 for position in plan)

    def test_plan_writes_empty(self):
        rows = small_workload().fact_table().rows
        assert plan_writes(rows, 50, 0) == {}
        assert plan_writes([], 50, 3) == {}


class TestReplay:
    def test_default_replay(self, inputs, capsys):
        query, data = inputs
        code = main(
            ["--query", query, data, "--requests", "30", "--shards", "1,2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 facts, 30 cuboids" in out
        assert "shards=1" in out and "shards=2" in out
        assert "throughput" in out and "p95" in out

    def test_replay_is_deterministic(self, inputs, capsys):
        query, data = inputs
        args = [
            "--query", query, data,
            "--requests", "25", "--shards", "2",
            "--chaos", "light", "--chaos-seed", "5",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_validate_against_serial_naive(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data,
                "--requests", "40", "--shards", "2,4",
                "--writes", "2", "--chaos", "light",
                "--chaos-seed", "5", "--validate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "validate: 40/40 answers match serial NAIVE" in out

    def test_chaos_summary_printed(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data,
                "--requests", "30", "--shards", "2",
                "--chaos", "heavy", "--chaos-seed", "3",
            ]
        )
        assert code == 0
        assert "chaos[heavy seed=3]" in capsys.readouterr().out

    def test_log_jsonl(self, inputs, tmp_path, capsys):
        query, data = inputs
        log_path = tmp_path / "events.jsonl"
        code = main(
            [
                "--query", query, data,
                "--requests", "20", "--shards", "2",
                "--chaos", "light", "--log-jsonl", str(log_path),
            ]
        )
        assert code == 0
        lines = log_path.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert all(event["type"] == "cluster" for event in events)
        assert any(event["kind"] == "read" for event in events)
        read = next(e for e in events if e["kind"] == "read")
        assert len(read["versions"]) == 2


class TestErrors:
    def test_bad_shards(self, inputs, capsys):
        query, data = inputs
        assert main(["--query", query, data, "--shards", "0"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_query(self, inputs, capsys):
        _, data = inputs
        assert main(["--query", "/nonexistent.xq", data]) == 1
        assert "error" in capsys.readouterr().err
