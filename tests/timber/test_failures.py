"""Failure injection: tiny resources, exhausted budgets, hostile inputs.

Production systems degrade, they don't corrupt: a one-frame buffer pool
must still return correct data (just slowly), a failed overflow must
raise rather than silently drop work, and hostile XML must be rejected
with positioned errors.
"""

import pytest

from repro.core.cube import compute_cube
from repro.core.extract import extract_from_db
from repro.datagen.publications import figure1_document, query1
from repro.errors import MemoryBudgetExceeded, XmlParseError
from repro.timber.database import TimberDB
from repro.timber.stats import MemoryBudget
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize


class TestTinyBufferPool:
    def test_one_frame_pool_still_correct(self):
        db = TimberDB(buffer_pages=1, page_capacity=2)
        db.load(serialize(figure1_document()))
        db.build_index()
        table = extract_from_db(db, query1())
        reference_db = TimberDB()
        reference_db.load(serialize(figure1_document()))
        reference = extract_from_db(reference_db, query1())
        assert len(table) == len(reference)
        for mine, theirs in zip(table.rows, reference.rows):
            assert mine.axes == theirs.axes

    def test_one_frame_pool_pays_io_on_rereference(self):
        """A warm roomy pool serves a second pass from cache; a one-frame
        pool re-reads everything."""

        def double_extract(buffer_pages):
            db = TimberDB(buffer_pages=buffer_pages, page_capacity=2)
            db.load(serialize(figure1_document()))
            db.build_index()
            db.reset_cost()
            extract_from_db(db, query1())
            first = db.cost.io.page_reads
            extract_from_db(db, query1())
            return first, db.cost.io.page_reads

        tiny_first, tiny_total = double_extract(1)
        roomy_first, roomy_total = double_extract(1024)
        assert roomy_total == roomy_first      # second pass fully cached
        assert tiny_total >= 2 * tiny_first    # second pass re-read


class TestBudgetExhaustion:
    def test_fail_on_overflow_raises(self):
        budget = MemoryBudget(8, fail_on_overflow=True)
        budget.acquire(8)
        with pytest.raises(MemoryBudgetExceeded):
            budget.acquire(1)

    def test_algorithms_survive_minimal_budget(self, fig1_table):
        reference = compute_cube(fig1_table, "NAIVE")
        for name in ("COUNTER", "BUC", "TD"):
            result = compute_cube(fig1_table, name, memory_entries=1)
            assert result.same_contents(reference), name

    def test_minimal_budget_costs_more(self, fig1_table):
        roomy = compute_cube(fig1_table, "TD", memory_entries=100_000)
        starved = compute_cube(fig1_table, "TD", memory_entries=4)
        assert starved.simulated_seconds > roomy.simulated_seconds


class TestHostileXml:
    @pytest.mark.parametrize(
        "payload",
        [
            "<a>" * 50,                          # never closed
            "<a>" + "&bogus;" + "</a>",          # undefined entity
            "<a b='1' b='2'/>",                  # duplicate attribute
            "<!DOCTYPE a [ <!ELEMENT",           # truncated DOCTYPE
            "<a><![CDATA[",                      # unterminated CDATA
        ],
    )
    def test_rejected_with_parse_error(self, payload):
        with pytest.raises(XmlParseError):
            parse(payload)

    def test_deep_nesting_survives(self):
        depth = 200
        text = "<a>" * depth + "</a>" * depth
        doc = parse(text)
        assert doc.max_depth() == depth - 1

    def test_db_load_rejects_malformed_without_partial_state(self):
        db = TimberDB()
        with pytest.raises(XmlParseError):
            db.load("<a><b></a>")
        assert db.document_count == 0


class TestEmptyInputs:
    def test_cube_of_empty_table(self):
        from repro.core.bindings import FactTable

        lattice = query1().lattice()
        table = FactTable(lattice, [])
        for name in ("NAIVE", "COUNTER", "BUC", "TD", "TDOPT", "TDOPTALL"):
            result = compute_cube(table, name)
            assert all(
                cuboid == {} for cuboid in result.cuboids.values()
            ), name

    def test_document_without_facts(self):
        doc = parse("<database><nothing/></database>")
        from repro.core.extract import extract_fact_table

        table = extract_fact_table(doc, query1())
        assert len(table) == 0
