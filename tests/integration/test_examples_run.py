"""Smoke tests: every shipped example runs end to end."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parents[2].joinpath("examples").glob("*.py")
)


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(path, capsys):
    module = load_module(path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_all_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "dblp_analytics",
        "treebank_regimes",
        "timber_store",
        "insurance_claims",
    } <= names
