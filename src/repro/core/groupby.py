"""Grouping primitives shared by the cube algorithms.

The canonical semantics (used by the NAIVE oracle, and what all correct
algorithms must reproduce): at a lattice point, a fact contributes to the
group of every *distinct* key combination of its axis values under the
point's states; within a group a fact counts once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.aggregates import AggregateFunction
from repro.core.bindings import FactRow, FactTable, GroupKey
from repro.core.lattice import LatticePoint

Cuboid = Dict[GroupKey, float]


def group_facts(
    table: FactTable, rows: List[FactRow], point: LatticePoint
) -> Dict[GroupKey, List[FactRow]]:
    """Group facts at a lattice point; a fact appears once per key."""
    groups: Dict[GroupKey, List[FactRow]] = {}
    for row in rows:
        for key in table.key_combinations(row, point):
            groups.setdefault(key, []).append(row)
    return groups


def aggregate_groups(
    groups: Dict[GroupKey, List[FactRow]], fn: AggregateFunction
) -> Cuboid:
    """Finalize grouped facts into a cuboid."""
    out: Cuboid = {}
    for key, members in groups.items():
        state = fn.new()
        for row in members:
            state = fn.add(state, row.measure)
        out[key] = fn.finalize(state)
    return out


def cuboid_from_rows(
    table: FactTable,
    rows: List[FactRow],
    point: LatticePoint,
    fn: AggregateFunction,
) -> Cuboid:
    """Canonical cuboid computation (grouping + aggregation)."""
    return aggregate_groups(group_facts(table, rows, point), fn)


def augmented_keys(
    table: FactTable, row: FactRow, point: LatticePoint
) -> List[Tuple[Optional[str], ...]]:
    """Key combinations *with null padding*: an axis with no value under
    its state contributes ``None`` instead of excluding the fact.  This is
    the "null value group" device of Sec. 3.5, used by top-down roll-ups
    to keep coverage-violating facts representable."""
    per_axis: List[List[Optional[str]]] = []
    for position, states in enumerate(table.lattice.axis_states):
        state = point[position]
        if states.is_dropped(state):
            continue
        values: List[Optional[str]] = list(
            row.values_under(position, state)
        )
        if not values:
            values = [None]
        per_axis.append(values)
    keys: List[Tuple[Optional[str], ...]] = [()]
    for values in per_axis:
        keys = [key + (value,) for key in keys for value in values]
    return keys


def strip_null_groups(cuboid: Cuboid) -> Cuboid:
    """Drop groups whose key contains a null component (reporting form)."""
    return {
        key: value
        for key, value in cuboid.items()
        if all(component is not None for component in key)
    }
