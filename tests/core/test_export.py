"""Unit + property tests for cube XML export/import."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cube import CubeResult, compute_cube
from repro.core.export import cube_from_xml, cube_to_xml
from repro.datagen.publications import query1
from repro.errors import CubeError


class TestRoundTrip:
    def test_figure1_cube_round_trips(self, fig1_table):
        cube = compute_cube(fig1_table, "BUC")
        text = cube_to_xml(cube, query=query1())
        again = cube_from_xml(text, fig1_table.lattice)
        assert again.same_contents(cube)
        assert again.algorithm == "BUC"
        assert again.aggregate == "COUNT"

    def test_axes_metadata_written(self, fig1_table):
        cube = compute_cube(fig1_table, "NAIVE")
        text = cube_to_xml(cube, query=query1())
        assert 'name="$n"' in text
        assert 'path="author/name"' in text
        assert "LND,PC-AD,SP" in text

    def test_partial_cube(self, fig1_table):
        top = fig1_table.lattice.top
        cube = compute_cube(fig1_table, "NAIVE", points=[top])
        again = cube_from_xml(
            cube_to_xml(cube), fig1_table.lattice
        )
        assert list(again.cuboids) == [top]

    def test_null_components_round_trip(self, fig1_table):
        cube = compute_cube(fig1_table, "NAIVE")
        point = fig1_table.lattice.top
        cube.cuboids[point][(None, "p1", "2003")] = 7.0
        again = cube_from_xml(cube_to_xml(cube), fig1_table.lattice)
        assert again.cuboids[point][(None, "p1", "2003")] == 7.0


class TestErrors:
    def test_wrong_root_rejected(self, fig1_table):
        with pytest.raises(CubeError):
            cube_from_xml("<notacube/>", fig1_table.lattice)

    def test_foreign_point_rejected(self, fig1_table):
        text = '<cube><cuboid point="$zz:rigid"/></cube>'
        with pytest.raises(CubeError):
            cube_from_xml(text, fig1_table.lattice)

    def test_arity_mismatch_rejected(self, fig1_table):
        text = (
            '<cube><cuboid point="$n:LND, $p:LND, $y:rigid">'
            '<group result="1.0"><k>a</k><k>b</k></group>'
            "</cuboid></cube>"
        )
        with pytest.raises(CubeError):
            cube_from_xml(text, fig1_table.lattice)


VALUE = st.text(
    alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
    min_size=1,
    max_size=8,
)


@given(
    st.dictionaries(
        st.tuples(VALUE, VALUE, VALUE),
        st.floats(
            min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        max_size=12,
    )
)
@settings(max_examples=50, deadline=None)
def test_random_cuboids_round_trip(cells):
    lattice = query1().lattice()
    cube = CubeResult(
        lattice=lattice,
        cuboids={lattice.top: dict(cells)},
        algorithm="NAIVE",
    )
    again = cube_from_xml(cube_to_xml(cube), lattice)
    assert again.cuboids[lattice.top] == cube.cuboids[lattice.top]
