"""Unit tests for the COUNTER algorithm's memory behaviour (Sec. 3.3)."""

from repro.core.cube import compute_cube
from tests.conftest import small_workload


def table_of(**overrides):
    return small_workload(**overrides).fact_table()


class TestPasses:
    def test_single_pass_when_fits(self, fig1_table):
        cube = compute_cube(fig1_table, "COUNTER", memory_entries=10_000)
        assert cube.passes == 1

    def test_multipass_when_tight(self):
        table = table_of(density="sparse", n_facts=120, n_axes=4)
        roomy = compute_cube(table, "COUNTER", memory_entries=100_000)
        tight = compute_cube(table, "COUNTER", memory_entries=100)
        assert roomy.passes == 1
        assert tight.passes > 1
        # Results stay correct either way.
        assert tight.same_contents(roomy)

    def test_more_axes_more_passes(self):
        def passes(n_axes):
            table = table_of(
                density="sparse", n_facts=100, n_axes=n_axes
            )
            return compute_cube(
                table, "COUNTER", memory_entries=500
            ).passes

        assert passes(5) >= passes(3)

    def test_thrashing_costs_io(self):
        table = table_of(density="sparse", n_facts=120, n_axes=4)
        roomy = compute_cube(table, "COUNTER", memory_entries=100_000)
        tight = compute_cube(table, "COUNTER", memory_entries=100)
        assert tight.cost["page_reads"] > roomy.cost["page_reads"]
        assert tight.simulated_seconds > roomy.simulated_seconds


class TestCombinatorialIncrement:
    def test_multi_valued_fact_increments_combinations(self, fig1_table):
        cube = compute_cube(fig1_table, "COUNTER")
        point = fig1_table.lattice.point_by_description(
            "$n:rigid, $p:rigid, $y:rigid"
        )
        # pub1 (2 authors) increments both (John,p1,2003) and
        # (Jane,p1,2003); pub2 (2 years) both (John,p2,2004/2005).
        assert cube.cuboids[point] == {
            ("John", "p1", "2003"): 1.0,
            ("Jane", "p1", "2003"): 1.0,
            ("John", "p2", "2004"): 1.0,
            ("John", "p2", "2005"): 1.0,
        }

    def test_correct_on_any_regime(self):
        for coverage in (True, False):
            for disjoint in (True, False):
                table = table_of(
                    coverage=coverage, disjoint=disjoint, n_facts=50
                )
                counter = compute_cube(table, "COUNTER")
                naive = compute_cube(table, "NAIVE")
                assert counter.same_contents(naive)
