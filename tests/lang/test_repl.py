"""Tests for the ``x3-sql`` REPL (transport-free Repl + CLI modes)."""

import io
import json

import pytest

from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.core.xq_parser import parse_x3_query
from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.lang.repl import Repl, _table, main
from repro.serve import CubeServer
from repro.server.model import CubeCatalog, LogicalCube


@pytest.fixture(scope="module")
def table():
    return extract_fact_table(
        [figure1_document()], parse_x3_query(QUERY1_TEXT)
    )


@pytest.fixture()
def repl(table):
    server = CubeServer(table, PropertyOracle.from_data(table))
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("pubs", server.lattice), server
    )
    out = io.StringIO()
    return Repl(catalog, out=out), out


class TestExecute:
    def test_rollup_prints_an_aligned_table(self, repl):
        shell, out = repl
        assert shell.execute("ROLLUP pubs BY n:detail, y:detail")
        text = out.getvalue()
        assert "n" in text.splitlines()[0]
        assert "value" in text.splitlines()[0]
        assert "John" in text
        assert "-- 4 rows" in text
        assert "tier" in text

    def test_cell_prints_the_value(self, repl):
        shell, out = repl
        assert shell.execute(
            "CELL pubs KEY ('John', '2003') BY n:detail, y:detail"
        )
        assert out.getvalue().splitlines()[0] == "1"
        assert "-- 1 cell" in out.getvalue()

    def test_missing_cell_prints_null(self, repl):
        shell, out = repl
        assert shell.execute(
            "CELL pubs KEY ('Nobody', '1999') BY n:detail, y:detail"
        )
        assert out.getvalue().splitlines()[0] == "NULL"

    def test_json_mode(self, repl):
        shell, out = repl
        shell.json_output = True
        assert shell.execute("ROLLUP pubs BY y:detail")
        payload = json.loads(out.getvalue())
        assert payload["kind"] == "aggregate"
        assert payload["point"] == "$n:LND, $p:LND, $y:rigid"

    def test_explain_statement(self, repl):
        shell, out = repl
        assert shell.execute("EXPLAIN ROLLUP pubs BY n:detail")
        payload = json.loads(out.getvalue())
        assert payload["kind"] == "aggregate"
        assert "rungs" in payload

    def test_flwor_definition(self, repl):
        shell, out = repl
        assert shell.execute(QUERY1_TEXT)
        text = out.getvalue()
        assert "for $b in doc" in text
        assert "30 lattice points" in text

    def test_several_statements_one_line(self, repl):
        shell, out = repl
        assert shell.execute("ROLLUP pubs; ROLLUP pubs BY y:detail")
        assert out.getvalue().count("-- ") == 2

    def test_parse_error_is_reported_not_raised(self, repl):
        shell, out = repl
        assert not shell.execute("ROLLUP")
        assert "error:" in out.getvalue()

    def test_compile_error_is_reported(self, repl):
        shell, out = repl
        assert not shell.execute("ROLLUP pubs BY bogus:detail")
        assert "no dimension" in out.getvalue()

    def test_unknown_cube_is_reported(self, repl):
        shell, out = repl
        assert not shell.execute("ROLLUP nope")
        assert "error:" in out.getvalue()

    def test_blank_input_is_fine(self, repl):
        shell, out = repl
        assert shell.execute("   \n  ")
        assert out.getvalue() == ""


class TestMeta:
    def test_quit_raises_eof(self, repl):
        shell, _ = repl
        for command in ("\\q", "\\quit", "\\exit"):
            with pytest.raises(EOFError):
                shell.execute(command)

    def test_help(self, repl):
        shell, out = repl
        assert shell.execute("\\help")
        assert "ROLLUP" in out.getvalue()
        assert "Meta commands" in out.getvalue()

    def test_cubes(self, repl):
        shell, out = repl
        assert shell.execute("\\cubes")
        assert "pubs" in out.getvalue()
        assert "30 lattice points" in out.getvalue()

    def test_json_toggle(self, repl):
        shell, out = repl
        assert shell.execute("\\json on")
        assert shell.json_output
        assert shell.execute("\\json off")
        assert not shell.json_output
        assert shell.execute("\\json")
        assert shell.json_output
        assert "json output" in out.getvalue()

    def test_explain_meta(self, repl):
        shell, out = repl
        assert shell.execute("\\explain ROLLUP pubs BY n:detail")
        payload = json.loads(out.getvalue())
        assert "rungs" in payload

    def test_explain_meta_definition(self, repl):
        shell, out = repl
        assert shell.execute("\\explain " + QUERY1_TEXT.strip())
        payload = json.loads(out.getvalue())
        assert payload["kind"] == "definition"

    def test_explain_meta_needs_an_argument(self, repl):
        shell, out = repl
        assert not shell.execute("\\explain")
        assert "usage" in out.getvalue()

    def test_explain_meta_reports_errors(self, repl):
        shell, out = repl
        assert not shell.execute("\\explain ROLLUP")
        assert "error:" in out.getvalue()

    def test_ast(self, repl):
        shell, out = repl
        assert shell.execute("\\ast ROLLUP pubs BY n:detail")
        assert "NavStatement" in out.getvalue()

    def test_unknown_meta(self, repl):
        shell, out = repl
        assert not shell.execute("\\frobnicate")
        assert "unknown meta command" in out.getvalue()


class TestTable:
    def test_alignment(self):
        text = _table(["a", "value"], [["x", "1"], ["longer", "23"]])
        lines = text.splitlines()
        assert lines[0] == "a      | value"
        assert lines[1] == "-------+------"
        assert lines[2] == "x      | 1"
        assert lines[3] == "longer | 23"

    def test_empty_rows(self):
        lines = _table(["a", "b"], []).splitlines()
        assert lines[0] == "a | b"


class TestMain:
    def test_demo_execute(self, capsys):
        assert main(
            ["--demo", "-c", "ROLLUP default BY n:detail, y:detail"]
        ) == 0
        captured = capsys.readouterr()
        assert "John" in captured.out

    def test_demo_execute_failure_exits_nonzero(self, capsys):
        assert main(["--demo", "-c", "ROLLUP nope"]) == 1
        assert "error:" in capsys.readouterr().out

    def test_demo_quit_command_stops(self, capsys):
        assert main(["--demo", "-c", "\\q", "-c", "ROLLUP default"]) == 0
        assert "-- " not in capsys.readouterr().out

    def test_demo_cluster_backend(self, capsys):
        assert main(
            [
                "--demo",
                "--backend",
                "cluster",
                "--shards",
                "2",
                "--json",
                "-c",
                "ROLLUP default BY y:detail",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tier"] == "scatter-gather"

    def test_demo_rejects_files(self, capsys):
        assert main(["--demo", "--query", "q.xq", "x.xml"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_files_require_query(self, capsys):
        assert main(["data.xml"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_stdin_mode(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("ROLLUP default BY y:detail;")
        )
        assert main(["--demo"]) == 0
        assert "-- " in capsys.readouterr().out

    def test_query_file_mode(self, tmp_path, capsys):
        from repro.xmlmodel.serializer import serialize

        query = tmp_path / "q.xq"
        query.write_text(QUERY1_TEXT)
        data = tmp_path / "d.xml"
        data.write_text(serialize(figure1_document()))
        assert main(
            [
                "--query",
                str(query),
                str(data),
                "--cube-name",
                "pubs",
                "-c",
                "ROLLUP pubs BY n:detail",
            ]
        ) == 0
        assert "Jane" in capsys.readouterr().out
