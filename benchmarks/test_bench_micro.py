"""Micro-benchmarks of the substrates: parser, structural join, pattern
matching (in-memory vs TimberDB), external sort."""

import pytest

from repro.datagen.publications import random_publications
from repro.patterns.match import match_db, match_document
from repro.patterns.parse import parse_pattern
from repro.timber.database import TimberDB
from repro.timber.external_sort import sorted_with_cost
from repro.timber.stats import CostModel, MemoryBudget
from repro.timber.structural_join import join_pairs
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize


@pytest.fixture(scope="module")
def warehouse_doc():
    return random_publications(400, seed=1)


@pytest.fixture(scope="module")
def warehouse_xml(warehouse_doc):
    return serialize(warehouse_doc)


@pytest.fixture(scope="module")
def warehouse_db(warehouse_xml):
    db = TimberDB()
    db.load(warehouse_xml)
    db.build_index()
    return db


def test_parser_throughput(benchmark, warehouse_xml):
    doc = benchmark(parse, warehouse_xml)
    assert doc.element_count() > 1000


def test_serializer_throughput(benchmark, warehouse_doc):
    text = benchmark(serialize, warehouse_doc)
    assert text.startswith("<database>")


def test_structural_join(benchmark, warehouse_db):
    publications = warehouse_db.postings("publication")
    names = warehouse_db.postings("name")

    def run():
        return join_pairs(publications, names, CostModel())

    pairs = benchmark(run)
    assert len(pairs) >= len(names)


PATTERN = "//publication[/author/name=$n][/year=$y]"


def test_pattern_match_memory(benchmark, warehouse_doc):
    pattern = parse_pattern(PATTERN)
    witnesses = benchmark(match_document, warehouse_doc, pattern)
    assert witnesses


def test_pattern_match_db(benchmark, warehouse_db):
    pattern = parse_pattern(PATTERN)
    witnesses = benchmark(match_db, warehouse_db, pattern)
    assert witnesses


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_external_sort(benchmark, n):
    data = list(range(n, 0, -1))

    def run():
        return sorted_with_cost(
            data, CostModel(), budget=MemoryBudget(512, entries_per_page=64)
        )

    out = benchmark(run)
    assert out[0] == 1


def test_holistic_twig_join(benchmark, warehouse_db):
    from repro.timber.twig_join import twig_join

    pattern = parse_pattern("//publication[/author/name][/year]")
    matches = benchmark(twig_join, warehouse_db, pattern)
    assert matches
