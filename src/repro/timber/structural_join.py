"""Stack-tree structural joins over sorted posting lists.

This is the classic Al-Khalifa et al. *stack-tree-desc* algorithm used by
TIMBER: given two posting streams sorted by (doc, start), produce all
(ancestor, descendant) — or (parent, child) — pairs in a single merge pass
with a stack of open ancestors.  Cost: one CPU op per stream advance and
per emitted pair; I/O is charged by the index scans feeding the streams.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.timber.stats import CostModel
from repro.timber.tag_index import Posting

JoinPair = Tuple[Posting, Posting]


def stack_tree_join(
    ancestors: Iterable[Posting],
    descendants: Iterable[Posting],
    cost: CostModel,
    parent_child: bool = False,
) -> Iterator[JoinPair]:
    """Join two sorted posting streams structurally.

    Args:
        ancestors: postings of the upper tag, sorted by (doc_id, start).
        descendants: postings of the lower tag, same order.
        cost: charged one CPU op per advance and per output pair.
        parent_child: if true, only emit pairs at adjacent levels.

    Yields:
        (ancestor_posting, descendant_posting) pairs grouped by
        descendant, in descendant document order.
    """
    anc_iter = iter(ancestors)
    desc_iter = iter(descendants)
    anc: Optional[Posting] = next(anc_iter, None)
    desc: Optional[Posting] = next(desc_iter, None)
    stack: List[Posting] = []

    while desc is not None:
        if anc is not None and anc.sort_key < desc.sort_key:
            # The ancestor candidate opens first: keep it only while it
            # can still cover upcoming descendants.
            _pop_closed(stack, anc, cost)
            stack.append(anc)
            anc = next(anc_iter, None)
            cost.charge_cpu()
            continue
        _pop_closed(stack, desc, cost)
        for open_anc in stack:
            if _covers(open_anc, desc):
                if parent_child and desc.level != open_anc.level + 1:
                    continue
                cost.charge_cpu()
                yield (open_anc, desc)
        desc = next(desc_iter, None)
        cost.charge_cpu()


def _pop_closed(stack: List[Posting], current: Posting, cost: CostModel) -> None:
    """Remove stack entries that end before ``current`` starts."""
    while stack and (
        stack[-1].doc_id != current.doc_id or stack[-1].end < current.start
    ):
        stack.pop()
        cost.charge_cpu()


def join_pairs(
    ancestors: List[Posting],
    descendants: List[Posting],
    cost: CostModel,
    parent_child: bool = False,
) -> List[JoinPair]:
    """Materialized convenience wrapper over :func:`stack_tree_join`."""
    from repro.obs import current_tracer

    tracer = current_tracer()
    if tracer.enabled:
        kind = "parent_child" if parent_child else "ancestor_descendant"
        with tracer.span(
            "timber.structural_join",
            category="timber",
            cost=cost,
            kind=kind,
            ancestors=len(ancestors),
            descendants=len(descendants),
        ) as span:
            pairs = list(
                stack_tree_join(
                    ancestors, descendants, cost, parent_child=parent_child
                )
            )
            span.annotate(pairs=len(pairs))
        tracer.metrics.counter("x3_join_pairs_total", join="structural").inc(
            len(pairs)
        )
        return pairs
    return list(
        stack_tree_join(ancestors, descendants, cost, parent_child=parent_child)
    )


def _covers(anc: Posting, desc: Posting) -> bool:
    return (
        anc.doc_id == desc.doc_id
        and anc.start < desc.start
        and desc.end <= anc.end
    )
