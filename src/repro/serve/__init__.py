"""``repro.serve`` — the concurrent cube-serving layer.

Turns the one-shot materialization story of paper Sec. 3.6 into a
runtime: :class:`CubeServer` answers cuboid/cell/slice/dice queries
from the cheapest *sound* source (cache, materialized view, guarded
roll-up, incremental cube, engine recompute), backed by the cost-aware
:class:`CuboidCache` and single-flight miss deduplication, and stays
exact under concurrent incremental writes.

Typical use::

    from repro.serve import CubeServer

    server = CubeServer(table, oracle, cache_cells=4096, view_cells=512)
    server.warm()
    cuboid = server.cuboid("$n:rigid, $p:LND, $y:rigid")
    server.insert(delta_rows)         # caches patched or evicted soundly
    print(server.stats().summary())
"""

from repro.serve.cache import CacheEntryInfo, CacheStats, CuboidCache
from repro.serve.server import CubeServer, Explanation, ServeStats, TIERS
from repro.serve.singleflight import SingleFlight

__all__ = [
    "CacheEntryInfo",
    "CacheStats",
    "CubeServer",
    "CuboidCache",
    "Explanation",
    "ServeStats",
    "SingleFlight",
    "TIERS",
]
