"""Bottom-up cube computation: BUC, BUCOPT, BUCCUST (paper Sec. 3.4).

The XMLized BottomUpCube recursion starts from the most relaxed cuboid
(all axes dropped: one group over the whole match set of the most relaxed
fully instantiated pattern) and recursively refines: for each axis after
the current one, for each of the axis's structural states, partition the
current fact set by the axis's values under that state and recurse into
each partition.  Each recursion node *is* one group of one cuboid (the
point keeps the instantiated axes at their chosen states and drops the
rest), so the whole lattice is produced in one traversal whose cost
tracks the total size of all partitions — which collapses quickly on
sparse cubes, BUC's classic strength.

Overlap handling (non-disjointness): a fact with several values on the
partitioning axis belongs to *several* partitions.

- ``BUC`` replicates the fact into every matching partition (the safe
  behaviour Sec. 3.4 requires: "consider all elements in the child cuboid
  for each parent cuboid restriction, including those that have already
  satisfied the restrictions for some other children") and pays the extra
  copy + bookkeeping per (fact, value) pair.
- ``BUCOPT`` assumes disjointness: it moves each fact into the partition
  of its *first* value — a cheaper single-placement pass (and no
  replication bookkeeping).  If the data is actually non-disjoint its
  cuboids are wrong, exactly as the paper reports in Fig. 9.
- ``BUCCUST`` (Sec. 4.5) consults the property oracle per (axis, state):
  the cheap placement where disjointness is guaranteed, the safe
  replication elsewhere — correct everywhere, faster than plain BUC.

Columnar execution (the default, ``ExecutionOptions(encoding="auto")``):
the recursion runs over the dictionary-encoded columns of
:class:`~repro.core.columnar.ColumnarFactTable`.  A partition is a
``(start, end)`` slice of a flat row-index buffer, refined per
(axis, state) by :meth:`~repro.core.columnar.ColumnarFactTable.partition_slices`
— stable code bucketing over the memoized :class:`StateView`
projections, so no per-partition sort is charged (dense per-axis code
domains make partitioning a counting sort); the union-mask bits drive
the coverage-gap pruning.  Exclusive placement is a vectorized gather
(one op per :data:`~repro.core.columnar.VECTOR_LANES` rows); safe
replication still pays scalar per-copy bookkeeping, which preserves the
BUCOPT < BUCCUST <= BUC cost ordering the figures show.  Group folds run
in base-row order over the measure column, so finalized floats are
bit-identical to NAIVE.  ``encoding="dict"`` pins the legacy
:class:`FactRow` path (what the duels time the columnar path against).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Set, Tuple

from repro import obs
from repro.core.algorithms.base import CubeAlgorithm, ExecutionContext
from repro.core.bindings import FactRow
from repro.core.columnar import ColumnarFactTable, vector_lanes
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint
from repro.timber.external_sort import sorted_with_cost


class BucAlgorithm(CubeAlgorithm):
    """Safe BUC: replication-based overlap handling."""

    name = "BUC"
    exploit_disjointness = False
    use_oracle = False

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        self._context = context
        self._wanted: Set[LatticePoint] = set(points)
        self._cuboids: Dict[LatticePoint, Cuboid] = {
            point: {} for point in points
        }
        self._fn = context.table.aggregate.fn
        self._fn_name = self._fn.name
        self._axis_count = context.table.lattice.axis_count
        if context.use_columnar:
            return self._compute_columnar(context)
        context.charge_base_scan()
        self._recurse(list(context.table.rows), 0, [], [])
        return self._cuboids, 1

    # ------------------------------------------------------------------
    # columnar path: recursion over code-range slices
    # ------------------------------------------------------------------
    def _compute_columnar(
        self, context: ExecutionContext
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        table = context.table
        with obs.span(
            "buc.encode", category="columnar", facts=len(table.rows)
        ):
            encoded = table.columnar()
        self._encoded: ColumnarFactTable = encoded
        # One sequential scan of the encoded table; the encode work is
        # charged every run so modeled cost never depends on whether the
        # memoized encoding was warm.
        context.charge_encoded_scan(encoded.encoded_pages)
        context.cost.charge_cpu(encoded.encoded_entries)
        rows: "array[int]" = array("q", range(encoded.n_rows))
        with obs.span(
            "buc.refine",
            category="columnar",
            facts=encoded.n_rows,
            points=len(self._wanted),
        ):
            self._recurse_columnar(rows, 0, len(rows), 0, [], [])
        return self._cuboids, 1

    def _recurse_columnar(
        self,
        rows: "array[int]",
        start: int,
        end: int,
        start_axis: int,
        inst: List[Tuple[int, int]],
        key: List[str],
    ) -> None:
        """One recursion node = one group of one cuboid, as a row slice."""
        size = end - start
        point = self._point_of(inst)
        if point in self._wanted and size:
            self._cuboids[point][tuple(key)] = self._fold_slice(
                rows, start, end
            )
            self._context.cost.charge_cpu(vector_lanes(size) + 1)
        if not size:
            return
        min_support = self._context.min_support
        if min_support > 0 and size < min_support:
            return
        lattice = self._context.lattice
        for axis_position in range(start_axis, self._axis_count):
            axis_states = lattice.axis_states[axis_position]
            dictionary = self._encoded.columns[axis_position].dictionary
            for state_index in range(len(axis_states.states)):
                refined, slices = self._partition_columnar(
                    rows, start, end, axis_position, state_index
                )
                for code, bucket_start, bucket_end in slices:
                    self._recurse_columnar(
                        refined,
                        bucket_start,
                        bucket_end,
                        axis_position + 1,
                        inst + [(axis_position, state_index)],
                        key + [dictionary[code]],
                    )

    def _fold_slice(
        self, rows: "array[int]", start: int, end: int
    ) -> float:
        """Fold one partition's measures in base-row order.

        The slice is strictly ascending in base-row index (stable
        bucketing), so the fold order — and therefore every finalized
        float — is identical to NAIVE's per-group fold.  COUNT and SUM
        short-circuit to forms that compute the exact same values.
        """
        fn = self._fn
        if self._fn_name == "COUNT":
            return fn.finalize(end - start)
        measures = self._encoded.measures
        if self._fn_name == "SUM":
            total = 0.0
            for i in range(start, end):
                total += measures[rows[i]]
            return fn.finalize(total)
        state = fn.new()
        add = fn.add
        for i in range(start, end):
            state = add(state, measures[rows[i]])
        return fn.finalize(state)

    def _partition_columnar(
        self,
        rows: "array[int]",
        start: int,
        end: int,
        axis_position: int,
        state_index: int,
    ) -> Tuple["array[int]", Tuple[Tuple[int, int, int], ...]]:
        """Refine a slice by (axis, state), charging the columnar model.

        Exclusive placement is one vectorized gather over the slice;
        safe replication pays the gather plus scalar per-copy identity
        bookkeeping (the replicas must be tracked, exactly like the dict
        path) — so proving disjointness still buys a strictly cheaper
        partition step.  A partition wider than the memory budget spills
        its placement buffer.
        """
        context = self._context
        fast = self._use_fast_partition(axis_position, state_index)
        refined, slices = self._encoded.partition_slices(
            rows, start, end, axis_position, state_index, exclusive=fast
        )
        placements = len(refined)
        context.cost.charge_cpu(vector_lanes(end - start))
        if not fast:
            context.cost.charge_cpu(2 * placements)
        if placements > context.budget.capacity_entries:
            context.charge_spill(placements)
        context.bump("buc_partition_calls")
        context.bump("buc_placements", placements)
        tracer = obs.current_tracer()
        if tracer.enabled:
            # The bucketing is a counting sort over the code domain —
            # record it under the sort counters so the trace still
            # accounts for every ordering pass the kernel performs.
            tracer.metrics.counter("x3_sorts_total", kind="counting").inc()
            tracer.metrics.counter(
                "x3_sorted_items_total", kind="counting"
            ).inc(placements)
        return refined, slices

    # ------------------------------------------------------------------
    def _recurse(
        self,
        rows: List[FactRow],
        start_axis: int,
        inst: List[Tuple[int, int]],
        key: List[str],
    ) -> None:
        """One recursion node = one group of one cuboid.

        ``inst`` holds (axis position, state index) for the instantiated
        axes (ascending positions); ``key`` the chosen values.
        """
        point = self._point_of(inst)
        if point in self._wanted and rows:
            state = self._fn.new()
            for row in rows:
                state = self._fn.add(state, row.measure)
            self._cuboids[point][tuple(key)] = self._fn.finalize(state)
            self._context.cost.charge_cpu(len(rows) + 1)
        if not rows:
            return
        lattice = self._context.table.lattice
        # Iceberg pruning (Beyer & Ramakrishnan): COUNT is monotone under
        # refinement, so a partition below the support threshold cannot
        # contain any qualifying subgroup.
        min_support = self._context.min_support
        if min_support > 0 and len(rows) < min_support:
            return
        for axis_position in range(start_axis, self._axis_count):
            axis_states = lattice.axis_states[axis_position]
            for state_index in range(len(axis_states.states)):
                partitions = self._partition(rows, axis_position, state_index)
                for value in sorted(partitions):
                    self._recurse(
                        partitions[value],
                        axis_position + 1,
                        inst + [(axis_position, state_index)],
                        key + [value],
                    )

    def _point_of(self, inst: List[Tuple[int, int]]) -> LatticePoint:
        lattice = self._context.table.lattice
        point = [
            states.dropped_index for states in lattice.axis_states
        ]
        for axis_position, state_index in inst:
            point[axis_position] = state_index
        return tuple(point)

    # ------------------------------------------------------------------
    def _partition(
        self, rows: List[FactRow], axis_position: int, state_index: int
    ) -> Dict[str, List[FactRow]]:
        """Partition facts by their axis values under one state.

        Facts with no value are excluded (the coverage gap).  The cost is
        a sort of the placement list (the paper partitions by sorting)
        plus per-placement CPU.
        """
        context = self._context
        fast = self._use_fast_partition(axis_position, state_index)
        placements: List[Tuple[str, FactRow]] = []
        for row in rows:
            values = row.values_under(axis_position, state_index)
            if not values:
                continue
            if fast:
                # Exclusive placement: disjointness assumed/guaranteed.
                placements.append((values[0], row))
                context.cost.charge_cpu()
            else:
                # Safe replication into every matching partition, plus
                # identity bookkeeping per copy.
                for value in values:
                    placements.append((value, row))
                    context.cost.charge_cpu(2)
        placements = sorted_with_cost(
            placements,
            context.cost,
            budget=context.budget,
            key=lambda placement: placement[0],
        )
        partitions: Dict[str, List[FactRow]] = {}
        for value, row in placements:
            partitions.setdefault(value, []).append(row)
        context.bump("buc_partition_calls")
        context.bump("buc_placements", len(placements))
        return partitions

    def _use_fast_partition(
        self, axis_position: int, state_index: int
    ) -> bool:
        if self.use_oracle:
            return self._context.oracle.axis_disjoint(
                axis_position, state_index
            )
        return self.exploit_disjointness


class BucOptAlgorithm(BucAlgorithm):
    """BUCOPT: assumes disjointness globally (wrong when it fails)."""

    name = "BUCOPT"
    exploit_disjointness = True
    use_oracle = False


class BucCustAlgorithm(BucAlgorithm):
    """BUCCUST: exploits disjointness exactly where the oracle proves it."""

    name = "BUCCUST"
    exploit_disjointness = False
    use_oracle = True
