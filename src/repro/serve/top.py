"""``x3-top`` — a live terminal dashboard over a cube-serving session.

Like ``top`` for the sound-source ladder: the tool replays the same
deterministic skewed workload as ``x3-serve`` against a
:class:`~repro.serve.server.CubeServer` and renders, per sliding
window, the latency quantiles (modeled and wall), hit ratio, eviction
churn and SLO burn rate, plus the tier breakdown, the hottest lattice
points and the cache residency table.

Two modes:

- one-shot (default): replay everything, print the final dashboard;
- ``--watch``: redraw the dashboard every ``--interval`` requests
  while the replay runs (ANSI clear between frames), ``top``-style.

``--html`` additionally writes the standalone HTML serving report
(:func:`repro.bench.report.format_serving_html`) and ``--jsonl`` dumps
the structured request log, so one command produces the artifacts CI
attaches to a smoke run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.query import Query
from repro.errors import X3Error
from repro.obs.live import WINDOW_QUANTILES, LiveTelemetry, WindowSnapshot
from repro.serve.cli import (
    add_workload_args,
    build_server,
    load_table,
    sample_points,
)
from repro.serve.server import TIERS, CubeServer

#: ANSI "clear screen, cursor home" prefix used between watch frames.
CLEAR = "\x1b[2J\x1b[H"


def _bar(value: int, peak: int, width: int = 24) -> str:
    if peak <= 0 or value <= 0:
        return ""
    return "#" * max(1, int(width * value / peak))


def render_dashboard(
    server: CubeServer,
    snapshots: Optional[List[WindowSnapshot]] = None,
    residency_rows: int = 10,
) -> str:
    """The full ``x3-top`` screen as a string (shared with tests and
    the HTML report)."""
    stats = server.stats()
    if snapshots is None:
        snapshots = server.telemetry.refresh_gauges()
    lines: List[str] = []
    lines.append(
        f"x3-top — cube serving @ version {stats.version}: "
        f"{stats.requests} requests, hit rate {stats.hit_rate:.0%}, "
        f"modeled {stats.modeled_cost_seconds:.4f}s vs cold "
        f"{stats.cold_cost_seconds:.4f}s "
        f"({stats.modeled_speedup:.1f}x), {stats.writes} writes"
    )
    lines.append("")
    header = (
        f"{'window':<8} {'req':>6} "
        + " ".join(f"{'p' + format(int(q * 100), '02d'):>9}" for q in WINDOW_QUANTILES)
        + f" {'hit%':>6} {'churn':>6} {'burn':>6}"
    )
    lines.append(header)
    for snap in snapshots:
        quantiles = " ".join(
            f"{snap.modeled_quantiles[q]:>9.2e}" for q in WINDOW_QUANTILES
        )
        lines.append(
            f"{format(snap.window_seconds, 'g') + 's':<8} "
            f"{snap.requests:>6} {quantiles} "
            f"{snap.hit_ratio:>6.0%} {snap.evictions:>6} "
            f"{snap.slo_burn_rate:>6.2f}"
        )
    lines.append("(modeled-latency quantiles; SLO burn = violating"
                 " fraction / error budget)")
    lines.append("")
    lines.append("ladder rungs")
    peak = max(stats.tiers.values(), default=0)
    for tier in TIERS:
        count = stats.tiers.get(tier, 0)
        if count:
            lines.append(
                f"  {tier:<12} {count:>6} {_bar(count, peak)}"
            )
    window = snapshots[0] if snapshots else None
    if window is not None and window.top_points:
        lines.append("")
        lines.append(
            f"hottest lattice points "
            f"({format(window.window_seconds, 'g')}s window)"
        )
        for point, count in window.top_points:
            lines.append(f"  {count:>6}  {point}")
    lines.append("")
    lines.append(
        f"cache residency: {stats.cache_used_cells}/"
        f"{stats.cache_budget_cells} cells, "
        f"{len(server.cache)} entries"
    )
    entries = sorted(
        server.cache.entries(), key=lambda e: (-e.size, e.point)
    )
    if entries:
        lines.append(
            f"  {'cells':>6} {'hits':>5} {'priority':>12}  point"
        )
        for entry in entries[:residency_rows]:
            lines.append(
                f"  {entry.size:>6} {entry.hits:>5} "
                f"{entry.priority:>12.4e}  "
                f"{server.lattice.describe(entry.point)}"
            )
        if len(entries) > residency_rows:
            lines.append(f"  ... {len(entries) - residency_rows} more")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-top",
        description=(
            "Live serving dashboard: sliding-window latency quantiles, "
            "SLO burn, hottest lattice points and cache residency."
        ),
    )
    add_workload_args(parser)
    parser.add_argument(
        "--watch",
        action="store_true",
        help="redraw the dashboard while the replay runs",
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=20,
        help="with --watch: requests between redraws (default 20)",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=0.01,
        help="SLO threshold on modeled request latency, in simulated"
        " seconds (default 0.01)",
    )
    parser.add_argument(
        "--windows",
        type=float,
        nargs="+",
        default=[60.0, 300.0],
        help="sliding-window lengths in seconds (default 60 300)",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=5,
        help="hottest lattice points shown per window (default 5)",
    )
    parser.add_argument(
        "--html",
        metavar="PATH",
        help="also write the standalone HTML serving report",
    )
    parser.add_argument(
        "--jsonl",
        metavar="PATH",
        help="also write the structured event log as JSON Lines",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        table = load_table(args)
    except (OSError, X3Error) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    telemetry = LiveTelemetry(
        windows=args.windows,
        slo_modeled_seconds=args.slo,
        top_k=args.top_k,
    )
    try:
        server = build_server(args, table, telemetry=telemetry)
        if args.warm:
            server.warm()
        replay = sample_points(table.lattice, args.requests, args.seed)
        for index, point in enumerate(replay, start=1):
            server.query(Query(point=point))
            if args.watch and index % max(1, args.interval) == 0:
                sys.stdout.write(CLEAR + render_dashboard(server) + "\n")
                sys.stdout.flush()
    except X3Error as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.watch:
        sys.stdout.write(CLEAR)
    print(render_dashboard(server))
    if args.jsonl:
        written = server.events.write_jsonl(args.jsonl)
        print(f"wrote {written} events to {args.jsonl}")
    if args.html:
        from repro.bench.report import format_serving_html

        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(format_serving_html(server))
        print(f"wrote HTML serving report to {args.html}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
