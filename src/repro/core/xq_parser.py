"""Parser for the paper's augmented FLWOR syntax (Query 1).

Accepted shape::

    for $b in doc("book.xml")//publication,
        $n in $b/author/name,
        $p in $b//publisher/@id,
        $y in $b/year
    X^3 $b/@id by $n (LND, SP, PC-AD),
        $p (LND, PC-AD),
        $y (LND)
    return COUNT($b).

``X^3`` may also be written ``X3`` or ``X~3`` (OCR variants of the
operator glyph).  The fact variable is whichever variable the ``doc()``
binding introduces; every axis path must be relative to it.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.query import X3Query
from repro.errors import QueryParseError
from repro.patterns.relaxation import Relaxation

_FOR_RE = re.compile(
    r"for\s+(?P<bindings>.+?)\s*(?:X\^?3|X~3|X\"3)\s+(?P<measurevar>\S+)"
    r"\s+by\s+(?P<byclause>.+?)\s*return\s+(?P<agg>\w+)"
    r"\s*\(\s*(?P<aggarg>[^)]*)\s*\)\s*\.?\s*$",
    re.DOTALL | re.IGNORECASE,
)
_DOC_RE = re.compile(
    r"(?P<var>\$\w+)\s+in\s+doc\(\"(?P<doc>[^\"]*)\"\)\s*//\s*(?P<tag>[\w:.-]+)"
)
_BIND_RE = re.compile(r"(?P<var>\$\w+)\s+in\s+(?P<path>\S+)")
_BY_RE = re.compile(
    r"(?P<var>\$\w+)\s*\((?P<relaxations>[^)]*)\)", re.DOTALL
)


def parse_x3_query(text: str) -> X3Query:
    """Parse an augmented FLWOR text into an :class:`X3Query`."""
    match = _FOR_RE.search(text.strip())
    if not match:
        raise QueryParseError(
            "query must have the shape: for ... X^3 <measure> by ... return AGG(...)"
        )
    bindings_text = match.group("bindings")
    doc_match = _DOC_RE.search(bindings_text)
    if not doc_match:
        raise QueryParseError(
            'the first binding must be: $var in doc("...")//tag'
        )
    fact_var = doc_match.group("var")
    document = doc_match.group("doc")
    fact_tag = doc_match.group("tag")

    # Axis bindings: every non-doc binding, in order.
    paths: Dict[str, str] = {}
    order: List[str] = []
    for binding in _split_top_level(bindings_text):
        if "doc(" in binding:
            continue
        bind_match = _BIND_RE.search(binding)
        if not bind_match:
            raise QueryParseError(f"cannot parse binding {binding.strip()!r}")
        var = bind_match.group("var")
        path = bind_match.group("path").rstrip(",")
        prefix = fact_var + "/"
        if path.startswith(fact_var + "//"):
            relative = "//" + path[len(fact_var) + 2 :]
        elif path.startswith(prefix):
            relative = path[len(prefix) :]
        else:
            raise QueryParseError(
                f"axis {var} must be relative to the fact variable {fact_var}"
            )
        paths[var] = relative
        order.append(var)

    # Measure: "$b/@id" or "$b".
    measure_var = match.group("measurevar").rstrip(",")
    fact_id_path = "@id"
    if measure_var.startswith(fact_var + "/"):
        fact_id_path = measure_var[len(fact_var) + 1 :]
    elif measure_var == fact_var:
        fact_id_path = ""

    # X^3 by-clause: per-variable relaxations.
    axes: List[AxisSpec] = []
    seen = set()
    for by_match in _BY_RE.finditer(match.group("byclause")):
        var = by_match.group("var")
        if var not in paths:
            raise QueryParseError(f"X^3 clause names unbound variable {var}")
        relaxations = frozenset(
            Relaxation.from_text(token)
            for token in by_match.group("relaxations").split(",")
            if token.strip()
        )
        axes.append(AxisSpec.from_path(var, paths[var], relaxations))
        seen.add(var)
    if not axes:
        raise QueryParseError("X^3 clause lists no axes")
    missing = [var for var in order if var not in seen]
    if missing:
        raise QueryParseError(
            f"bound variables missing from the X^3 clause: {missing}"
        )

    # RETURN clause.
    agg_name = match.group("agg").upper()
    agg_arg = match.group("aggarg").strip()
    measure_path = ""
    if agg_arg.startswith(fact_var + "/"):
        measure_path = agg_arg[len(fact_var) + 1 :]
    aggregate = AggregateSpec(agg_name, measure_path)

    return X3Query(
        fact_tag=fact_tag,
        axes=tuple(axes),
        aggregate=aggregate,
        fact_id_path=fact_id_path,
        document=document,
    )


def _split_top_level(text: str) -> List[str]:
    """Split the for-clause on commas not inside parentheses/quotes."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    in_quote = False
    for char in text:
        if char == '"':
            in_quote = not in_quote
        elif char == "(" and not in_quote:
            depth += 1
        elif char == ")" and not in_quote:
            depth -= 1
        if char == "," and depth == 0 and not in_quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts
