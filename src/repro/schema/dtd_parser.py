"""Parser for a practical DTD subset.

Supported declarations::

    <!ELEMENT tag (child1, child2?, child3*, child4+)>
    <!ELEMENT tag (a | b | c)*>
    <!ELEMENT tag (#PCDATA)>
    <!ELEMENT tag (#PCDATA | em)*>
    <!ELEMENT tag EMPTY>
    <!ELEMENT tag ANY>
    <!ATTLIST tag attr CDATA #REQUIRED>
    <!ATTLIST tag attr CDATA #IMPLIED>

Nested groups are flattened: the model only tracks per-child-type
cardinality (see :mod:`repro.schema.dtd`), so ``(a, (b | c)*)`` records
``a -> ONE``, ``b -> STAR``, ``c -> STAR``.  Children inside a choice group
are at least OPTIONAL (a conforming instance may pick the other branch).
Comments are skipped.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import DtdParseError
from repro.schema.dtd import AttributeDecl, Cardinality, Dtd, ElementDecl

_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w:.-]+)\s+(.*?)>", re.DOTALL)
_ATTLIST_RE = re.compile(r"<!ATTLIST\s+([\w:.-]+)\s+(.*?)>", re.DOTALL)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_ATTDEF_RE = re.compile(
    r"([\w:.-]+)\s+(?:CDATA|ID|IDREF|IDREFS|NMTOKEN|NMTOKENS|\([^)]*\))\s+"
    r"(#REQUIRED|#IMPLIED|#FIXED\s+\"[^\"]*\"|\"[^\"]*\"|'[^']*')"
)


def parse_dtd(text: str, root: str = "") -> Dtd:
    """Parse DTD text into a :class:`Dtd`.

    Args:
        text: the DTD source (element/attlist declarations).
        root: optional explicit root tag; defaults to the first declared
            element.
    """
    cleaned = _COMMENT_RE.sub("", text)
    dtd = Dtd(root=root or None)
    matched_any = False
    for match in _ELEMENT_RE.finditer(cleaned):
        matched_any = True
        tag, content = match.group(1), match.group(2).strip()
        decl = ElementDecl(tag)
        _parse_content_model(content, decl)
        dtd.declare(decl)
    for match in _ATTLIST_RE.finditer(cleaned):
        matched_any = True
        tag, body = match.group(1), match.group(2)
        decl = dtd.get(tag)
        if decl is None:
            decl = dtd.declare(ElementDecl(tag))
        for attr_match in _ATTDEF_RE.finditer(body):
            name, default = attr_match.group(1), attr_match.group(2)
            decl.attributes[name] = AttributeDecl(
                name, required=default == "#REQUIRED"
            )
    if not matched_any and cleaned.strip():
        raise DtdParseError("no ELEMENT or ATTLIST declarations found")
    return dtd


def _parse_content_model(content: str, decl: ElementDecl) -> None:
    """Fill ``decl.children`` / ``decl.has_text`` from a content model."""
    content = content.strip()
    if content == "EMPTY":
        return
    if content == "ANY":
        decl.has_text = True
        return
    if not content.startswith("("):
        raise DtdParseError(
            f"bad content model for <!ELEMENT {decl.tag}>: {content!r}"
        )
    children, has_text = _parse_group(content, decl.tag)
    decl.has_text = has_text
    for tag, card in children:
        existing = decl.children.get(tag)
        if existing is None:
            decl.children[tag] = card
        else:
            # Same tag in several places: it may repeat.
            joined = Cardinality.join(existing, card)
            decl.children[tag] = Cardinality.join(joined, Cardinality.PLUS)


def _parse_group(
    content: str, owner: str
) -> Tuple[List[Tuple[str, Cardinality]], bool]:
    """Parse a parenthesized content group (recursively)."""
    tokens = _tokenize(content, owner)
    items, has_text, index = _parse_tokens(tokens, 0, owner)
    if index != len(tokens):
        raise DtdParseError(
            f"trailing tokens in content model of <!ELEMENT {owner}>"
        )
    return items, has_text


def _tokenize(content: str, owner: str) -> List[str]:
    tokens: List[str] = []
    index = 0
    while index < len(content):
        char = content[index]
        if char.isspace():
            index += 1
        elif char in "(),|?*+":
            tokens.append(char)
            index += 1
        elif char == "#":
            match = re.match(r"#\w+", content[index:])
            if not match:
                raise DtdParseError(f"bad token in content model of {owner}")
            tokens.append(match.group(0))
            index += len(match.group(0))
        else:
            match = re.match(r"[\w:.-]+", content[index:])
            if not match:
                raise DtdParseError(
                    f"unexpected character {char!r} in content model of {owner}"
                )
            tokens.append(match.group(0))
            index += len(match.group(0))
    return tokens


def _parse_tokens(
    tokens: List[str], index: int, owner: str
) -> Tuple[List[Tuple[str, Cardinality]], bool, int]:
    """Parse one parenthesized group starting at ``tokens[index] == '('``.

    Returns (children-with-cardinality, has_text, next index).
    """
    if index >= len(tokens) or tokens[index] != "(":
        raise DtdParseError(f"expected '(' in content model of {owner}")
    index += 1
    items: List[Tuple[str, Cardinality]] = []
    has_text = False
    is_choice = False
    branch_count = 1
    while index < len(tokens):
        token = tokens[index]
        if token == "(":
            inner, inner_text, index = _parse_tokens(tokens, index, owner)
            indicator, index = _take_indicator(tokens, index)
            items.extend(
                (tag, _apply_indicator(card, indicator)) for tag, card in inner
            )
            has_text = has_text or inner_text
        elif token == "#PCDATA":
            has_text = True
            index += 1
        elif token == ",":
            index += 1
        elif token == "|":
            is_choice = True
            branch_count += 1
            index += 1
        elif token == ")":
            index += 1
            indicator, index = _take_indicator(tokens, index)
            result = [
                (tag, _apply_indicator(card, indicator)) for tag, card in items
            ]
            if is_choice and branch_count > 1:
                # A choice with several branches makes each branch optional.
                result = [
                    (tag, Cardinality.join(card, Cardinality.OPTIONAL))
                    for tag, card in result
                ]
            return result, has_text, index
        else:
            tag = token
            index += 1
            indicator, index = _take_indicator(tokens, index)
            items.append((tag, Cardinality.from_indicator(indicator)))
    raise DtdParseError(f"unterminated group in content model of {owner}")


def _take_indicator(tokens: List[str], index: int) -> Tuple[str, int]:
    if index < len(tokens) and tokens[index] in "?*+":
        return tokens[index], index + 1
    return "", index


def _apply_indicator(card: Cardinality, indicator: str) -> Cardinality:
    if not indicator:
        return card
    outer = Cardinality.from_indicator(indicator)
    absent = card.may_be_absent or outer.may_be_absent
    repeat = card.may_repeat or outer.may_repeat
    if absent and repeat:
        return Cardinality.STAR
    if absent:
        return Cardinality.OPTIONAL
    if repeat:
        return Cardinality.PLUS
    return Cardinality.ONE
