"""Exception hierarchy for the X3 reproduction library.

Every error raised by this package derives from :class:`X3Error`, so callers
can catch one base class.  Sub-hierarchies mirror the subsystems: XML
parsing, schema handling, storage, pattern matching, and cube computation.
"""

from __future__ import annotations


class X3Error(Exception):
    """Base class for all errors raised by this library."""


class XmlError(X3Error):
    """Base class for XML data-model errors."""


class XmlParseError(XmlError):
    """Raised when an XML document cannot be parsed.

    Attributes:
        line: 1-based line of the offending input position.
        column: 1-based column of the offending input position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XmlStructureError(XmlError):
    """Raised when a document tree is manipulated inconsistently."""


class SchemaError(X3Error):
    """Base class for DTD/schema errors."""


class DtdParseError(SchemaError):
    """Raised when a DTD text cannot be parsed."""


class StorageError(X3Error):
    """Base class for the simulated storage layer."""


class PageError(StorageError):
    """Raised on invalid page access (bad id, overflow)."""


class BufferPoolError(StorageError):
    """Raised when the buffer pool cannot satisfy a request."""


class PatternError(X3Error):
    """Base class for tree-pattern errors."""


class PatternParseError(PatternError):
    """Raised when a textual tree-pattern cannot be parsed."""


class RelaxationError(PatternError):
    """Raised when a relaxation is not applicable to a pattern node."""


class QueryError(X3Error):
    """Base class for X3 query specification errors."""


class QueryParseError(QueryError):
    """Raised when an X^3QL / FLWOR text cannot be parsed.

    Attributes:
        line: 1-based line of the offending source position (0 when the
            error has no position, e.g. pre-tokenizer shape checks).
        column: 1-based column of the offending source position.
        incomplete: the parser ran out of input mid-statement — the text
            so far is a valid prefix.  The REPL uses this to keep
            reading continuation lines instead of reporting an error.
    """

    def __init__(
        self,
        message: str,
        *,
        line: int = 0,
        column: int = 0,
        incomplete: bool = False,
    ) -> None:
        self.line = line
        self.column = column
        self.incomplete = incomplete
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class CubeError(X3Error):
    """Base class for cube-computation errors."""


class AlgorithmPreconditionError(CubeError):
    """Raised when an optimized algorithm is run in ``strict`` mode on an
    input that violates the summarizability property it requires."""


class MemoryBudgetExceeded(CubeError):
    """Raised when an algorithm configured with ``fail_on_overflow`` exceeds
    its memory budget instead of spilling to multi-pass execution."""


class InvalidQuery(CubeError):
    """A structurally malformed query: an unknown lattice point or axis,
    a bad query kind, missing slice/dice operands, an impossible
    drilldown.  Serving entry points raise this instead of ad-hoc
    ``ValueError``/``KeyError`` so transports can map it 1:1 to a
    status code (HTTP 400)."""


class QueryCompileError(InvalidQuery):
    """A well-formed X^3QL statement that does not compile against the
    logical model: an unknown dimension or level, a filter on a verb
    that cannot carry one, a key on a non-cell query.  Subclasses
    :class:`InvalidQuery` so transports keep the HTTP 400 mapping;
    carries the source position of the offending clause.

    Attributes:
        line: 1-based source line of the offending clause (0: none).
        column: 1-based source column of the offending clause.
    """

    def __init__(
        self, message: str, *, line: int = 0, column: int = 0
    ) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class UnknownCube(X3Error):
    """A query named a cube the catalog does not hold (HTTP 404)."""

    def __init__(self, name: str, known: "tuple[str, ...]" = ()) -> None:
        self.name = name
        self.known = tuple(known)
        detail = f"; catalog has {sorted(self.known)}" if known else ""
        super().__init__(f"unknown cube {name!r}{detail}")


class Overloaded(X3Error):
    """Request admission refused: the bounded queue is full (HTTP 429).

    Attributes:
        retry_after_seconds: the backoff hint transports should relay
            (the HTTP layer sends it as ``Retry-After``).
    """

    def __init__(
        self, message: str, retry_after_seconds: float = 1.0
    ) -> None:
        self.retry_after_seconds = retry_after_seconds
        super().__init__(message)


class StaleVersion(CubeError):
    """The backend cannot satisfy the query's ``read_version`` floor —
    its state has not caught up to the version token the client carries
    from an earlier write (HTTP 409)."""

    def __init__(
        self,
        requested: "tuple[int, ...]",
        current: "tuple[int, ...]",
    ) -> None:
        self.requested = tuple(requested)
        self.current = tuple(current)
        super().__init__(
            f"read_version {list(self.requested)} not reached: backend "
            f"is at {list(self.current)}"
        )


class ClusterError(X3Error):
    """Base class for sharded-cluster coordination errors."""


class ShardUnavailable(ClusterError):
    """Raised when a shard replica cannot answer (crashed or unhealthy).

    The coordinator catches this to fail over to another replica; it
    only escapes to callers when every replica of a shard is down.
    """

    def __init__(self, shard: int, replica: int, reason: str = "") -> None:
        self.shard = shard
        self.replica = replica
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"shard {shard} replica {replica} unavailable{detail}"
        )
