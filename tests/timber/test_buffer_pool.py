"""Unit tests for the LRU buffer pool and its I/O accounting."""

import pytest

from repro.errors import BufferPoolError
from repro.timber.buffer_pool import BufferPool
from repro.timber.pages import Disk
from repro.timber.stats import CostModel


def make_pool(capacity=2, pages=4):
    disk = Disk(page_capacity=4)
    cost = CostModel()
    pool = BufferPool(disk, cost, capacity_pages=capacity)
    for _ in range(pages):
        disk.allocate()
    return disk, cost, pool


class TestFetch:
    def test_capacity_positive(self):
        disk = Disk()
        with pytest.raises(BufferPoolError):
            BufferPool(disk, CostModel(), capacity_pages=0)

    def test_miss_charges_read(self):
        _, cost, pool = make_pool()
        pool.fetch(0)
        assert cost.io.page_reads == 1
        assert cost.io.buffer_misses == 1

    def test_hit_is_free(self):
        _, cost, pool = make_pool()
        pool.fetch(0)
        pool.fetch(0)
        assert cost.io.page_reads == 1
        assert cost.io.buffer_hits == 1

    def test_lru_eviction_order(self):
        _, cost, pool = make_pool(capacity=2)
        pool.fetch(0)
        pool.fetch(1)
        pool.fetch(0)          # 1 becomes LRU
        pool.fetch(2)          # evicts 1
        assert 1 not in pool
        assert 0 in pool and 2 in pool
        assert cost.io.evictions == 1

    def test_dirty_eviction_charges_write(self):
        disk, cost, pool = make_pool(capacity=1)
        page = pool.fetch(0)
        page.append("rec")  # dirties it
        pool.fetch(1)       # evicts dirty page 0
        assert cost.io.page_writes == 1
        assert not disk.page(0).dirty


class TestFlush:
    def test_flush_writes_dirty_only(self):
        disk, cost, pool = make_pool()
        pool.fetch(0).append("x")
        pool.fetch(1)
        pool.flush()
        assert cost.io.page_writes == 1
        assert not disk.page(0).dirty

    def test_drop_all_cold_cache(self):
        _, cost, pool = make_pool()
        pool.fetch(0)
        pool.drop_all()
        assert len(pool) == 0
        pool.fetch(0)
        assert cost.io.page_reads == 2  # re-read after cold cache

    def test_admit_new_no_read_charge(self):
        disk, cost, pool = make_pool(pages=0)
        page = disk.allocate()
        pool.admit_new(page)
        assert cost.io.page_reads == 0
        assert page.page_id in pool
