"""Simulated disk pages.

A :class:`Disk` is an append-able array of :class:`Page` objects.  Pages
hold a bounded number of record *slots* (we simulate an 8 KB page holding
``capacity`` fixed-size records rather than managing bytes).  All access
goes through the buffer pool, which is where I/O is charged.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import PageError

DEFAULT_PAGE_CAPACITY = 128
"""Records per page: 8 KB page / 64-byte node record, as in the paper's
TIMBER configuration."""


class Page:
    """A fixed-capacity array of record slots."""

    __slots__ = ("page_id", "capacity", "records", "dirty")

    def __init__(self, page_id: int, capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        if capacity <= 0:
            raise PageError("page capacity must be positive")
        self.page_id = page_id
        self.capacity = capacity
        self.records: List[Any] = []
        self.dirty = False

    @property
    def full(self) -> bool:
        return len(self.records) >= self.capacity

    def append(self, record: Any) -> int:
        """Append a record; return its slot index."""
        if self.full:
            raise PageError(f"page {self.page_id} is full")
        self.records.append(record)
        self.dirty = True
        return len(self.records) - 1

    def get(self, slot: int) -> Any:
        try:
            return self.records[slot]
        except IndexError:
            raise PageError(
                f"page {self.page_id} has no slot {slot}"
            ) from None

    def __len__(self) -> int:
        return len(self.records)


class Disk:
    """An append-only collection of pages (the simulated device)."""

    def __init__(self, page_capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        self.page_capacity = page_capacity
        self._pages: List[Page] = []

    def allocate(self) -> Page:
        """Allocate a fresh page at the end of the device."""
        page = Page(len(self._pages), capacity=self.page_capacity)
        self._pages.append(page)
        return page

    def page(self, page_id: int) -> Page:
        if 0 <= page_id < len(self._pages):
            return self._pages[page_id]
        raise PageError(f"no page with id {page_id}")

    def __len__(self) -> int:
        return len(self._pages)

    def last_page(self) -> Optional[Page]:
        return self._pages[-1] if self._pages else None
