"""Unit tests: the Treebank generator guarantees its declared regime."""

import pytest

from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.datagen.treebank import (
    TreebankConfig,
    axis_tags,
    generate_treebank,
    treebank_query,
)
from repro.patterns.relaxation import Relaxation
from repro.xmlmodel.serializer import serialize


class TestConfig:
    def test_density_validated(self):
        with pytest.raises(ValueError):
            TreebankConfig(density="fluffy")

    def test_axes_range(self):
        with pytest.raises(ValueError):
            TreebankConfig(n_axes=1)

    def test_domain_sizes(self):
        dense = TreebankConfig(density="dense", n_facts=1000)
        sparse = TreebankConfig(density="sparse", n_facts=1000)
        assert dense.domain_size() < sparse.domain_size()


class TestGeneration:
    def test_fact_count(self):
        config = TreebankConfig(n_facts=50)
        doc = generate_treebank(config)
        assert len(doc.find_all("sentence")) == 50

    def test_deterministic(self):
        config = TreebankConfig(n_facts=40, seed=3)
        assert serialize(generate_treebank(config)) == serialize(
            generate_treebank(config)
        )

    def test_axis_tags(self):
        assert axis_tags(TreebankConfig(n_axes=3)) == ["m1", "m2", "m3"]

    def test_filler_adds_depth(self):
        doc = generate_treebank(TreebankConfig(n_facts=50, filler_depth=4))
        assert doc.max_depth() >= 3


class TestRegimeGuarantees:
    def test_clean_regime_has_both_properties(self):
        config = TreebankConfig(
            n_facts=80, coverage=True, disjoint=True, seed=7
        )
        table = extract_fact_table(
            generate_treebank(config), treebank_query(config)
        )
        oracle = PropertyOracle.from_data(table)
        assert oracle.globally_disjoint()
        assert oracle.globally_covered()

    def test_no_coverage_regime_violates_coverage_only(self):
        config = TreebankConfig(
            n_facts=120, coverage=False, disjoint=True, seed=7
        )
        table = extract_fact_table(
            generate_treebank(config), treebank_query(config)
        )
        oracle = PropertyOracle.from_data(table)
        assert oracle.globally_disjoint()
        assert not oracle.globally_covered()

    def test_no_disjoint_regime_violates_disjointness(self):
        config = TreebankConfig(
            n_facts=120, coverage=True, disjoint=False, seed=7
        )
        table = extract_fact_table(
            generate_treebank(config), treebank_query(config)
        )
        oracle = PropertyOracle.from_data(table)
        assert not oracle.globally_disjoint()
        assert oracle.globally_covered()

    def test_nested_axes_recovered_by_pcad(self):
        config = TreebankConfig(
            n_facts=150, coverage=False, disjoint=True, seed=11,
            p_missing=0.0, p_nested=0.5,
        )
        table = extract_fact_table(
            generate_treebank(config), treebank_query(config)
        )
        # Some value must be invisible rigidly but visible under PC-AD.
        found_gated = False
        for row in table.rows:
            for axis_values in row.axes:
                for value in axis_values:
                    if not value.matches(0) and value.matches(1):
                        found_gated = True
        assert found_gated


class TestQuery:
    def test_coverage_holds_means_lnd_only(self):
        config = TreebankConfig(coverage=True)
        query = treebank_query(config)
        for axis in query.axes:
            assert axis.relaxations == {Relaxation.LND}

    def test_coverage_fails_adds_pcad(self):
        config = TreebankConfig(coverage=False)
        query = treebank_query(config)
        for axis in query.axes:
            assert Relaxation.PC_AD in axis.relaxations

    def test_lattice_sizes(self):
        lnd = treebank_query(TreebankConfig(n_axes=4, coverage=True))
        pcad = treebank_query(TreebankConfig(n_axes=4, coverage=False))
        assert lnd.lattice().size() == 2 ** 4
        assert pcad.lattice().size() == 3 ** 4
