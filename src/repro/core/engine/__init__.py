"""Parallel cube execution engine.

The cuboid lattice is embarrassingly parallel: every algorithm accepts a
``points`` restriction, so disjoint lattice slices cube independently and
merge losslessly.  This package partitions the lattice
(:mod:`~repro.core.engine.partition`), dispatches partitions to a worker
pool with a deterministic serial fallback
(:mod:`~repro.core.engine.executor`), merges per-partition cuboids and
cost snapshots (:mod:`~repro.core.engine.merge`) and reports per-stage
metrics (:mod:`~repro.core.engine.metrics`).

Entry point: :func:`execute`, reached through
``compute_cube(table, ExecutionOptions(...))``.
"""

from __future__ import annotations

from repro.core.engine.metrics import EngineMetrics, PartitionStats
from repro.core.engine.partition import Partition, partition_points


def execute(table, options):
    """Run one cube computation (lazy import keeps startup cheap)."""
    from repro.core.engine.executor import execute as _execute

    return _execute(table, options)


__all__ = [
    "EngineMetrics",
    "PartitionStats",
    "Partition",
    "partition_points",
    "execute",
]
