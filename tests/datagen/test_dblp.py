"""Unit tests for the DBLP generator."""

from collections import Counter

from repro.datagen.dblp import (
    DblpConfig,
    dblp_dtd,
    dblp_query,
    generate_dblp,
)
from repro.schema.dtd import Cardinality
from repro.xmlmodel.serializer import serialize


class TestGeneration:
    def test_article_count(self):
        doc = generate_dblp(DblpConfig(n_articles=30))
        assert len(doc.find_all("article")) == 30

    def test_deterministic(self):
        config = DblpConfig(n_articles=25, seed=4)
        assert serialize(generate_dblp(config)) == serialize(
            generate_dblp(config)
        )

    def test_mandatory_fields_always_present(self):
        doc = generate_dblp(DblpConfig(n_articles=100, seed=1))
        for article in doc.find_all("article"):
            assert len(article.find_children("year")) == 1
            assert len(article.find_children("journal")) == 1
            assert "key" in article.attrs

    def test_author_cardinalities_match_dtd(self):
        doc = generate_dblp(DblpConfig(n_articles=300, seed=2))
        counts = Counter(
            len(article.find_children("author"))
            for article in doc.find_all("article")
        )
        assert counts[0] > 0          # possibly missing
        assert any(k >= 2 for k in counts)  # possibly repeated

    def test_month_sometimes_missing(self):
        doc = generate_dblp(DblpConfig(n_articles=200, seed=3))
        presence = [
            bool(article.find_children("month"))
            for article in doc.find_all("article")
        ]
        assert any(presence) and not all(presence)

    def test_conforms_to_inferred_schema(self):
        """The generated data must not be looser than the DBLP DTD."""
        from repro.schema.inference import infer_dtd

        doc = generate_dblp(DblpConfig(n_articles=400, seed=5))
        inferred = infer_dtd([doc]).get("article")
        declared = dblp_dtd().get("article")
        for tag, card in inferred.children.items():
            allowed = declared.children[tag]
            if card.may_repeat:
                assert allowed.may_repeat
            if card.may_be_absent:
                assert allowed.may_be_absent


class TestQuery:
    def test_four_lnd_axes(self):
        query = dblp_query()
        assert len(query.axes) == 4
        assert query.lattice().size() == 16

    def test_fact_key(self):
        assert dblp_query().fact_id_path == "@key"


class TestDtd:
    def test_root(self):
        assert dblp_dtd().root == "dblp"

    def test_article_star_under_dblp(self):
        assert dblp_dtd().get("dblp").children["article"] is Cardinality.STAR
