"""The fault planner: seeded, replayable, bounded."""

import pytest

from repro.cluster.chaos import (
    NO_FAULT,
    PROFILES,
    ChaosEngine,
    ChaosProfile,
    get_profile,
)
from repro.errors import ClusterError


def drive(engine, opportunities=200, healthy=2):
    return [
        engine.plan_read(op, op % 4, 0, healthy)
        for op in range(opportunities)
    ]


class TestProfiles:
    def test_named_profiles_exist(self):
        assert {"none", "light", "heavy"} <= set(PROFILES)

    def test_none_profile_plans_nothing(self):
        engine = ChaosEngine(get_profile("none"), seed=1)
        assert all(fault is NO_FAULT for fault in drive(engine))
        assert not any(
            engine.plan_write_stale(op, 0, 0) for op in range(100)
        )

    def test_rates_validated(self):
        with pytest.raises(ClusterError):
            ChaosProfile(name="bad", crash_rate=1.5)
        with pytest.raises(ClusterError):
            ChaosProfile(name="bad", stale_rate=-0.1)

    def test_unknown_profile(self):
        with pytest.raises(ClusterError):
            get_profile("mayhem")


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = drive(ChaosEngine(get_profile("heavy"), seed=42))
        second = drive(ChaosEngine(get_profile("heavy"), seed=42))
        assert first == second

    def test_different_seed_different_schedule(self):
        first = drive(ChaosEngine(get_profile("heavy"), seed=1), 500)
        second = drive(ChaosEngine(get_profile("heavy"), seed=2), 500)
        assert first != second

    def test_stale_schedule_deterministic(self):
        plans = [
            [
                ChaosEngine(get_profile("heavy"), seed=9).plan_write_stale(
                    op, 0, 0
                )
                for op in range(50)
            ]
            for _ in range(2)
        ]
        assert plans[0] == plans[1]


class TestSafetyBounds:
    def test_crash_cap_respected(self):
        engine = ChaosEngine(get_profile("heavy"), seed=3)
        faults = drive(engine, 2000)
        crashes = sum(1 for fault in faults if fault.crash)
        assert crashes == engine.injected["crash"]
        assert crashes <= engine.profile.max_crashes

    def test_never_crashes_last_healthy_replica(self):
        engine = ChaosEngine(get_profile("heavy"), seed=3)
        faults = drive(engine, 2000, healthy=1)
        assert not any(fault.crash for fault in faults)

    def test_straggle_carries_profile_delay(self):
        engine = ChaosEngine(get_profile("heavy"), seed=5)
        delays = {
            fault.extra_seconds
            for fault in drive(engine, 500)
            if fault.extra_seconds
        }
        assert delays == {engine.profile.straggle_seconds}

    def test_summary_counts(self):
        engine = ChaosEngine(get_profile("heavy"), seed=7)
        drive(engine, 300)
        text = engine.summary()
        assert "heavy" in text and "seed=7" in text
        assert f"{engine.injected['straggle']} stragglers" in text
