"""Unit tests for axis specifications."""

import pytest

from repro.core.axes import AxisSpec
from repro.errors import QueryError
from repro.patterns.pattern import EdgeAxis
from repro.patterns.relaxation import Relaxation

ALL = frozenset({Relaxation.LND, Relaxation.SP, Relaxation.PC_AD})


class TestConstruction:
    def test_from_path(self):
        axis = AxisSpec.from_path("$n", "author/name", ALL)
        assert axis.binding_test == "name"
        assert axis.path_text() == "author/name"

    def test_descendant_path(self):
        axis = AxisSpec.from_path("$p", "//publisher/@id")
        assert axis.path_text() == "//publisher/@id"
        assert axis.binding_test == "@id"

    def test_lnd_always_implied(self):
        axis = AxisSpec.from_path("$y", "year", frozenset())
        assert Relaxation.LND in axis.relaxations

    def test_name_must_be_variable(self):
        with pytest.raises(QueryError):
            AxisSpec("y", ((EdgeAxis.CHILD, "year"),))

    def test_empty_path_rejected(self):
        with pytest.raises(QueryError):
            AxisSpec("$y", ())

    def test_sp_needs_intermediate(self):
        with pytest.raises(QueryError):
            AxisSpec.from_path("$y", "year", frozenset({Relaxation.SP}))

    def test_attribute_mid_path_rejected(self):
        with pytest.raises(QueryError):
            AxisSpec(
                "$x",
                ((EdgeAxis.CHILD, "@id"), (EdgeAxis.CHILD, "b")),
            )

    def test_structural_excludes_lnd(self):
        axis = AxisSpec.from_path("$n", "author/name", ALL)
        assert axis.structural == {Relaxation.SP, Relaxation.PC_AD}


class TestStepsForState:
    def test_rigid(self):
        axis = AxisSpec.from_path("$n", "author/name", ALL)
        binding, prefix = axis.steps_for_state(frozenset())
        assert binding == axis.steps
        assert prefix == ()

    def test_pc_ad_generalizes_element_edges(self):
        axis = AxisSpec.from_path("$n", "author/name", ALL)
        binding, _ = axis.steps_for_state(frozenset({Relaxation.PC_AD}))
        assert all(edge is EdgeAxis.DESCENDANT for edge, _ in binding)

    def test_pc_ad_keeps_attribute_edges(self):
        axis = AxisSpec.from_path(
            "$p", "publisher/@id", frozenset({Relaxation.PC_AD})
        )
        binding, _ = axis.steps_for_state(frozenset({Relaxation.PC_AD}))
        assert binding[0] == (EdgeAxis.DESCENDANT, "publisher")
        assert binding[1] == (EdgeAxis.CHILD, "@id")

    def test_sp_promotes_binding(self):
        axis = AxisSpec.from_path("$n", "author/name", ALL)
        binding, prefix = axis.steps_for_state(frozenset({Relaxation.SP}))
        assert binding == ((EdgeAxis.DESCENDANT, "name"),)
        assert prefix == ((EdgeAxis.CHILD, "author"),)

    def test_sp_plus_pcad(self):
        axis = AxisSpec.from_path("$n", "author/name", ALL)
        binding, prefix = axis.steps_for_state(
            frozenset({Relaxation.SP, Relaxation.PC_AD})
        )
        assert binding == ((EdgeAxis.DESCENDANT, "name"),)
        assert prefix == ((EdgeAxis.DESCENDANT, "author"),)

    def test_nav_steps_conversion(self):
        axis = AxisSpec.from_path("$n", "author/name", ALL)
        nav = axis.nav_steps(axis.steps)
        assert [step.test for step in nav] == ["author", "name"]


class TestDisplay:
    def test_str_lists_relaxations(self):
        axis = AxisSpec.from_path("$n", "author/name", ALL)
        text = str(axis)
        assert "$n" in text and "LND" in text and "SP" in text
