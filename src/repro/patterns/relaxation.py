"""The three tree-pattern relaxations and the most relaxed pattern.

Operators (paper Sec. 2.2), each returning a *new* pattern:

- :func:`apply_pc_ad` — generalize a parent-child edge to
  ancestor-descendant (``publication/author`` → ``publication//author``);
- :func:`apply_sp` — sub-tree promotion: move the subtree rooted at a node
  to be a descendant-edge child of its grandparent
  (``publication[./author/name]`` → ``publication[./author][.//name]``);
- :func:`apply_lnd` — leaf node deletion: drop a leaf (classic cube
  roll-up), or with ``keep_optional=True`` mark it optional, which is the
  left-outer-join interpretation used by the most relaxed fully
  instantiated pattern of Fig. 2.

:func:`most_relaxed_pattern` applies every *permitted* structural
relaxation and marks every LND-permitted node optional; matching it once
yields a superset of the matches of every lattice point (Sec. 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Set

from repro.errors import RelaxationError
from repro.patterns.pattern import EdgeAxis, PatternNode, TreePattern


class Relaxation(Enum):
    """The relaxation kinds of the X^3 clause."""

    LND = "LND"
    SP = "SP"
    PC_AD = "PC-AD"

    @staticmethod
    def from_text(text: str) -> "Relaxation":
        normalized = text.strip().upper().replace("_", "-")
        for member in Relaxation:
            if member.value == normalized:
                return member
        raise RelaxationError(f"unknown relaxation {text!r}")


STRUCTURAL_RELAXATIONS = (Relaxation.SP, Relaxation.PC_AD)
"""Relaxations that widen coverage without dropping the dimension."""


def _locate(pattern: TreePattern, label: str) -> PatternNode:
    return pattern.by_label(label)


def apply_pc_ad(pattern: TreePattern, label: str) -> TreePattern:
    """Generalize the edge above the labelled node to ancestor-descendant."""
    out = pattern.clone()
    node = _locate(out, label)
    if node.parent is None:
        raise RelaxationError("cannot PC-AD the pattern root")
    if node.is_attribute:
        raise RelaxationError(
            "PC-AD relaxes edges between elements, not attribute edges"
        )
    if node.axis is EdgeAxis.DESCENDANT:
        raise RelaxationError(
            f"edge above {label!r} is already ancestor-descendant"
        )
    node.axis = EdgeAxis.DESCENDANT
    return out


def apply_sp(pattern: TreePattern, label: str) -> TreePattern:
    """Promote the subtree rooted at the labelled node to its grandparent."""
    out = pattern.clone()
    node = _locate(out, label)
    parent = node.parent
    if parent is None or parent.parent is None:
        raise RelaxationError(
            f"node {label!r} has no grandparent to promote to"
        )
    grandparent = parent.parent
    node.detach()
    node.axis = EdgeAxis.DESCENDANT
    grandparent.add(node)
    return out


def apply_lnd(
    pattern: TreePattern, label: str, keep_optional: bool = False
) -> TreePattern:
    """Delete (or make optional) the labelled leaf node.

    The classic-cube reading deletes the leaf; ``keep_optional`` instead
    marks it optional, which is how the most relaxed fully instantiated
    pattern retains the node for grouping while still matching facts that
    lack it (the ``*`` left-outer-join edges in Fig. 2).

    Deleting a non-leaf is not permitted (LND is *leaf* node deletion);
    note an attribute leaf's parent may become a leaf afterwards, enabling
    cascading deletions as in Fig. 3 (j) -> (n) -> (o).
    """
    out = pattern.clone()
    node = _locate(out, label)
    if node.parent is None:
        raise RelaxationError("cannot LND the pattern root")
    if keep_optional:
        node.optional = True
        return out
    if not node.is_leaf:
        raise RelaxationError(f"node {label!r} is not a leaf")
    node.detach()
    return out


def applicable_relaxations(
    pattern: TreePattern, label: str, permitted: Iterable[Relaxation]
) -> Set[Relaxation]:
    """Which of the permitted relaxations actually apply to the node in
    its current position (Sec. 2.3: not all relaxations suit every
    pattern)."""
    node = pattern.by_label(label)
    result: Set[Relaxation] = set()
    for relaxation in permitted:
        if relaxation is Relaxation.LND:
            if node.parent is not None:
                result.add(relaxation)
        elif relaxation is Relaxation.PC_AD:
            if (
                node.parent is not None
                and node.axis is EdgeAxis.CHILD
                and not node.is_attribute
            ):
                result.add(relaxation)
        elif relaxation is Relaxation.SP:
            if node.parent is not None and node.parent.parent is not None:
                result.add(relaxation)
    return result


@dataclass(frozen=True)
class RelaxationSpec:
    """Permitted relaxations for one labelled node (an X^3 clause entry)."""

    label: str
    permitted: frozenset

    @staticmethod
    def of(label: str, *relaxations: Relaxation) -> "RelaxationSpec":
        return RelaxationSpec(label, frozenset(relaxations))


def most_relaxed_pattern(
    pattern: TreePattern, specs: Dict[str, Set[Relaxation]]
) -> TreePattern:
    """Build the most relaxed fully instantiated pattern (Fig. 2).

    All permitted SP promotions are applied first (changing shape), then
    all permitted PC-AD generalizations, then every LND-permitted node is
    marked optional.  The result matches a superset of every lattice
    point's matches, so one evaluation feeds the whole cube (Sec. 3.4).
    """
    out = pattern.clone()
    # LND first: mark the binding AND the intermediate nodes of its path
    # optional (Fig. 2 puts the left-outer-join '*' edges on the whole
    # branch, so a fact lacking any part of it still matches).  Marking
    # precedes SP so that an SP-leftover prefix keeps its '*' edge.
    for label, permitted in specs.items():
        if Relaxation.LND in permitted:
            out = apply_lnd(out, label, keep_optional=True)
            node = out.by_label(label).parent
            while node is not None and node.parent is not None:
                node.optional = True
                node = node.parent
    for label, permitted in specs.items():
        if Relaxation.SP in permitted:
            node = out.by_label(label)
            if node.parent is not None and node.parent.parent is not None:
                out = apply_sp(out, label)
    for label, permitted in specs.items():
        if Relaxation.PC_AD in permitted:
            node = out.by_label(label)
            if (
                node.parent is not None
                and node.axis is EdgeAxis.CHILD
                and not node.is_attribute
            ):
                out = apply_pc_ad(out, label)
    return out


def relaxation_chain(
    pattern: TreePattern, label: str, permitted: Iterable[Relaxation]
) -> List[TreePattern]:
    """All patterns reachable by relaxing one node zero or more steps.

    Used by tests to enumerate a single axis's sub-lattice (Fig. 3's rows).
    """
    seen = {pattern.signature()}
    frontier = [pattern]
    out = [pattern]
    while frontier:
        current = frontier.pop()
        for relaxation in applicable_relaxations(current, label, permitted):
            if relaxation is Relaxation.LND:
                node = current.by_label(label)
                if not node.is_leaf:
                    continue
                candidate = apply_lnd(current, label, keep_optional=True)
            elif relaxation is Relaxation.PC_AD:
                candidate = apply_pc_ad(current, label)
            else:
                candidate = apply_sp(current, label)
            signature = candidate.signature()
            if signature not in seen:
                seen.add(signature)
                out.append(candidate)
                frontier.append(candidate)
    return out
