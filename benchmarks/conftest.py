"""Shared benchmark fixtures.

Each figure's workload is extracted once per session (the paper's
protocol: pattern evaluation is materialized up front and excluded from
the cubing measurement).  Benchmarks then time ``compute_cube`` runs via
pytest-benchmark (wall clock) while the simulated-seconds cost series —
the reproducible signal — is validated by shape assertions.
"""

from __future__ import annotations

import pytest

from repro.core.cube import ExecutionOptions, compute_cube
from repro.core.properties import PropertyOracle
from repro.datagen.workload import WorkloadConfig, build_workload

BENCH_AXES = 4
BENCH_MEMORY = 4000


class PreparedWorkload:
    """A workload extracted once, reusable across benchmark runs."""

    def __init__(self, config: WorkloadConfig, memory_entries: int = BENCH_MEMORY):
        self.config = config
        self.workload = build_workload(config)
        self.table = self.workload.fact_table()
        self.oracle = self.workload.oracle(self.table)
        self.memory_entries = memory_entries

    def run(self, algorithm: str, workers: int = 1, engine: str = "auto"):
        return compute_cube(
            self.table,
            ExecutionOptions(
                algorithm=algorithm,
                oracle=self.oracle,
                memory_entries=self.memory_entries,
                workers=workers,
                engine=engine,
            ),
        )

    def simulated(self, algorithm: str) -> float:
        return self.run(algorithm).simulated_seconds


def _treebank(density, coverage, disjoint, n_facts=300, n_axes=BENCH_AXES):
    return PreparedWorkload(
        WorkloadConfig(
            kind="treebank",
            n_facts=n_facts,
            n_axes=n_axes,
            density=density,
            coverage=coverage,
            disjoint=disjoint,
        )
    )


@pytest.fixture(scope="session")
def sparse_nocov_disj():
    """Figs. 4/5 setting (scaled down)."""
    return _treebank("sparse", coverage=False, disjoint=True)


@pytest.fixture(scope="session")
def sparse_nocov_disj_small():
    """Fig. 4's smaller population for the scaling comparison."""
    return _treebank("sparse", coverage=False, disjoint=True, n_facts=100)


@pytest.fixture(scope="session")
def dense_nocov_disj():
    """Fig. 6 setting."""
    return _treebank("dense", coverage=False, disjoint=True)


@pytest.fixture(scope="session")
def sparse_cov_disj():
    """Fig. 7 setting.

    600 facts so the sparse cube exceeds the counter budget — at the
    paper's 10^5 scale the sparse cube never fits memory either.
    """
    return _treebank("sparse", coverage=True, disjoint=True, n_facts=600)


@pytest.fixture(scope="session")
def dense_cov_disj():
    """Fig. 8 setting."""
    return _treebank("dense", coverage=True, disjoint=True)


@pytest.fixture(scope="session")
def dense_nocov_nodisj():
    """Fig. 9 setting."""
    return _treebank("dense", coverage=False, disjoint=False)


@pytest.fixture(scope="session")
def dblp():
    """Fig. 10 setting (DBLP, 4 axes, schema oracle)."""
    return PreparedWorkload(
        WorkloadConfig(kind="dblp", n_facts=1200, n_axes=4),
        memory_entries=30_000,
    )


def bench_once(benchmark, func):
    """Run a cube computation exactly once under pytest-benchmark.

    Cube runs are deterministic and seconds-long; multiple rounds add
    nothing but wall time.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
