"""Mark every property-based test ``prop`` (deselect with ``-m 'not prop'``)."""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.prop)
