"""``repro.cluster`` — the sharded, replicated cube-serving cluster.

N shard workers — each a full PR-3 :class:`~repro.serve.CubeServer`
over a deterministic hash-partitioned slice of the fact table — behind
a :class:`ClusterCoordinator` that scatter-gathers queries, merges
per-shard *aggregate states* with the shared kernel in
:mod:`repro.core.merge`, fans writes out through the incremental delta
path under per-shard version vectors, fails over across replicas,
hedges stragglers, and proves (under the deterministic chaos harness in
:mod:`repro.cluster.chaos`) that every degraded answer equals the
serial NAIVE recompute.
"""

from repro.cluster.chaos import (
    NO_FAULT,
    PROFILES,
    ChaosEngine,
    ChaosProfile,
    ReadFault,
    get_profile,
)
from repro.cluster.coordinator import ClusterCoordinator, ClusterStats
from repro.cluster.partition import (
    partition_rows,
    partition_table,
    shard_of,
)
from repro.cluster.shard import ShardAnswer, ShardReplica
from repro.cluster.versions import VersionVector

__all__ = [
    "NO_FAULT",
    "PROFILES",
    "ChaosEngine",
    "ChaosProfile",
    "ClusterCoordinator",
    "ClusterStats",
    "ReadFault",
    "ShardAnswer",
    "ShardReplica",
    "VersionVector",
    "get_profile",
    "partition_rows",
    "partition_table",
    "shard_of",
]
