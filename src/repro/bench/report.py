"""ASCII rendering of figure results: the rows/series the paper plots."""

from __future__ import annotations

from typing import List

from repro.bench.figures import FigureSpec, series_of
from repro.bench.harness import AlgorithmRun


def format_figure(spec: FigureSpec, runs: List[AlgorithmRun]) -> str:
    """Render one figure's runs: a series table (axes sweep) or a bar
    chart (single-point figures like Fig. 10)."""
    lines = [
        f"== {spec.figure_id}: {spec.title}",
        f"   expected shape: {spec.expected_shape}",
        "",
    ]
    series = series_of(runs)
    axis_values = sorted({run.n_axes for run in runs})
    if len(axis_values) > 1:
        header = ["algorithm".ljust(10)] + [
            f"{axis:>10}" for axis in axis_values
        ]
        lines.append("   sim-seconds by # of axes")
        lines.append("   " + " ".join(header))
        for algorithm in spec.algorithms:
            cells = dict(series.get(algorithm, []))
            row = [algorithm.ljust(10)] + [
                f"{cells[axis]:>10.3f}" if axis in cells else " " * 10
                for axis in axis_values
            ]
            lines.append("   " + " ".join(row))
    else:
        lines.append("   sim-seconds (bar chart)")
        peak = max(run.simulated_seconds for run in runs) or 1.0
        for run in runs:
            bar = "#" * max(1, int(40 * run.simulated_seconds / peak))
            flag = "" if run.correct in (None, True) else "  [INCORRECT]"
            lines.append(
                f"   {run.algorithm:<10} {run.simulated_seconds:>10.3f} "
                f"{bar}{flag}"
            )
    wrong = [run for run in runs if run.correct is False]
    if wrong and len(axis_values) > 1:
        names = sorted({run.algorithm for run in wrong})
        lines.append(
            f"   note: incorrect results (as the paper expects here): "
            f"{', '.join(names)}"
        )
    thrash = [run for run in runs if run.passes > 1]
    if thrash:
        worst = max(thrash, key=lambda run: run.passes)
        lines.append(
            f"   note: COUNTER multi-pass thrash up to {worst.passes} "
            f"passes at {worst.n_axes} axes"
        )
    return "\n".join(lines)


def format_runs_csv(runs: List[AlgorithmRun]) -> str:
    """Machine-readable dump of all runs."""
    header = (
        "workload,algorithm,axes,facts,sim_seconds,wall_seconds,"
        "cells,passes,correct,dnf,workers,engine,par_sim_seconds,"
        "merge_seconds,queue_wait_seconds"
    )
    lines = [header]
    for run in runs:
        row = run.as_row()
        lines.append(
            ",".join(str(row[column]) for column in header.split(","))
        )
    return "\n".join(lines)


def format_smoke(runs: List[AlgorithmRun]) -> str:
    """Render the smoke benchmark: serial vs parallel per algorithm."""
    lines = [
        "== smoke: parallel engine vs serial, "
        f"{runs[0].workload if runs else '?'}",
        f"   {'algorithm':<10} {'workers':>7} {'engine':>8} "
        f"{'sim-s':>10} {'par-sim-s':>10} {'speedup':>8} {'wall-s':>10} "
        f"{'ok':>4}",
    ]
    for run in runs:
        ok = "-" if run.correct is None else ("yes" if run.correct else "NO")
        lines.append(
            f"   {run.algorithm:<10} {run.workers:>7} {run.engine:>8} "
            f"{run.simulated_seconds:>10.4f} {run.par_sim_seconds:>10.4f} "
            f"{run.modeled_speedup:>7.2f}x {run.wall_seconds:>10.4f} "
            f"{ok:>4}"
        )
    return "\n".join(lines)
