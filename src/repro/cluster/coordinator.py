"""Scatter-gather coordination over hash-partitioned shard replicas.

:class:`ClusterCoordinator` is the cluster's single query surface.  A
read fans out to every shard, collects per-shard *aggregate states*
(never finalized values — an AVG must travel as ``(sum, count)``),
merges them with the shared kernel (:mod:`repro.core.merge`) and
finalizes once.  This is lossless for exactly the reason the paper's
Sec. 2 proofs allow: facts are partitioned disjointly by fact id, so
even when a fact lands in several groups (non-disjoint grouping) or in
none (incomplete coverage), each of its group contributions is folded on
exactly one shard, and ``AggregateFunction.merge`` is associative and
commutative with ``new()`` as the identity.

Degraded modes, all deterministic under a seeded
:class:`~repro.cluster.chaos.ChaosEngine`:

- **failover** — a crashed replica is skipped and the next healthy one
  answers; the decision lands in the event log;
- **hedged reads** — when a replica's modeled latency exceeds the hedge
  deadline, a backup replica is asked too and the cheaper (modeled)
  answer wins, with hedge accounting ``deadline + backup`` as real
  hedged tails do;
- **stale replicas** — every answer carries the replica's applied write
  version; a gathered answer is accepted only when the assembled
  per-shard version vector equals a state the write log actually
  produced (see :mod:`repro.cluster.versions`), otherwise lagging
  replicas are synced and the scatter retried.

Writes are serialized by the coordinator, routed to *all* replicas of
each affected shard through the servers' incremental delta path, and
each fan-out appends the new version vector to the write-log history
the consistency check validates against.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.core.aggregates import AggregateFunction
from repro.core.bindings import FactRow, FactTable, GroupKey
from repro.core.cube import ExecutionOptions
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint
from repro.core.merge import finalize_states, merge_states
from repro.core.properties import PropertyOracle
from repro.core.query import (
    Query,
    QueryExplanation,
    QueryResult,
    ShardPlan,
    finish_query,
    kept_axis_name,
    resolve_point_spec,
    resolve_target,
)
from repro.cluster.chaos import NO_FAULT, ChaosEngine, ReadFault
from repro.cluster.partition import partition_rows
from repro.cluster.shard import ShardAnswer, ShardReplica
from repro.cluster.versions import VersionVector
from repro.errors import ClusterError, InvalidQuery, ShardUnavailable
from repro.obs.events import ClusterEvent, EventLog, RungDecision
from repro.obs.trace_store import TraceStore
from repro.obs import trace_store as tracing
from repro.timber.stats import CostModel

_CPU_OP_SECONDS = CostModel.cpu_op_cost

PointSpec = Union[LatticePoint, str]


@dataclass(frozen=True)
class ClusterStats:
    """A consistent snapshot of the coordinator's counters."""

    shards: int
    replicas: int
    requests: int
    writes: int
    rejects: int  #: gathered answers rejected as version-inconsistent
    failovers: int
    hedges: int
    stale_retries: int
    crashes: int  #: replica crashes injected/observed
    heals: int
    modeled_cost_seconds: float  #: sum of per-request modeled latencies
    merged_cells: int
    version: Tuple[int, ...]
    healthy_replicas: int
    per_shard_rows: Tuple[int, ...]

    def summary(self) -> str:
        degraded = (
            f"{self.failovers} failovers, {self.hedges} hedges, "
            f"{self.stale_retries} stale retries, {self.rejects} rejects"
        )
        return (
            f"{self.requests} requests over {self.shards}x{self.replicas} "
            f"cluster ({self.healthy_replicas} healthy replicas); "
            f"{degraded}; modeled {self.modeled_cost_seconds:.4f}s"
        )


@dataclass
class _ShardReadOutcome:
    """One shard's contribution to a gather, with its event trail."""

    answer: ShardAnswer
    latency: float
    events: List[ClusterEvent]


class ClusterCoordinator:
    """Serve cube queries over N hash-partitioned shards x R replicas.

    Args:
        table: the full fact table; its rows are hash-partitioned by
            fact id into ``n_shards`` disjoint slices at construction.
        n_shards: shard count (each shard holds one slice).
        replicas: replicas per shard (replica 0 is the preferred
            primary); every replica holds the full slice.
        oracle: property oracle shared by all replicas.  Sound because
            disjointness/coverage are universally quantified over facts
            and therefore inherited by every subset of the table.
        options: engine options for recomputes inside each replica.
        cache_cells: per-replica cuboid cache budget.
        chaos: optional seeded fault planner (crash / straggle / stale).
        hedge_deadline_seconds: modeled-latency deadline after which a
            straggling shard read is hedged on a backup replica;
            ``None`` disables hedging.
        max_stale_retries: per-replica sync-and-retry bound for stale
            answers.
        max_read_rounds: whole-scatter retry bound when a gathered
            version vector is inconsistent.
        event_log_capacity: ring capacity of the cluster event log.
        trace_store: optional distributed-tracing store.  When set, a
            read entering without an upstream binding opens its own
            trace root; per-shard child spans (carrying replica, tier,
            hedge/failover outcomes) parent under the request span no
            matter which scatter pool thread ran them, and the
            replicas' local ladder spans nest below those.
    """

    def __init__(
        self,
        table: FactTable,
        n_shards: int,
        replicas: int = 2,
        *,
        oracle: Optional[PropertyOracle] = None,
        options: Optional[ExecutionOptions] = None,
        cache_cells: int = 2048,
        chaos: Optional[ChaosEngine] = None,
        hedge_deadline_seconds: Optional[float] = 0.1,
        max_stale_retries: int = 3,
        max_read_rounds: int = 8,
        event_log_capacity: int = 8192,
        trace_store: Optional[TraceStore] = None,
    ) -> None:
        if n_shards <= 0:
            raise ClusterError(
                f"a cluster needs at least one shard, got {n_shards}"
            )
        if replicas <= 0:
            raise ClusterError(
                f"a shard needs at least one replica, got {replicas}"
            )
        self.lattice = table.lattice
        self.aggregate = table.aggregate
        self._fn: AggregateFunction = table.aggregate.fn
        self.n_shards = n_shards
        self.n_replicas = replicas
        self.chaos = chaos
        self.hedge_deadline_seconds = hedge_deadline_seconds
        self.max_stale_retries = max_stale_retries
        self.max_read_rounds = max_read_rounds
        self.events = EventLog(event_log_capacity)
        self.trace_store = trace_store

        slices = partition_rows(table.rows, n_shards)
        self.shards: List[List[ShardReplica]] = [
            [
                ShardReplica(
                    shard_id,
                    replica_id,
                    self.lattice,
                    slice_rows,
                    table.aggregate,
                    oracle=oracle,
                    options=options,
                    cache_cells=cache_cells,
                )
                for replica_id in range(replicas)
            ]
            for shard_id, slice_rows in enumerate(slices)
        ]

        self._lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._op = 0
        self._expected = [0] * n_shards
        zero = tuple(self._expected)
        self._history: List[Tuple[int, ...]] = [zero]
        self._history_set: Set[Tuple[int, ...]] = {zero}
        self._requests = 0
        self._writes = 0
        self._rejects = 0
        self._failovers = 0
        self._hedges = 0
        self._stale_retries = 0
        self._crashes = 0
        self._heals = 0
        self._modeled_cost_seconds = 0.0
        self._merged_cells = 0
        self._latencies: List[float] = []
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=min(16, n_shards),
                thread_name_prefix="x3-cluster",
            )
            if n_shards > 1
            else None
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # point resolution
    # ------------------------------------------------------------------
    def resolve_point(self, spec: PointSpec) -> LatticePoint:
        return resolve_point_spec(self.lattice, spec)

    @property
    def version_vector(self) -> VersionVector:
        with self._lock:
            return VersionVector(tuple(self._expected))

    # ------------------------------------------------------------------
    # the unified CubeBackend surface (shared with CubeServer)
    # ------------------------------------------------------------------
    def query(self, query: Query) -> QueryResult:
        """Answer one :class:`~repro.core.query.Query` over the cluster.

        The scatter-gather path has no per-request ladder: the rung
        trail is a single synthesized ``scatter-gather`` decision (each
        replica's own ladder walk lives in its local event log).
        """
        store = self.trace_store
        if store is None or tracing.bound():
            return self._query_impl(query)
        with store.root(
            "cluster.query", category="cluster", kind=query.kind
        ) as root:
            result = self._query_impl(query)
            if root.enabled:
                root.set_sim(result.modeled_seconds).annotate(
                    point=result.point
                )
            return result

    def _query_impl(self, query: Query) -> QueryResult:
        self._check_measure(query.measure)
        point = resolve_target(self.lattice, query)
        cuboid, vector, latency = self._request(point, kind=query.kind)
        rung = RungDecision(
            rung="scatter-gather",
            taken=True,
            reason=(
                f"merged {self.n_shards} shard state(s) at vector "
                f"{list(vector.versions)}"
            ),
        )
        result = finish_query(
            self.lattice,
            query,
            point,
            cuboid,
            vector.versions,
            "scatter-gather",
            (rung,),
            latency,
        )
        binding = tracing.current_span()
        if binding.enabled:
            result = replace(result, trace_id=binding.trace_id_hex)
            if result.deadline_exceeded:
                binding.set_status("deadline")
        return result

    def explain_query(self, query: Query) -> QueryExplanation:
        """The scatter plan, without executing the gather.

        For each shard: which replica the coordinator would consult
        (the first healthy one), and the rung *that replica's* ladder
        predicts it would answer from right now.  Pure — no events, no
        cache effects, no fault injection.
        """
        self._check_measure(query.measure)
        point = resolve_target(self.lattice, query)
        plans: List[ShardPlan] = []
        for shard_id in range(self.n_shards):
            replica = next(
                (r for r in self.shards[shard_id] if r.healthy), None
            )
            if replica is None:
                plans.append(
                    ShardPlan(
                        shard=shard_id, replica=-1, tier="unavailable"
                    )
                )
                continue
            local = replica.server.explain(point)
            plans.append(
                ShardPlan(
                    shard=shard_id,
                    replica=replica.replica,
                    tier=local.tier,
                    rungs=local.rungs,
                )
            )
        return QueryExplanation(
            backend="cluster",
            kind=query.kind,
            point=self.lattice.describe(point),
            version=self.version_token(),
            tier="scatter-gather",
            rungs=(),
            shards=tuple(plans),
        )

    def version_token(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(self._expected)

    def _check_measure(self, measure: Optional[str]) -> None:
        served = self.aggregate.function.upper()
        if measure is not None and measure.upper() != served:
            raise InvalidQuery(
                f"this cube serves measure {served!r}, not {measure!r}"
            )

    # ------------------------------------------------------------------
    # reads: scatter, degrade gracefully, gather, merge states
    # ------------------------------------------------------------------
    def cuboid_versioned(
        self, spec: PointSpec, *, kind: str = "cuboid"
    ) -> Tuple[Cuboid, VersionVector]:
        """One cuboid plus the version vector it is exact for.

        The returned vector is always a state the write log actually
        produced: inconsistent gathers (a replica answering at the
        wrong version) are rejected, lagging replicas synced, and the
        scatter retried up to ``max_read_rounds`` times.
        """
        point = self.resolve_point(spec)
        store = self.trace_store
        if store is None or tracing.bound():
            cuboid, vector, _ = self._request(point, kind=kind)
            return cuboid, vector
        with store.root(
            "cluster.query", category="cluster", kind=kind
        ) as root:
            cuboid, vector, latency = self._request(point, kind=kind)
            if root.enabled:
                root.set_sim(latency).annotate(
                    point=self.lattice.describe(point)
                )
            return cuboid, vector

    def _request(
        self, point: LatticePoint, *, kind: str
    ) -> Tuple[Cuboid, VersionVector, float]:
        described = self.lattice.describe(point)
        tspan = tracing.trace_span(
            "cluster.request",
            category="cluster",
            point=described,
            kind=kind,
            shards=self.n_shards,
        )
        with obs.span(
            "cluster.request",
            category="cluster",
            point=described,
            kind=kind,
            shards=self.n_shards,
        ) as span, tspan:
            cuboid, vector, latency = self._gather(point, described, kind)
            span.annotate(
                cells=len(cuboid), modeled_seconds=round(latency, 6)
            )
            tspan.annotate(cells=len(cuboid)).set_sim(latency)
        obs.count("x3_cluster_requests_total", kind=kind)
        obs.observe("x3_cluster_request_modeled_seconds", latency)
        return cuboid, vector, latency

    # ------------------------------------------------------------------
    # deprecated positional query surface (PR 6 shims)
    # ------------------------------------------------------------------
    @staticmethod
    def _warn_positional(name: str) -> None:
        warnings.warn(
            f"ClusterCoordinator.{name}(...) positional queries are "
            f"deprecated; pass ClusterCoordinator.query(Query(...)) "
            f"instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def cuboid(self, spec: PointSpec) -> Cuboid:
        self._warn_positional("cuboid")
        return self.query(Query(point=spec)).as_cuboid()

    def cell(self, spec: PointSpec, key: GroupKey) -> Optional[float]:
        self._warn_positional("cell")
        return self.query(
            Query(point=spec, kind="cell", key=key)
        ).as_cell()

    def slice(self, spec: PointSpec, axis_index: int, value: str) -> Cuboid:
        self._warn_positional("slice")
        point = self.resolve_point(spec)
        return self.query(
            Query(
                point=point,
                kind="slice",
                axis=kept_axis_name(self.lattice, point, axis_index),
                value=value,
            )
        ).as_cuboid()

    def dice(
        self, spec: PointSpec, predicates: Dict[int, Sequence[str]]
    ) -> Cuboid:
        self._warn_positional("dice")
        point = self.resolve_point(spec)
        return self.query(
            Query(
                point=point,
                kind="dice",
                filters=tuple(
                    (
                        kept_axis_name(self.lattice, point, index),
                        tuple(values),
                    )
                    for index, values in predicates.items()
                ),
            )
        ).as_cuboid()

    def _gather(
        self, point: LatticePoint, described: str, kind: str
    ) -> Tuple[Cuboid, VersionVector, float]:
        last_vector: Optional[Tuple[int, ...]] = None
        for round_index in range(self.max_read_rounds):
            with self._lock:
                op = self._op
                self._op += 1
                expected = tuple(self._expected)
            faults = self._plan_read_faults(op)
            outcomes = self._scatter(op, point, faults, expected)
            vector = tuple(
                outcome.answer.version for outcome in outcomes
            )
            with self._lock:
                consistent = vector in self._history_set
            self._record_outcomes(outcomes)
            if consistent:
                return self._merge(
                    op, outcomes, vector, described, kind
                )
            last_vector = vector
            with self._lock:
                self._rejects += 1
            obs.count("x3_cluster_rejects_total")
            self.events.append(
                ClusterEvent(
                    seq=0,
                    kind="reject",
                    op=op,
                    shard=-1,
                    replica=-1,
                    detail=(
                        f"gathered vector {list(vector)} matches no "
                        f"write-log state; syncing and retrying "
                        f"(round {round_index + 1})"
                    ),
                    versions=vector,
                    trace_id=tracing.current_span().trace_id_hex,
                )
            )
            self.sync_all()
        raise ClusterError(
            f"no consistent gather for {described} after "
            f"{self.max_read_rounds} rounds (last vector "
            f"{list(last_vector or ())})"
        )

    def _plan_read_faults(self, op: int) -> Dict[int, ReadFault]:
        """One planned fault per shard, drawn in deterministic order.

        The fault applies to the first healthy replica the shard read
        will consult, so planned faults and injected faults agree.
        """
        if self.chaos is None:
            return {}
        faults: Dict[int, ReadFault] = {}
        for shard_id in range(self.n_shards):
            healthy = sum(
                1 for replica in self.shards[shard_id] if replica.healthy
            )
            primary = next(
                (
                    replica.replica
                    for replica in self.shards[shard_id]
                    if replica.healthy
                ),
                0,
            )
            faults[shard_id] = self.chaos.plan_read(
                op, shard_id, primary, healthy
            )
        return faults

    def _scatter(
        self,
        op: int,
        point: LatticePoint,
        faults: Dict[int, ReadFault],
        expected: Tuple[int, ...],
    ) -> List[_ShardReadOutcome]:
        if self._pool is None:
            return [
                self._read_shard(
                    op, shard_id, point,
                    faults.get(shard_id, NO_FAULT), expected[shard_id],
                )
                for shard_id in range(self.n_shards)
            ]
        # Capture the request's trace binding before the fan-out so the
        # per-shard spans parent under it on whichever pool thread runs.
        binding = tracing.capture()
        futures = [
            self._pool.submit(
                self._read_shard_bound,
                binding,
                op,
                shard_id,
                point,
                faults.get(shard_id, NO_FAULT),
                expected[shard_id],
            )
            for shard_id in range(self.n_shards)
        ]
        return [future.result() for future in futures]

    def _read_shard_bound(
        self,
        binding,
        op: int,
        shard_id: int,
        point: LatticePoint,
        fault: ReadFault,
        expected_version: int,
    ) -> _ShardReadOutcome:
        with tracing.resume(binding):
            return self._read_shard(
                op, shard_id, point, fault, expected_version
            )

    def _read_shard(
        self,
        op: int,
        shard_id: int,
        point: LatticePoint,
        fault: ReadFault,
        expected_version: int,
    ) -> _ShardReadOutcome:
        """One shard's read: failover across replicas, hedge stragglers.

        Events are collected locally and appended to the shared log by
        the gather (in shard order), so concurrent fan-out threads never
        interleave one request's trail.
        """
        events: List[ClusterEvent] = []
        fault_pending = fault is not NO_FAULT
        replicas = self.shards[shard_id]
        # Deterministic span id per shard (key, not a shared counter):
        # the fan-out threads race, but the ids must not.
        tspan = tracing.trace_span(
            "cluster.shard",
            category="cluster",
            key=f"s{shard_id}",
            shard=shard_id,
        )
        with obs.span(
            "cluster.shard", category="cluster", shard=shard_id
        ) as span, tspan:
            for replica in replicas:
                if not replica.healthy:
                    self._count_failover(events, op, shard_id, replica)
                    continue
                extra_seconds = 0.0
                if fault_pending:
                    fault_pending = False
                    healthy = sum(1 for r in replicas if r.healthy)
                    if fault.crash and healthy > 1:
                        replica.crash()
                        with self._lock:
                            self._crashes += 1
                        obs.count("x3_cluster_faults_total", kind="crash")
                        events.append(
                            self._event(
                                "crash", op, shard_id, replica.replica,
                                "fault injected: replica crashed",
                            )
                        )
                        self._count_failover(events, op, shard_id, replica)
                        continue
                    extra_seconds = fault.extra_seconds
                answer = self._read_replica(
                    replica, point, expected_version, op, events
                )
                if answer is None:
                    self._count_failover(events, op, shard_id, replica)
                    continue
                latency = answer.modeled_seconds + extra_seconds
                if extra_seconds:
                    obs.count("x3_cluster_faults_total", kind="straggle")
                    events.append(
                        self._event(
                            "straggle", op, shard_id, replica.replica,
                            f"fault injected: +{extra_seconds:.3f}s "
                            f"modeled delay",
                            modeled_seconds=latency,
                        )
                    )
                deadline = self.hedge_deadline_seconds
                if deadline is not None and latency > deadline:
                    answer, latency = self._hedge(
                        op, shard_id, point, expected_version,
                        replica, answer, latency, events,
                    )
                span.annotate(
                    replica=answer.replica,
                    tier=answer.tier,
                    modeled_seconds=round(latency, 6),
                )
                tspan.annotate(
                    replica=answer.replica,
                    tier=answer.tier,
                    hedged=any(e.kind == "hedge" for e in events),
                    failover=any(e.kind == "failover" for e in events),
                ).set_sim(latency)
                return _ShardReadOutcome(answer, latency, events)
            tspan.set_status("error").annotate(error="ShardUnavailable")
        raise ShardUnavailable(shard_id, -1, "no healthy replica")

    def _read_replica(
        self,
        replica: ShardReplica,
        point: LatticePoint,
        expected_version: int,
        op: int,
        events: List[ClusterEvent],
    ) -> Optional[ShardAnswer]:
        """Read one replica, syncing it when it answers stale.

        Returns ``None`` when the replica is (or goes) down.  An answer
        *ahead* of the expected version is returned as-is: the gather's
        vector-consistency check decides what to do with it.
        """
        answer: Optional[ShardAnswer] = None
        for _ in range(self.max_stale_retries + 1):
            try:
                answer = replica.read_states(point)
            except ShardUnavailable:
                return None
            if answer.version >= expected_version:
                return answer
            with self._lock:
                self._stale_retries += 1
            obs.count("x3_cluster_stale_retries_total")
            events.append(
                self._event(
                    "stale_retry", op, replica.shard, replica.replica,
                    f"answered v{answer.version} < expected "
                    f"v{expected_version}; syncing and retrying",
                )
            )
            try:
                replica.sync()
            except ShardUnavailable:
                return None
        return answer

    def _hedge(
        self,
        op: int,
        shard_id: int,
        point: LatticePoint,
        expected_version: int,
        primary: ShardReplica,
        answer: ShardAnswer,
        latency: float,
        events: List[ClusterEvent],
    ) -> Tuple[ShardAnswer, float]:
        """Retry a straggling read on a backup; cheaper answer wins.

        The hedged path costs ``deadline + backup`` modeled seconds —
        the coordinator waited out the deadline before asking twice.
        """
        deadline = self.hedge_deadline_seconds or 0.0
        backup = next(
            (
                candidate
                for candidate in self.shards[shard_id]
                if candidate.healthy
                and candidate.replica != primary.replica
            ),
            None,
        )
        if backup is None:
            return answer, latency
        backup_answer = self._read_replica(
            backup, point, expected_version, op, events
        )
        if backup_answer is None:
            return answer, latency
        with self._lock:
            self._hedges += 1
        obs.count("x3_cluster_hedges_total")
        hedged_latency = deadline + backup_answer.modeled_seconds
        if hedged_latency < latency:
            events.append(
                self._event(
                    "hedge", op, shard_id, backup.replica,
                    f"backup beat straggler: {hedged_latency:.4f}s < "
                    f"{latency:.4f}s",
                    modeled_seconds=hedged_latency,
                )
            )
            return backup_answer, hedged_latency
        events.append(
            self._event(
                "hedge", op, shard_id, primary.replica,
                f"straggler finished first: {latency:.4f}s <= "
                f"{hedged_latency:.4f}s",
                modeled_seconds=latency,
            )
        )
        return answer, latency

    def _count_failover(
        self,
        events: List[ClusterEvent],
        op: int,
        shard_id: int,
        replica: ShardReplica,
    ) -> None:
        with self._lock:
            self._failovers += 1
        obs.count("x3_cluster_failovers_total")
        events.append(
            self._event(
                "failover", op, shard_id, replica.replica,
                f"replica {replica.replica} unavailable; "
                f"trying next replica",
            )
        )

    def _record_outcomes(
        self, outcomes: List[_ShardReadOutcome]
    ) -> None:
        for outcome in outcomes:
            for event in outcome.events:
                self.events.append(event)

    def _merge(
        self,
        op: int,
        outcomes: List[_ShardReadOutcome],
        vector: Tuple[int, ...],
        described: str,
        kind: str,
    ) -> Tuple[Cuboid, VersionVector, float]:
        with obs.span(
            "cluster.merge", category="cluster", shards=len(outcomes)
        ), tracing.trace_span(
            "cluster.merge", category="cluster", shards=len(outcomes)
        ):
            states = merge_states(
                self._fn,
                [outcome.answer.states for outcome in outcomes],
            )
            cuboid = finalize_states(self._fn, states)
        # Scatter-gather critical path: the slowest shard, plus one
        # merge op per merged cell.
        latency = max(
            (outcome.latency for outcome in outcomes), default=0.0
        ) + len(cuboid) * _CPU_OP_SECONDS
        with self._lock:
            self._requests += 1
            self._modeled_cost_seconds += latency
            self._merged_cells += len(cuboid)
            self._latencies.append(latency)
        obs.count("x3_cluster_merged_cells_total", len(cuboid))
        self.events.append(
            ClusterEvent(
                seq=0,
                kind="read",
                op=op,
                shard=-1,
                replica=-1,
                detail=(
                    f"{kind} {described}: gathered {len(outcomes)} "
                    f"shards, {len(cuboid)} cells"
                ),
                versions=vector,
                modeled_seconds=latency,
                trace_id=tracing.current_span().trace_id_hex,
            )
        )
        return cuboid, VersionVector(vector), latency

    # ------------------------------------------------------------------
    # writes: serialized fan-out through the incremental delta path
    # ------------------------------------------------------------------
    def insert(self, rows: Sequence[FactRow]) -> VersionVector:
        """Ingest delta facts; returns the new version vector."""
        return self._write(list(rows), op="insert")

    def delete(self, rows: Sequence[FactRow]) -> VersionVector:
        """Retract delta facts; returns the new version vector."""
        return self._write(list(rows), op="delete")

    def _write(self, rows: List[FactRow], op: str) -> VersionVector:
        with self._write_lock, obs.span(
            f"cluster.{op}", category="cluster", rows=len(rows)
        ):
            with self._lock:
                write_op = self._op
                self._op += 1
            slices = partition_rows(rows, self.n_shards)
            touched = [
                shard_id
                for shard_id, shard_rows in enumerate(slices)
                if shard_rows
            ]
            for shard_id in touched:
                for replica in self.shards[shard_id]:
                    defer = (
                        self.chaos is not None
                        and replica.healthy
                        and self.chaos.plan_write_stale(
                            write_op, shard_id, replica.replica
                        )
                    )
                    replica.apply(op, slices[shard_id], defer=defer)
                    if defer:
                        obs.count(
                            "x3_cluster_faults_total", kind="stale"
                        )
                        self.events.append(
                            self._event(
                                "stale", write_op, shard_id,
                                replica.replica,
                                f"fault injected: {op} batch deferred "
                                f"(replica lags the write log)",
                            )
                        )
            with self._lock:
                for shard_id in touched:
                    self._expected[shard_id] += 1
                vector = tuple(self._expected)
                self._history.append(vector)
                self._history_set.add(vector)
                self._writes += 1
        obs.count("x3_cluster_writes_total", op=op)
        self.events.append(
            ClusterEvent(
                seq=0,
                kind="write",
                op=write_op,
                shard=-1,
                replica=-1,
                detail=(
                    f"{op} {len(rows)} rows -> shards "
                    f"{touched or '[]'}"
                ),
                versions=vector,
            )
        )
        return VersionVector(vector)

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    def sync_all(self) -> None:
        """Drain every healthy replica's write backlog."""
        for shard in self.shards:
            for replica in shard:
                if replica.healthy and replica.lagging:
                    replica.sync()

    def heal_all(self) -> int:
        """Revive every crashed replica (replays its backlog)."""
        healed = 0
        for shard in self.shards:
            for replica in shard:
                if not replica.healthy:
                    replica.heal()
                    healed += 1
                    with self._lock:
                        self._heals += 1
                    self.events.append(
                        self._event(
                            "heal", -1, replica.shard, replica.replica,
                            "replica healed and caught up",
                        )
                    )
        return healed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _event(
        kind: str,
        op: int,
        shard: int,
        replica: int,
        detail: str,
        modeled_seconds: float = 0.0,
    ) -> ClusterEvent:
        return ClusterEvent(
            seq=0,
            kind=kind,
            op=op,
            shard=shard,
            replica=replica,
            detail=detail,
            modeled_seconds=modeled_seconds,
            trace_id=tracing.current_span().trace_id_hex,
        )

    def modeled_latencies(self) -> List[float]:
        """Per-request modeled latencies, in request order."""
        with self._lock:
            return list(self._latencies)

    def stats(self) -> ClusterStats:
        with self._lock:
            healthy = sum(
                1
                for shard in self.shards
                for replica in shard
                if replica.healthy
            )
            return ClusterStats(
                shards=self.n_shards,
                replicas=self.n_replicas,
                requests=self._requests,
                writes=self._writes,
                rejects=self._rejects,
                failovers=self._failovers,
                hedges=self._hedges,
                stale_retries=self._stale_retries,
                crashes=self._crashes,
                heals=self._heals,
                modeled_cost_seconds=self._modeled_cost_seconds,
                merged_cells=self._merged_cells,
                version=tuple(self._expected),
                healthy_replicas=healthy,
                per_shard_rows=tuple(
                    len(shard[0].table.rows) for shard in self.shards
                ),
            )
