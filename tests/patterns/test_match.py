"""Unit tests for witness-tree enumeration (both backends)."""

import pytest

from repro.datagen.publications import figure1_document
from repro.patterns.match import binding_value, match_db, match_document
from repro.patterns.parse import parse_pattern
from repro.timber.database import TimberDB
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize


def witnesses_both(doc, pattern_text):
    """Match in memory and against a TimberDB; assert identical values."""
    pattern = parse_pattern(pattern_text)
    memory = match_document(doc, pattern)
    db = TimberDB()
    db.load(serialize(doc))
    stored = match_db(db, pattern)
    mem_values = sorted(
        tuple(binding_value(b) or "" for b in witness.bindings)
        for witness in memory
    )
    db_values = sorted(
        tuple(binding_value(b) or "" for b in witness.bindings)
        for witness in stored
    )
    assert mem_values == db_values
    return memory


class TestBasicMatching:
    def test_paper_year_example(self):
        # "a simple tree pattern seeking a year node as child of a
        # publication node will match the first three publications ...
        # and actually match the second publication twice."
        doc = figure1_document()
        witnesses = witnesses_both(doc, "//publication/year=$y")
        roots = [witness.root_binding for witness in witnesses]
        ids = [root.attrs.get("id", root.attr("id") if hasattr(root, "attr") else None)
               if not isinstance(root, str) else None for root in roots]
        # 4 witnesses: pub1 once, pub2 twice, pub3 once.
        assert len(witnesses) == 4
        years = sorted(witness.value_of("$y") for witness in witnesses)
        assert years == ["2003", "2003", "2004", "2005"]

    def test_root_axis_child_anchors_at_root(self):
        doc = parse("<a><a/></a>")
        pattern = parse_pattern("a")
        assert len(match_document(doc, pattern)) == 1

    def test_root_axis_descendant(self):
        doc = parse("<a><a/></a>")
        pattern = parse_pattern("//a")
        assert len(match_document(doc, pattern)) == 2

    def test_branching_cross_product(self):
        doc = parse(
            "<r><f><x>1</x><x>2</x><y>A</y><y>B</y></f></r>"
        )
        witnesses = witnesses_both(doc, "//f[/x=$x][/y=$y]")
        pairs = sorted(
            (w.value_of("$x"), w.value_of("$y")) for w in witnesses
        )
        assert pairs == [("1", "A"), ("1", "B"), ("2", "A"), ("2", "B")]

    def test_non_matching_required_branch(self):
        doc = parse("<r><f><x/></f></r>")
        witnesses = witnesses_both(doc, "//f[/x][/y]")
        assert witnesses == []


class TestOptionalNodes:
    def test_outer_join_null(self):
        doc = parse("<r><f><x>1</x></f><f/></r>")
        witnesses = witnesses_both(doc, "//f[/x?=$x]")
        values = sorted(
            (witness.value_of("$x") or "-") for witness in witnesses
        )
        assert values == ["-", "1"]

    def test_nulls_cascade_below_optional(self):
        doc = parse("<r><f/></r>")
        pattern = parse_pattern("//f[/a?=$a/b=$b]")
        witnesses = match_document(doc, pattern)
        assert len(witnesses) == 1
        assert witnesses[0].by_label("$a") is None
        assert witnesses[0].by_label("$b") is None

    def test_optional_with_matches_binds_them(self):
        doc = parse("<r><f><x>1</x><x>2</x></f></r>")
        witnesses = witnesses_both(doc, "//f[/x?=$x]")
        values = sorted(witness.value_of("$x") for witness in witnesses)
        assert values == ["1", "2"]  # no extra null witness


class TestAttributes:
    def test_child_attribute(self):
        doc = parse('<r><f id="7"/></r>')
        witnesses = witnesses_both(doc, "//f[/@id=$i]")
        assert witnesses[0].value_of("$i") == "7"

    def test_missing_attribute_no_match(self):
        doc = parse("<r><f/></r>")
        assert witnesses_both(doc, "//f[/@id=$i]") == []

    def test_descendant_attribute_excludes_self(self):
        doc = parse('<r><f id="self"><g id="deep"/></f></r>')
        witnesses = witnesses_both(doc, "//f[//@id=$i]")
        assert [w.value_of("$i") for w in witnesses] == ["deep"]


class TestDescendantEdges:
    def test_pc_ad_recovers_nested(self):
        doc = figure1_document()
        rigid = witnesses_both(doc, "//publication/author/name=$n")
        relaxed = witnesses_both(doc, "//publication//author//name=$n")
        assert len(relaxed) > len(rigid)
        relaxed_names = {w.value_of("$n") for w in relaxed}
        assert "Smith" in relaxed_names

    def test_value_of_unknown_label(self):
        doc = parse("<r><f/></r>")
        pattern = parse_pattern("//f=$f")
        witness = match_document(doc, pattern)[0]
        with pytest.raises(KeyError):
            witness.by_label("$zzz")


class TestWildcardRoot:
    def test_star_root_memory(self):
        doc = parse("<a><b/></a>")
        pattern = parse_pattern("//*")
        assert len(match_document(doc, pattern)) == 2
