"""Property-based tests: lattice laws and external sort correctness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axes import AxisSpec
from repro.core.lattice import CubeLattice
from repro.patterns.relaxation import Relaxation
from repro.timber.external_sort import merge_sorted, sorted_with_cost
from repro.timber.stats import CostModel, MemoryBudget


@st.composite
def lattices(draw):
    k = draw(st.integers(min_value=1, max_value=3))
    axes = []
    for index in range(k):
        relaxations = {Relaxation.LND}
        if draw(st.booleans()):
            relaxations.add(Relaxation.PC_AD)
        axes.append(
            AxisSpec.from_path(f"$v{index}", "t", frozenset(relaxations))
        )
    return CubeLattice(axes)


@given(lattices())
@settings(max_examples=40, deadline=None)
def test_size_equals_enumeration(lattice):
    assert lattice.size() == len(list(lattice.points()))


@given(lattices())
@settings(max_examples=40, deadline=None)
def test_edge_counts_consistent(lattice):
    forward = sum(
        len(lattice.successors(point)) for point in lattice.points()
    )
    backward = sum(
        len(lattice.predecessors(point)) for point in lattice.points()
    )
    assert forward == backward


@given(lattices())
@settings(max_examples=40, deadline=None)
def test_transitivity_on_sample(lattice):
    points = list(lattice.points())[:8]
    for a in points:
        for b in points:
            for c in points:
                if lattice.leq(a, b) and lattice.leq(b, c):
                    assert lattice.leq(a, c)


@given(lattices())
@settings(max_examples=40, deadline=None)
def test_topo_respects_order(lattice):
    order = lattice.topo_finer_first()
    position = {point: index for index, point in enumerate(order)}
    for point in order:
        for succ in lattice.successors(point):
            assert position[point] < position[succ]


# ----------------------------------------------------------------------
# sorting laws
# ----------------------------------------------------------------------

@given(
    st.lists(st.integers(min_value=-50, max_value=50), max_size=300),
    st.integers(min_value=1, max_value=40),
)
@settings(max_examples=60, deadline=None)
def test_sorted_with_cost_equals_sorted(data, budget_entries):
    cost = CostModel()
    budget = MemoryBudget(budget_entries, entries_per_page=8)
    assert sorted_with_cost(data, cost, budget=budget) == sorted(data)


@given(
    st.lists(st.integers(), max_size=50),
    st.lists(st.integers(), max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_merge_sorted_equals_sorted(left, right):
    cost = CostModel()
    merged = merge_sorted(sorted(left), sorted(right), cost)
    assert merged == sorted(left + right)
