"""Sorting with cost accounting: in-memory quicksort or external merge sort.

The paper: "All data partitioning and sorting used the quicksort for an
in-memory sort, and the mergesort for an external sort."  The top-down
cube algorithms are dominated by sorting, and their meltdown when coverage
fails comes from the *number* of (external) sorts, so getting the cost of
a sort right matters more than its wall-clock speed.

:func:`sorted_with_cost` picks the strategy from the memory budget:

- the run fits in memory: quicksort, charged ``n log2 n`` comparisons;
- otherwise: external merge sort — runs of budget size are sorted and
  spilled (page writes), then merged in passes limited by the fan-in the
  budget allows (page reads + writes per pass).
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence

from repro.obs import current_tracer
from repro.timber.stats import CostModel, MemoryBudget

SPAN_MIN_ITEMS = 32
"""Sorts below this size are counted but not individually spanned —
BUC's recursion produces thousands of tiny sorts that would drown the
trace without telling a story."""


def quicksort_cost(n: int) -> int:
    """Comparison count charged for an in-memory sort of n items."""
    if n <= 1:
        return 0
    return int(n * math.log2(n)) + n


def sorted_with_cost(
    items: Sequence[Any],
    cost: CostModel,
    budget: Optional[MemoryBudget] = None,
    key: Optional[Callable[[Any], Any]] = None,
) -> List[Any]:
    """Sort ``items``, charging the cost model appropriately.

    The actual ordering is produced by Python's sort (guaranteeing
    correctness); the *charges* reflect quicksort or external merge sort
    depending on whether ``items`` fits the memory budget.

    Returns a new sorted list.
    """
    n = len(items)
    external = budget is not None and n > budget.capacity_entries
    tracer = current_tracer()
    if tracer.enabled:
        kind = "external" if external else "quicksort"
        tracer.metrics.counter("x3_sorts_total", kind=kind).inc()
        tracer.metrics.counter("x3_sorted_items_total", kind=kind).inc(n)
        if external or n >= SPAN_MIN_ITEMS:
            with tracer.span(
                "timber.sort",
                category="timber",
                cost=cost,
                n=n,
                kind=kind,
            ):
                if external:
                    return _external_sort(items, cost, budget, key)
                cost.charge_cpu(quicksort_cost(n))
                return sorted(items, key=key)
    if not external:
        cost.charge_cpu(quicksort_cost(n))
        return sorted(items, key=key)
    return _external_sort(items, cost, budget, key)


def charge_sort(
    n: int,
    cost: CostModel,
    budget: Optional[MemoryBudget] = None,
) -> None:
    """Charge the modeled cost of sorting ``n`` items without sorting.

    The columnar top-down kernels group by integer group id through a
    hash fold for the *physical* work, but the paper's algorithm (and the
    cost this repo models) sorts — so grouping a gid column charges
    exactly what :func:`sorted_with_cost` would: an in-memory quicksort
    when the column fits the budget, the external merge-sort spill
    cascade (page writes + reads per pass) when it does not.
    """
    external = budget is not None and n > budget.capacity_entries
    tracer = current_tracer()
    if tracer.enabled:
        kind = "external" if external else "quicksort"
        tracer.metrics.counter("x3_sorts_total", kind=kind).inc()
        tracer.metrics.counter("x3_sorted_items_total", kind=kind).inc(n)
    if not external:
        cost.charge_cpu(quicksort_cost(n))
        return
    assert budget is not None
    _charge_external_sort(n, cost, budget)


def _charge_external_sort(
    n: int, cost: CostModel, budget: MemoryBudget
) -> None:
    """The external merge sort's charging schedule (runs, then passes)."""
    run_size = max(1, budget.capacity_entries)
    num_runs = -(-n // run_size)

    # Run formation: read input once, sort each run in memory, spill it.
    for _ in range(num_runs):
        cost.charge_cpu(quicksort_cost(min(run_size, n)))
    total_pages = budget.pages(n)
    cost.charge_read(total_pages)
    cost.charge_write(total_pages)

    # Merge passes: fan-in limited by budget (one page per input run plus
    # one output page).
    fan_in = max(2, budget.capacity_entries // budget.entries_per_page - 1)
    runs = num_runs
    while runs > 1:
        cost.charge_read(total_pages)
        cost.charge_write(total_pages)
        cost.charge_cpu(n * max(1, int(math.log2(min(fan_in, runs)))))
        runs = -(-runs // fan_in)

    # Final pass is read back by the consumer; charge the read here so a
    # sort is never free.
    cost.charge_read(total_pages)


def _external_sort(
    items: Sequence[Any],
    cost: CostModel,
    budget: MemoryBudget,
    key: Optional[Callable[[Any], Any]],
) -> List[Any]:
    _charge_external_sort(len(items), cost, budget)
    return sorted(items, key=key)


def merge_sorted(
    left: List[Any],
    right: List[Any],
    cost: CostModel,
    key: Optional[Callable[[Any], Any]] = None,
) -> List[Any]:
    """Merge two sorted lists, charging one comparison per step."""
    key_fn = key if key is not None else lambda item: item
    out: List[Any] = []
    i = j = 0
    while i < len(left) and j < len(right):
        cost.charge_cpu()
        if key_fn(left[i]) <= key_fn(right[j]):
            out.append(left[i])
            i += 1
        else:
            out.append(right[j])
            j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    cost.charge_cpu(len(left) - i + len(right) - j)
    return out
