"""The ``x3-trace`` command line tool: explore dumped trace JSONL.

Usage::

    x3-trace list traces.jsonl
    x3-trace list traces.jsonl --status error --retained
    x3-trace show traces.jsonl 4fd2a3b1...          # waterfall tree
    x3-trace show traces.jsonl 4fd2 --chrome-out t.json
    x3-trace list traces.jsonl --jsonl              # canonical re-dump

Input is the canonical JSONL the serving stack writes (``x3-server
--trace-jsonl`` / ``x3-cluster --trace-jsonl`` or
``TraceStore.write_jsonl``): one JSON object per finished trace, spans
inline.  ``show`` renders one trace as an indented waterfall — children
under parents, bars proportional to wall time — or converts it to the
Chrome ``trace_event`` format for ``chrome://tracing`` / Perfetto.
``--jsonl`` re-emits the (filtered) records canonically, which is what
the CI determinism job byte-compares across two seeded runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.export import chrome_trace_json
from repro.obs.tracer import SpanRecord

#: Waterfall bar width in characters.
BAR_WIDTH = 28


def load_traces(path: str) -> List[Dict[str, Any]]:
    """Parse one trace dict per non-empty JSONL line."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                decoded = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not JSON: {error}"
                ) from None
            if not isinstance(decoded, dict) or "trace_id" not in decoded:
                raise ValueError(
                    f"{path}:{number}: not a trace record (missing "
                    f"'trace_id')"
                )
            records.append(decoded)
    return records


def filter_traces(
    records: Sequence[Dict[str, Any]],
    *,
    status: Optional[str] = None,
    name: Optional[str] = None,
    retained: bool = False,
) -> List[Dict[str, Any]]:
    out = []
    for record in records:
        if status is not None and record.get("status") != status:
            continue
        if name is not None and name not in str(record.get("name", "")):
            continue
        if retained and not record.get("retained"):
            continue
        out.append(record)
    return out


def find_trace(
    records: Sequence[Dict[str, Any]], prefix: str
) -> Dict[str, Any]:
    """The unique trace whose id starts with ``prefix``."""
    matches = [
        record
        for record in records
        if str(record.get("trace_id", "")).startswith(prefix)
    ]
    if not matches:
        raise ValueError(f"no trace with id prefix {prefix!r}")
    if len(matches) > 1:
        ids = ", ".join(
            str(record["trace_id"])[:12] for record in matches[:5]
        )
        raise ValueError(
            f"trace id prefix {prefix!r} is ambiguous ({ids}, ...)"
        )
    return matches[0]


def canonical_line(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# waterfall rendering
# ----------------------------------------------------------------------
def _children_by_parent(
    spans: Sequence[Dict[str, Any]],
) -> Dict[str, List[Dict[str, Any]]]:
    tree: Dict[str, List[Dict[str, Any]]] = {}
    ids = {span.get("span_id") for span in spans}
    for span in spans:
        parent = str(span.get("parent_id", ""))
        if parent not in ids:
            parent = ""  # orphans (and the root) hang off the virtual top
        tree.setdefault(parent, []).append(span)
    for siblings in tree.values():
        siblings.sort(
            key=lambda s: (
                float(s.get("start_wall_seconds", 0.0)),
                str(s.get("span_id", "")),
            )
        )
    return tree


def render_waterfall(record: Dict[str, Any]) -> str:
    """One trace as an indented tree with proportional wall-time bars."""
    spans = list(record.get("spans", []))
    lines = [
        f"trace {record.get('trace_id')}  name={record.get('name')}  "
        f"status={record.get('status')}"
        + (
            f"  retained={record.get('retained')}"
            if record.get("retained")
            else ""
        )
        + f"  spans={len(spans)}  "
        f"sim={float(record.get('sim_seconds', 0.0)) * 1e3:.3f}ms"
    ]
    if not spans:
        return "\n".join(lines)
    starts = [float(s.get("start_wall_seconds", 0.0)) for s in spans]
    ends = [
        float(s.get("start_wall_seconds", 0.0))
        + float(s.get("wall_seconds", 0.0))
        for s in spans
    ]
    t0, t1 = min(starts), max(ends)
    width = max(t1 - t0, 1e-12)
    tree = _children_by_parent(spans)

    def emit(span: Dict[str, Any], depth: int) -> None:
        start = float(span.get("start_wall_seconds", 0.0))
        wall = float(span.get("wall_seconds", 0.0))
        left = int((start - t0) / width * BAR_WIDTH)
        length = max(1, int(wall / width * BAR_WIDTH))
        left = min(left, BAR_WIDTH - 1)
        length = min(length, BAR_WIDTH - left)
        bar = " " * left + "#" * length
        status = str(span.get("status", "ok"))
        flag = "" if status == "ok" else f" [{status.upper()}]"
        attrs = span.get("attrs", {})
        shown = ", ".join(
            f"{key}={attrs[key]}" for key in sorted(attrs)[:4]
        )
        lines.append(
            f"  [{bar:<{BAR_WIDTH}}] "
            + "  " * depth
            + f"{span.get('name')}"
            + (
                f" ({span.get('category')})"
                if span.get("category")
                else ""
            )
            + f" {wall * 1e3:.3f}ms"
            + (
                f" sim={float(span.get('sim_seconds', 0.0)) * 1e3:.3f}ms"
                if span.get("sim_seconds")
                else ""
            )
            + flag
            + (f"  {{{shown}}}" if shown else "")
        )
        for child in tree.get(str(span.get("span_id", "")), []):
            emit(child, depth + 1)

    for top in tree.get("", []):
        emit(top, 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# chrome conversion
# ----------------------------------------------------------------------
def to_span_records(record: Dict[str, Any]) -> List[SpanRecord]:
    """Lift one trace's spans into :class:`SpanRecord` for the
    existing Chrome exporter (hex ids become ints; the trace id labels
    the synthetic thread so multi-trace exports stay separable)."""
    thread = f"trace-{str(record.get('trace_id', ''))[:8]}"
    out: List[SpanRecord] = []
    for span in record.get("spans", []):
        parent_hex = str(span.get("parent_id", ""))
        attrs = dict(span.get("attrs", {}))
        status = str(span.get("status", "ok"))
        if status != "ok":
            attrs.setdefault("status", status)
        out.append(
            SpanRecord(
                span_id=int(str(span.get("span_id", "0")) or "0", 16),
                parent_id=int(parent_hex, 16) if parent_hex else None,
                name=str(span.get("name", "")),
                category=str(span.get("category", "")),
                start=float(span.get("start_wall_seconds", 0.0)),
                duration=float(span.get("wall_seconds", 0.0)),
                thread=thread,
                sim_duration=float(span.get("sim_seconds", 0.0)),
                attrs=attrs,
            )
        )
    return out


# ----------------------------------------------------------------------
# the tool
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-trace",
        description=(
            "Explore trace JSONL dumped by x3-server/x3-cluster "
            "--trace-jsonl: list traces, render waterfalls, export "
            "Chrome trace_event JSON."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list", help="summarize every trace in the file"
    )
    list_cmd.add_argument("file", help="trace JSONL file")
    list_cmd.add_argument(
        "--status",
        choices=("ok", "deadline", "error"),
        help="only traces with this worst-span status",
    )
    list_cmd.add_argument(
        "--name", help="only traces whose root name contains this"
    )
    list_cmd.add_argument(
        "--retained",
        action="store_true",
        help="only tail-retained traces (error/deadline/slow)",
    )
    list_cmd.add_argument(
        "--jsonl",
        action="store_true",
        help="emit the matching records as canonical JSONL instead of "
        "a table (what the CI determinism diff compares)",
    )

    show_cmd = sub.add_parser(
        "show", help="render one trace as a waterfall tree"
    )
    show_cmd.add_argument("file", help="trace JSONL file")
    show_cmd.add_argument(
        "trace_id", help="trace id (any unambiguous prefix)"
    )
    show_cmd.add_argument(
        "--chrome-out",
        metavar="PATH",
        help="write the trace as Chrome trace_event JSON instead",
    )
    return parser


def run_list(args: argparse.Namespace) -> int:
    records = filter_traces(
        load_traces(args.file),
        status=args.status,
        name=args.name,
        retained=args.retained,
    )
    if args.jsonl:
        for record in records:
            print(canonical_line(record))
        return 0
    if not records:
        print("no matching traces")
        return 0
    print(
        f"{'trace_id':32s}  {'name':16s} {'status':8s} "
        f"{'retained':8s} {'spans':>5s} {'sim_ms':>9s}"
    )
    for record in records:
        print(
            f"{str(record.get('trace_id', '')):32s}  "
            f"{str(record.get('name', '')):16s} "
            f"{str(record.get('status', '')):8s} "
            f"{str(record.get('retained', '') or '-'):8s} "
            f"{len(record.get('spans', [])):5d} "
            f"{float(record.get('sim_seconds', 0.0)) * 1e3:9.3f}"
        )
    print(f"{len(records)} trace(s)")
    return 0


def run_show(args: argparse.Namespace) -> int:
    record = find_trace(load_traces(args.file), args.trace_id)
    if args.chrome_out:
        document = chrome_trace_json(to_span_records(record))
        with open(args.chrome_out, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(
            f"wrote {len(record.get('spans', []))} spans to "
            f"{args.chrome_out}"
        )
        return 0
    print(render_waterfall(record))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return run_list(args)
        return run_show(args)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
