"""Unit tests for the structured event log (repro.obs.events)."""

import json
import threading

import pytest

from repro.obs.events import (
    EVICTION_KINDS,
    EventLog,
    EvictionRecord,
    RequestEvent,
    RungDecision,
    WriteEvent,
)


def make_request(kind="cuboid", point="$a:rigid", tier="cache"):
    return RequestEvent(
        seq=0,
        kind=kind,
        point=point,
        tier=tier,
        version=0,
        modeled_seconds=1e-5,
        cold_seconds=2e-3,
        wall_seconds=3e-4,
        cells=4,
        rungs=(
            RungDecision("cache", True, "resident in cache (4 cells)"),
        ),
        cache_audit=(EvictionRecord("admitted", "$a:rigid", 0.5, 4),),
    )


def make_write(op="insert"):
    return WriteEvent(
        seq=0,
        op=op,
        rows=3,
        version=1,
        patched_points=2,
        evicted_points=1,
        wall_seconds=1e-4,
    )


class TestEventShapes:
    def test_request_to_dict_carries_type_and_trails(self):
        out = make_request().to_dict()
        assert out["type"] == "request"
        assert out["rungs"][0]["reason"].startswith("resident")
        assert out["cache_audit"][0]["kind"] == "admitted"

    def test_write_to_dict(self):
        out = make_write().to_dict()
        assert out["type"] == "write"
        assert out["patched_points"] == 2

    def test_eviction_kinds_are_the_documented_set(self):
        assert EVICTION_KINDS == (
            "admitted", "evicted", "rejected", "invalidated",
        )


class TestEventLog:
    def test_append_stamps_increasing_seq(self):
        log = EventLog(capacity=10)
        stamped = [log.append(make_request()) for _ in range(5)]
        assert [event.seq for event in stamped] == [0, 1, 2, 3, 4]
        assert [event.seq for event in log.snapshot()] == [0, 1, 2, 3, 4]

    def test_append_does_not_mutate_the_input(self):
        log = EventLog()
        original = make_request()
        log.append(original)
        log.append(original)
        assert original.seq == 0
        assert [e.seq for e in log.snapshot()] == [0, 1]

    def test_ring_wraps_and_counts_dropped(self):
        log = EventLog(capacity=3)
        for _ in range(7):
            log.append(make_request())
        assert len(log) == 3
        assert log.total == 7
        assert log.dropped == 4
        assert [event.seq for event in log.snapshot()] == [4, 5, 6]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_tail(self):
        log = EventLog()
        for _ in range(5):
            log.append(make_request())
        assert [e.seq for e in log.tail(2)] == [3, 4]
        assert log.tail(0) == ()
        assert [e.seq for e in log.tail(99)] == [0, 1, 2, 3, 4]

    def test_requests_and_writes_filter_by_type(self):
        log = EventLog()
        log.append(make_request())
        log.append(make_write())
        log.append(make_request())
        assert [e.seq for e in log.requests()] == [0, 2]
        assert [e.seq for e in log.writes()] == [1]

    def test_clear_keeps_numbering(self):
        log = EventLog()
        log.append(make_request())
        assert log.clear() == 1
        assert len(log) == 0
        assert log.append(make_request()).seq == 1

    def test_concurrent_appends_never_lose_or_duplicate_seq(self):
        log = EventLog(capacity=10_000)
        per_thread = 200
        threads = [
            threading.Thread(
                target=lambda: [
                    log.append(make_request()) for _ in range(per_thread)
                ]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = [event.seq for event in log.snapshot()]
        assert sorted(seqs) == list(range(8 * per_thread))


class TestJsonl:
    def test_to_jsonl_round_trips(self):
        log = EventLog()
        log.append(make_request())
        log.append(make_write())
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["type"] == "request"
        assert second["type"] == "write"
        assert first["seq"] == 0 and second["seq"] == 1

    def test_empty_log_exports_empty_string(self):
        assert EventLog().to_jsonl() == ""

    def test_write_jsonl(self, tmp_path):
        log = EventLog()
        log.append(make_request())
        target = tmp_path / "events.jsonl"
        assert log.write_jsonl(str(target)) == 1
        assert json.loads(target.read_text())["kind"] == "cuboid"
