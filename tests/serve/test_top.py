"""Tests for the x3-top dashboard (repro.serve.top) and its HTML twin."""

import json

import pytest

from repro.bench.report import format_serving_html
from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.serve import CubeServer
from repro.serve.cli import sample_points
from repro.serve.top import main, render_dashboard
from repro.testing import small_workload
from repro.xmlmodel.serializer import serialize


@pytest.fixture()
def inputs(tmp_path):
    query_path = tmp_path / "query.xq"
    query_path.write_text(QUERY1_TEXT)
    data_path = tmp_path / "data.xml"
    data_path.write_text(serialize(figure1_document()))
    return str(query_path), str(data_path)


def served_workload():
    workload = small_workload(n_facts=60, seed=5)
    table = workload.fact_table()
    server = CubeServer(table, workload.oracle(table), cache_cells=256)
    for point in sample_points(table.lattice, 50, seed=3):
        server.cuboid(point)
    return server


class TestRenderDashboard:
    def test_sections_present(self):
        server = served_workload()
        text = render_dashboard(server)
        assert text.startswith("x3-top — cube serving @ version 0")
        assert "window" in text and "p95" in text and "burn" in text
        assert "ladder rungs" in text
        assert "hottest lattice points" in text
        assert "cache residency" in text

    def test_tier_bars_reflect_stats(self):
        server = served_workload()
        text = render_dashboard(server)
        stats = server.stats()
        for tier, count in stats.tiers.items():
            if count:
                assert f"{tier:<12} {count:>6}" in text

    def test_residency_rows_capped(self):
        server = served_workload()
        text = render_dashboard(server, residency_rows=2)
        resident = len(server.cache)
        if resident > 2:
            assert f"... {resident - 2} more" in text


class TestCliOneShot:
    def test_one_shot_report(self, inputs, capsys):
        query, data = inputs
        assert main(["--query", query, data, "--requests", "40"]) == 0
        out = capsys.readouterr().out
        assert "x3-top — cube serving" in out
        assert "ladder rungs" in out
        assert "60s" in out and "300s" in out

    def test_is_deterministic_in_modeled_terms(self, inputs, capsys):
        query, data = inputs
        args = ["--query", query, data, "--requests", "30", "--seed", "9"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        # Wall-clock columns differ run to run; the header line is
        # purely modeled and must match exactly.
        assert first.splitlines()[0] == second.splitlines()[0]

    def test_custom_windows_and_slo(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data, "--requests", "20",
                "--windows", "10", "120", "--slo", "1e-9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "10s" in out and "120s" in out
        # Every request violates a 1ns SLO: the burn rate is pinned
        # at 1/error-budget = 100.
        assert "100.00" in out

    def test_jsonl_and_html_outputs(self, inputs, tmp_path, capsys):
        query, data = inputs
        events = tmp_path / "events.jsonl"
        report = tmp_path / "report.html"
        code = main(
            [
                "--query", query, data, "--requests", "30",
                "--jsonl", str(events), "--html", str(report),
            ]
        )
        assert code == 0
        lines = events.read_text().splitlines()
        assert len(lines) == 30
        assert json.loads(lines[0])["type"] == "request"
        html_text = report.read_text()
        assert html_text.startswith("<!DOCTYPE html>")
        assert "x3 serving report" in html_text

    def test_bad_input_errors(self, inputs, capsys):
        _, data = inputs
        assert main(["--query", "/nope.xq", data]) == 1
        assert "error:" in capsys.readouterr().err


class TestServingHtml:
    def test_report_structure(self):
        server = served_workload()
        html_text = format_serving_html(server)
        assert "<h2>sliding windows</h2>" in html_text
        assert "<h2>sound-source ladder</h2>" in html_text
        assert "<h2>hottest lattice points" in html_text
        assert "<h2>cache residency" in html_text
        stats = server.stats()
        assert f"{stats.requests} requests" in html_text

    def test_values_are_escaped(self):
        server = served_workload()
        html_text = format_serving_html(server)
        # Lattice point descriptions contain '$' but never raw '<'.
        body = html_text.split("</style>")[1]
        assert "<script" not in body

    def test_no_external_assets(self):
        html_text = format_serving_html(served_workload())
        assert "http://" not in html_text
        assert "https://" not in html_text
        assert "src=" not in html_text


class TestServerPrometheus:
    def test_export_contains_documented_window_metrics(self):
        server = served_workload()
        text = server.prometheus()
        for name in (
            "x3_serve_requests_total",
            "x3_serve_request_modeled_seconds",
            "x3_serve_window_modeled_latency_seconds",
            "x3_serve_window_hit_ratio",
            "x3_serve_window_slo_burn_rate",
        ):
            assert name in text, name
