"""Unit tests for the augmented FLWOR parser (Query 1 syntax)."""

import pytest

from repro.core.xq_parser import parse_x3_query
from repro.datagen.publications import QUERY1_TEXT
from repro.errors import QueryParseError
from repro.patterns.pattern import EdgeAxis
from repro.patterns.relaxation import Relaxation


class TestQuery1:
    def test_fact_binding(self):
        query = parse_x3_query(QUERY1_TEXT)
        assert query.fact_tag == "publication"
        assert query.document == "book.xml"
        assert query.fact_id_path == "@id"

    def test_axes_order_and_paths(self):
        query = parse_x3_query(QUERY1_TEXT)
        assert [axis.name for axis in query.axes] == ["$n", "$p", "$y"]
        n, p, y = query.axes
        assert n.steps == (
            (EdgeAxis.CHILD, "author"), (EdgeAxis.CHILD, "name"),
        )
        assert p.steps == (
            (EdgeAxis.DESCENDANT, "publisher"), (EdgeAxis.CHILD, "@id"),
        )
        assert y.steps == ((EdgeAxis.CHILD, "year"),)

    def test_relaxations(self):
        query = parse_x3_query(QUERY1_TEXT)
        n, p, y = query.axes
        assert n.relaxations == {
            Relaxation.LND, Relaxation.SP, Relaxation.PC_AD,
        }
        assert p.relaxations == {Relaxation.LND, Relaxation.PC_AD}
        assert y.relaxations == {Relaxation.LND}

    def test_aggregate(self):
        query = parse_x3_query(QUERY1_TEXT)
        assert query.aggregate.function == "COUNT"


class TestVariants:
    def test_operator_spellings(self):
        for glyph in ("X^3", "X3", 'X"3', "X~3"):
            text = (
                'for $b in doc("d.xml")//f, $a in $b/x '
                f"{glyph} $b/@id by $a (LND) return COUNT($b)."
            )
            query = parse_x3_query(text)
            assert query.axes[0].name == "$a"

    def test_sum_aggregate_with_measure(self):
        text = (
            'for $s in doc("sales.xml")//sale, $r in $s/region '
            "X^3 $s/@id by $r (LND) return SUM($s/@amount)."
        )
        query = parse_x3_query(text)
        assert query.aggregate.function == "SUM"
        assert query.aggregate.measure_path == "@amount"

    def test_fact_identity_without_id(self):
        text = (
            'for $f in doc("d.xml")//f, $a in $f/x '
            "X^3 $f by $a (LND) return COUNT($f)."
        )
        assert parse_x3_query(text).fact_id_path == ""


class TestErrors:
    def test_missing_x3_clause(self):
        with pytest.raises(QueryParseError):
            parse_x3_query(
                'for $b in doc("d.xml")//f return COUNT($b).'
            )

    def test_missing_doc_binding(self):
        with pytest.raises(QueryParseError):
            parse_x3_query(
                "for $b in //f, $a in $b/x X^3 $b by $a (LND) "
                "return COUNT($b)."
            )

    def test_axis_not_relative_to_fact(self):
        with pytest.raises(QueryParseError):
            parse_x3_query(
                'for $b in doc("d.xml")//f, $a in $q/x '
                "X^3 $b by $a (LND) return COUNT($b)."
            )

    def test_unbound_variable_in_by(self):
        with pytest.raises(QueryParseError):
            parse_x3_query(
                'for $b in doc("d.xml")//f, $a in $b/x '
                "X^3 $b by $zz (LND) return COUNT($b)."
            )

    def test_variable_missing_from_by(self):
        with pytest.raises(QueryParseError):
            parse_x3_query(
                'for $b in doc("d.xml")//f, $a in $b/x, $c in $b/y '
                "X^3 $b by $a (LND) return COUNT($b)."
            )

    def test_unknown_relaxation(self):
        with pytest.raises(Exception):
            parse_x3_query(
                'for $b in doc("d.xml")//f, $a in $b/x '
                "X^3 $b by $a (WARP) return COUNT($b)."
            )
