"""Unit tests for the shared algorithm machinery."""

from repro.core.algorithms.base import (
    DEFAULT_MEMORY_ENTRIES,
    ENTRIES_PER_PAGE,
    ExecutionContext,
    row_entries,
    table_entries,
    table_pages,
)
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.properties import PropertyOracle
from repro.datagen.publications import query1


def tiny_table(n_rows=3, values_per_axis=2):
    lattice = query1().lattice()
    rows = []
    for number in range(n_rows):
        axes = tuple(
            tuple(
                AnnotatedValue(f"v{index}", 1)
                for index in range(values_per_axis)
            )
            for _ in range(lattice.axis_count)
        )
        rows.append(FactRow((0, number), 1.0, axes))
    return FactTable(lattice, rows)


class TestFootprints:
    def test_row_entries(self):
        table = tiny_table(n_rows=1, values_per_axis=2)
        # 1 + 3 axes x 2 values.
        assert row_entries(table.rows[0]) == 7

    def test_table_entries_sums_rows(self):
        table = tiny_table(n_rows=4)
        assert table_entries(table) == 4 * row_entries(table.rows[0])

    def test_table_pages_rounds_up(self):
        table = tiny_table(n_rows=1)
        assert table_pages(table) == 1
        big = tiny_table(n_rows=ENTRIES_PER_PAGE)
        assert table_pages(big) > 1

    def test_empty_table_one_page(self):
        lattice = query1().lattice()
        assert table_pages(FactTable(lattice, [])) == 1


class TestExecutionContext:
    def test_defaults(self):
        table = tiny_table()
        context = ExecutionContext(table, None, None)
        assert context.budget.capacity_entries == DEFAULT_MEMORY_ENTRIES
        assert not context.oracle.disjoint(table.lattice.top)
        assert context.min_support == 0.0

    def test_charge_base_scan(self):
        table = tiny_table()
        context = ExecutionContext(table, None, None)
        context.charge_base_scan()
        assert context.cost.io.page_reads == context.base_pages
        assert context.cost.cpu_ops == len(table.rows)

    def test_charge_spill(self):
        table = tiny_table()
        context = ExecutionContext(table, None, 100)
        context.charge_spill(ENTRIES_PER_PAGE * 3)
        assert context.cost.io.page_writes == 3
        assert context.cost.io.page_reads == 3

    def test_oracle_passed_through(self):
        table = tiny_table()
        oracle = PropertyOracle.from_flags(table.lattice, True, True)
        context = ExecutionContext(table, oracle, None)
        assert context.oracle.disjoint(table.lattice.top)
