"""Unit tests for incremental cube maintenance."""

import pytest

from repro.core.bindings import FactTable
from repro.core.cube import compute_cube
from repro.core.incremental import IncrementalCube, split_rows
from repro.errors import CubeError
from tests.conftest import small_workload


def fresh_table(**overrides):
    return small_workload(**overrides).fact_table()


class TestInsert:
    def test_matches_recompute_after_inserts(self):
        table = fresh_table(n_facts=100, seed=12)
        initial, delta = split_rows(table, 0.6)
        live = FactTable(table.lattice, initial, aggregate=table.aggregate)
        cube = IncrementalCube(live)
        cube.insert(delta)
        reference = compute_cube(
            FactTable(table.lattice, table.rows, aggregate=table.aggregate),
            "NAIVE",
        )
        assert cube.as_result().same_contents(reference)

    def test_empty_start(self):
        table = fresh_table(n_facts=40)
        live = FactTable(table.lattice, [], aggregate=table.aggregate)
        cube = IncrementalCube(live)
        cube.insert(table.rows)
        reference = compute_cube(table, "NAIVE")
        assert cube.as_result().same_contents(reference)

    def test_batched_equals_single_shot(self):
        table = fresh_table(n_facts=60, seed=4)
        one = IncrementalCube(
            FactTable(table.lattice, [], aggregate=table.aggregate)
        )
        one.insert(table.rows)
        many = IncrementalCube(
            FactTable(table.lattice, [], aggregate=table.aggregate)
        )
        for row in table.rows:
            many.insert([row])
        assert one.as_result().same_contents(many.as_result())

    def test_messy_data_supported(self):
        table = fresh_table(
            n_facts=80, coverage=False, disjoint=False, seed=5
        )
        cube = IncrementalCube(table)
        reference = compute_cube(table, "NAIVE")
        assert cube.as_result().same_contents(reference)

    def test_update_count_reported(self):
        table = fresh_table(n_facts=10)
        live = FactTable(table.lattice, [], aggregate=table.aggregate)
        cube = IncrementalCube(live)
        assert cube.insert(table.rows[:1]) > 0


class TestDelete:
    def test_insert_then_delete_roundtrip(self):
        table = fresh_table(n_facts=60, seed=9)
        keep, churn = split_rows(table, 0.7)
        live = FactTable(
            table.lattice, list(keep), aggregate=table.aggregate
        )
        cube = IncrementalCube(live)
        cube.insert(list(churn))
        cube.delete(list(churn))
        reference = compute_cube(
            FactTable(table.lattice, keep, aggregate=table.aggregate),
            "NAIVE",
        )
        assert cube.as_result().same_contents(reference)

    def test_delete_unknown_fact_rejected(self):
        table = fresh_table(n_facts=20)
        cube = IncrementalCube(table)
        ghost = table.rows[0]
        cube.delete([ghost])
        with pytest.raises(CubeError):
            cube.delete([ghost])

    def test_fully_retracted_groups_disappear(self):
        table = fresh_table(n_facts=20, seed=6)
        cube = IncrementalCube(table)
        cube.delete(list(table.rows))
        result = cube.as_result()
        assert all(not cuboid for cuboid in result.cuboids.values())


class TestAggregates:
    def test_avg_incremental(self):
        import random

        from repro.core.aggregates import AggregateSpec
        from repro.core.axes import AxisSpec
        from repro.core.extract import extract_fact_table
        from repro.core.query import X3Query
        from repro.xmlmodel.nodes import Document, Element

        rng = random.Random(2)
        root = Element("r")
        for number in range(40):
            fact = root.make_child("f", attrs={"w": str(rng.randrange(9))})
            fact.make_child("a", text=f"g{rng.randrange(3)}")
        query = X3Query(
            fact_tag="f",
            axes=(AxisSpec.from_path("$a", "a"),),
            aggregate=AggregateSpec("AVG", "@w"),
            fact_id_path="",
        )
        table = extract_fact_table(Document(root), query)
        initial, delta = split_rows(table, 0.5)
        cube = IncrementalCube(
            FactTable(table.lattice, initial, aggregate=table.aggregate)
        )
        cube.insert(delta)
        reference = compute_cube(
            FactTable(table.lattice, table.rows, aggregate=table.aggregate),
            "NAIVE",
        )
        assert cube.as_result().same_contents(reference)

    def test_cell_accessor(self):
        table = fresh_table(n_facts=30)
        cube = IncrementalCube(table)
        assert cube.cell(table.lattice.bottom, ()) == float(len(table))
        assert cube.cell(table.lattice.bottom, ("zzz",)) is None
