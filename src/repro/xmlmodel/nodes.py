"""Tree node model with TIMBER-style region encoding.

An XML document is modelled as a tree of :class:`Element` nodes.  Each
element owns an ordered attribute mapping and a text value (the
concatenation of its direct text children; mixed content keeps document
order in ``text_chunks``).  After construction, :meth:`Document.reindex`
assigns every element a *region encoding* ``(start, end, level)``:

- ``start``: preorder position of the opening tag,
- ``end``:   position after the closing tag (so a descendant ``d`` of ``a``
  satisfies ``a.start < d.start`` and ``d.end < a.end``),
- ``level``: depth from the root (root at level 0).

The encoding is what the structural-join algorithms in
:mod:`repro.timber.structural_join` operate on, and it is also convenient
for fast ancestor tests in the in-memory matcher.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import XmlStructureError


class Element:
    """An XML element node.

    Attributes:
        tag: element name.
        attrs: attribute name -> value mapping (insertion ordered).
        text_chunks: direct text content pieces in document order.
        children: child elements in document order.
        parent: parent element, or None for a root.
        start, end, level: region encoding, assigned by
            :meth:`Document.reindex` (``-1`` until then).
        node_id: document-order ordinal among elements (0-based), assigned
            by :meth:`Document.reindex`.
    """

    __slots__ = (
        "tag",
        "attrs",
        "text_chunks",
        "children",
        "parent",
        "start",
        "end",
        "level",
        "node_id",
    )

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        text: Optional[str] = None,
    ) -> None:
        if not tag:
            raise XmlStructureError("element tag must be a non-empty string")
        self.tag = tag
        self.attrs: Dict[str, str] = dict(attrs) if attrs else {}
        self.text_chunks: List[str] = [text] if text else []
        self.children: List["Element"] = []
        self.parent: Optional["Element"] = None
        self.start = -1
        self.end = -1
        self.level = -1
        self.node_id = -1

    # ------------------------------------------------------------------
    # content
    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        """Direct text content (concatenated chunks, stripped)."""
        return "".join(self.text_chunks).strip()

    def full_text(self) -> str:
        """Text of this element and all descendants, in document order."""
        parts = list(self.text_chunks)
        for child in self.children:
            parts.append(child.full_text())
        return "".join(parts).strip()

    def append_text(self, chunk: str) -> None:
        """Append a raw text chunk (used by the parser; keeps order)."""
        if chunk:
            self.text_chunks.append(chunk)

    # ------------------------------------------------------------------
    # tree construction
    # ------------------------------------------------------------------
    def append(self, child: "Element") -> "Element":
        """Attach ``child`` as the last child and return it."""
        if child.parent is not None:
            raise XmlStructureError(
                f"element <{child.tag}> already has a parent <{child.parent.tag}>"
            )
        child.parent = self
        self.children.append(child)
        return child

    def make_child(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        text: Optional[str] = None,
    ) -> "Element":
        """Create, attach, and return a new child element."""
        return self.append(Element(tag, attrs=attrs, text=text))

    def detach(self) -> "Element":
        """Remove this element from its parent and return it."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    # ------------------------------------------------------------------
    # navigation primitives (richer axes live in navigation.py)
    # ------------------------------------------------------------------
    def iter_descendants(self) -> Iterator["Element"]:
        """Yield all proper descendants in document order."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_subtree(self) -> Iterator["Element"]:
        """Yield this element, then all descendants, in document order."""
        yield self
        yield from self.iter_descendants()

    def iter_ancestors(self) -> Iterator["Element"]:
        """Yield ancestors from the parent upward."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def find_children(self, tag: str) -> List["Element"]:
        """Direct children with the given tag, in document order."""
        return [child for child in self.children if child.tag == tag]

    def find_descendants(self, tag: str) -> List["Element"]:
        """Proper descendants with the given tag, in document order."""
        return [node for node in self.iter_descendants() if node.tag == tag]

    def contains(self, other: "Element") -> bool:
        """True if ``other`` is a proper descendant (via region encoding
        when indexed, otherwise by walking parents)."""
        if self.start >= 0 and other.start >= 0:
            return (
                self.start < other.start
                and other.end <= self.end
                and self is not other
            )
        return any(anc is self for anc in other.iter_ancestors())

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def value(self) -> str:
        """The grouping value of this element: its direct text."""
        return self.text

    def attr(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Attribute value or ``default``."""
        return self.attrs.get(name, default)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"<Element {self.tag}"]
        if self.attrs:
            bits.append(f" attrs={self.attrs!r}")
        if self.start >= 0:
            bits.append(f" region=({self.start},{self.end},{self.level})")
        bits.append(">")
        return "".join(bits)


class Document:
    """A parsed XML document: a root element plus index bookkeeping.

    Use :meth:`reindex` after any structural mutation; parsing and the data
    generators call it for you.
    """

    def __init__(self, root: Element, name: str = "") -> None:
        if root.parent is not None:
            raise XmlStructureError("document root must not have a parent")
        self.root = root
        self.name = name
        self._elements: List[Element] = []
        self.reindex()

    # ------------------------------------------------------------------
    def reindex(self) -> None:
        """(Re-)assign region encodings and node ids in document order."""
        self._elements = []
        counter = 0
        order = 0

        def visit(node: Element, level: int) -> None:
            nonlocal counter, order
            node.start = counter
            node.level = level
            node.node_id = order
            self._elements.append(node)
            counter += 1
            order += 1
            for child in node.children:
                visit(child, level + 1)
            node.end = counter
            counter += 1

        visit(self.root, 0)

    # ------------------------------------------------------------------
    @property
    def elements(self) -> List[Element]:
        """All elements in document order (index == ``node_id``)."""
        return self._elements

    def element_count(self) -> int:
        return len(self._elements)

    def by_id(self, node_id: int) -> Element:
        """Look up an element by its document-order id."""
        try:
            return self._elements[node_id]
        except IndexError:
            raise XmlStructureError(f"no element with node_id {node_id}") from None

    def iter_tags(self) -> Iterable[str]:
        """Distinct tags appearing in the document (document order of
        first occurrence)."""
        seen = set()
        for node in self._elements:
            if node.tag not in seen:
                seen.add(node.tag)
                yield node.tag

    def find_all(self, tag: str) -> List[Element]:
        """All elements with the given tag in document order."""
        return [node for node in self._elements if node.tag == tag]

    def max_depth(self) -> int:
        """Maximum element level (root is 0)."""
        return max(node.level for node in self._elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Document {self.name or self.root.tag!r}"
            f" elements={len(self._elements)}>"
        )


def validate_regions(doc: Document) -> None:
    """Check region-encoding invariants; raise :class:`XmlStructureError`
    if violated.  Used by tests and after mutating operations.

    Invariants:
        - ``start < end`` for every element;
        - child regions are strictly nested inside the parent region;
        - sibling regions are disjoint and ordered;
        - ``level`` equals parent's level + 1.
    """
    for node in doc.elements:
        if not node.start < node.end:
            raise XmlStructureError(
                f"bad region on <{node.tag}>: {node.start},{node.end}"
            )
        prev_end = node.start
        for child in node.children:
            if child.level != node.level + 1:
                raise XmlStructureError(
                    f"bad level on <{child.tag}>: {child.level} under"
                    f" level {node.level}"
                )
            if not (prev_end < child.start and child.end < node.end):
                raise XmlStructureError(
                    f"child region of <{child.tag}> not nested in <{node.tag}>"
                )
            prev_end = child.end
