"""Unit tests for the bounded trace store (repro.obs.trace_store)."""

import json
import threading

import pytest

from repro.obs.tracer import SpanRecord
from repro.obs.trace_store import (
    NULL_TRACE_SPAN,
    TraceStore,
    bound,
    capture,
    current_span,
    resume,
    trace_span,
)


def make_store(**kwargs):
    kwargs.setdefault("seed", 0)
    return TraceStore(**kwargs)


class TestRoot:
    def test_sampled_root_records_a_trace(self):
        store = make_store()
        with store.root("http.request", category="http") as root:
            assert root.enabled
            assert bound()
            assert current_span() is root
        assert not bound()
        traces = store.traces()
        assert len(traces) == 1
        record = traces[0]
        assert record.name == "http.request"
        assert record.status == "ok"
        assert record.spans[0].parent_id == ""
        assert record.trace_id == record.spans[0].trace_id

    def test_minted_context_is_deterministic_per_seed(self):
        ids = []
        for _ in range(2):
            store = make_store(seed=7)
            with store.root("r") as root:
                ids.append(root.trace_id_hex)
        assert ids[0] == ids[1]
        other = make_store(seed=8)
        with other.root("r") as root:
            assert root.trace_id_hex != ids[0]

    def test_upstream_traceparent_joins_the_trace(self):
        store = make_store()
        upstream = "00-" + "a" * 32 + "-" + "b" * 16 + "-01"
        with store.root("r", traceparent=upstream) as root:
            assert root.trace_id_hex == "a" * 32
            # the root parents under the upstream caller's span
            assert root.parent_hex == "b" * 16
        assert store.traces()[0].trace_id == "a" * 32

    def test_upstream_unsampled_verdict_is_honored(self):
        store = make_store()
        upstream = "00-" + "a" * 32 + "-" + "b" * 16 + "-00"
        with store.root("r", traceparent=upstream) as root:
            assert not root.enabled
            assert bound()  # bound so inner layers do not re-mint
            assert root.traceparent.endswith("-00")
            child = trace_span("inner")
            assert child is NULL_TRACE_SPAN
        assert store.traces() == ()
        assert store.stats()["started"] == 1
        assert store.stats()["sampled"] == 0

    def test_malformed_traceparent_falls_back_to_minting(self):
        store = make_store()
        with store.root("r", traceparent="garbage") as root:
            assert root.enabled
            assert root.parent_hex == ""
        assert len(store.traces()) == 1

    def test_head_sampling_rate_zero_records_nothing(self):
        store = make_store(sample_rate=0.0)
        with store.root("r") as root:
            assert not root.enabled
            assert root.traceparent.endswith("-00")
        assert store.traces() == ()


class TestSpans:
    def test_children_nest_and_share_the_trace_id(self):
        store = make_store()
        with store.root("r") as root:
            with trace_span("a", category="serve") as a:
                with trace_span("b") as b:
                    assert b.trace_id_hex == root.trace_id_hex
                    assert b.parent_hex == a.span_id_hex
                assert a.parent_hex == root.span_id_hex
        record = store.traces()[0]
        assert len(record.spans) == 3
        assert {span.trace_id for span in record.spans} == {
            record.trace_id
        }

    def test_keyed_children_get_schedule_independent_ids(self):
        ids = []
        for _ in range(2):
            store = make_store(seed=3)
            with store.root("r") as root:
                spans = [
                    root.child("cluster.shard", key=f"s{n}")
                    for n in range(4)
                ]
                # enter/exit in reversed order: ids must not change
                for span in reversed(spans):
                    with span:
                        pass
            record = store.traces()[0]
            ids.append(
                sorted(
                    span.span_id
                    for span in record.spans
                    if span.name == "cluster.shard"
                )
            )
        assert ids[0] == ids[1]
        assert len(set(ids[0])) == 4

    def test_sibling_counter_distinguishes_unkeyed_children(self):
        store = make_store()
        with store.root("r") as root:
            with root.child("step"):
                pass
            with root.child("step"):
                pass
        record = store.traces()[0]
        step_ids = {
            span.span_id
            for span in record.spans
            if span.name == "step"
        }
        assert len(step_ids) == 2

    def test_exception_marks_span_and_trace_error(self):
        store = make_store()
        with pytest.raises(RuntimeError):
            with store.root("r"):
                with trace_span("inner"):
                    raise RuntimeError("boom")
        record = store.traces()[0]
        assert record.status == "error"
        assert record.retained == "error"
        inner = next(s for s in record.spans if s.name == "inner")
        assert inner.status == "error"
        assert inner.attrs["error"] == "RuntimeError"

    def test_deadline_status_is_tail_retained(self):
        store = make_store()
        with store.root("r") as root:
            root.set_status("deadline")
        record = store.traces()[0]
        assert record.status == "deadline"
        assert record.retained == "deadline"

    def test_annotate_and_set_sim_chain(self):
        store = make_store()
        with store.root("r") as root:
            root.annotate(tier="cache").set_sim(0.25)
        record = store.traces()[0]
        assert record.sim_seconds == 0.25
        assert record.spans[0].attrs["tier"] == "cache"

    def test_span_cap_drops_excess_spans(self):
        store = make_store(max_spans_per_trace=3)
        with store.root("r"):
            for n in range(10):
                with trace_span(f"s{n}"):
                    pass
        record = store.traces()[0]
        # 3 spans kept (the cap); the root arrives after the cap fills
        assert len(record.spans) == 3
        assert store.stats()["dropped_spans"] > 0


class TestAbsorb:
    def test_engine_records_remap_ids_under_the_span(self):
        store = make_store()
        records = [
            SpanRecord(
                span_id=1,
                parent_id=None,
                name="engine.run",
                category="engine",
                start=0.0,
                duration=0.5,
                thread="pid-9/worker-0",
                sim_duration=0.25,
            ),
            SpanRecord(
                span_id=2,
                parent_id=1,
                name="algo.NAIVE",
                category="algorithm",
                start=0.1,
                duration=0.4,
                thread="pid-9/worker-0",
                sim_duration=0.2,
            ),
        ]
        with store.root("r") as root:
            assert root.absorb(records) == 2
            root_span_id = root.span_id_hex
        record = store.traces()[0]
        by_name = {span.name: span for span in record.spans}
        top = by_name["engine.run"]
        child = by_name["algo.NAIVE"]
        # the orphan engine root reparents under the absorbing span;
        # the child keeps its (remapped) engine parent
        assert top.parent_id == root_span_id
        assert child.parent_id == top.span_id
        assert top.span_id != "0000000000000001"  # remapped, not raw
        assert {span.trace_id for span in record.spans} == {
            record.trace_id
        }

    def test_absorb_is_deterministic(self):
        outs = []
        for _ in range(2):
            store = make_store(seed=5)
            records = [
                SpanRecord(
                    span_id=7,
                    parent_id=None,
                    name="engine.run",
                    category="engine",
                    start=0.0,
                    duration=0.1,
                    thread="t",
                )
            ]
            with store.root("r") as root:
                root.absorb(records)
            outs.append(
                [span.span_id for span in store.traces()[0].spans]
            )
        assert outs[0] == outs[1]

    def test_absorb_empty_is_zero(self):
        store = make_store()
        with store.root("r") as root:
            assert root.absorb([]) == 0


class TestCaptureResume:
    def test_cross_thread_handoff_keeps_the_parent(self):
        store = make_store()
        seen = {}

        def worker(handle):
            with resume(handle):
                with trace_span("pool.work") as span:
                    seen["trace"] = span.trace_id_hex
                    seen["parent"] = span.parent_hex

        with store.root("r") as root:
            handle = capture()
            thread = threading.Thread(target=worker, args=(handle,))
            thread.start()
            thread.join()
            expected_parent = root.span_id_hex
            expected_trace = root.trace_id_hex
        assert seen["trace"] == expected_trace
        assert seen["parent"] == expected_parent
        assert len(store.traces()[0].spans) == 2

    def test_resume_none_is_a_noop(self):
        with resume(None):
            assert not bound()
            assert trace_span("x") is NULL_TRACE_SPAN

    def test_capture_without_binding_is_none(self):
        assert capture() is None

    def test_unsampled_binding_resumes_without_recording(self):
        store = make_store(sample_rate=0.0)
        with store.root("r"):
            handle = capture()
        assert handle is not None
        with resume(handle):
            assert bound()
            assert trace_span("x") is NULL_TRACE_SPAN


class TestStoreBounds:
    def test_ring_eviction_keeps_the_newest(self):
        store = make_store(capacity=2)
        for n in range(5):
            with store.root(f"r{n}"):
                pass
        traces = store.traces()
        assert [record.name for record in traces] == ["r3", "r4"]
        assert store.stats()["dropped_traces"] == 3

    def test_retained_pool_survives_ring_eviction(self):
        store = make_store(capacity=2)
        with store.root("bad") as root:
            root.set_status("error")
        for n in range(10):
            with store.root(f"ok{n}"):
                pass
        names = {record.name for record in store.traces()}
        assert "bad" in names

    def test_slow_tail_retention_kicks_in_above_p99(self):
        store = make_store(slow_window=256)
        # 30 fast requests to build the window, then one 100x outlier
        for _ in range(30):
            with store.root("fast") as root:
                root.set_sim(0.001)
        with store.root("slow") as root:
            root.set_sim(0.1)
        slow = next(
            record
            for record in store.traces()
            if record.name == "slow"
        )
        assert slow.retained == "slow"

    def test_get_and_stats(self):
        store = make_store()
        with store.root("r") as root:
            trace_id = root.trace_id_hex
        assert store.get(trace_id).trace_id == trace_id
        assert store.get("nope") is None
        stats = store.stats()
        assert stats["started"] == stats["sampled"] == 1
        assert stats["finished"] == stats["stored"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestJsonl:
    def test_canonical_lines_parse_and_sort_keys(self):
        store = make_store()
        with store.root("r") as root:
            with trace_span("inner"):
                pass
            root.set_sim(0.5)
        text = store.to_jsonl()
        assert text.endswith("\n")
        lines = text.strip().split("\n")
        assert len(lines) == 1
        decoded = json.loads(lines[0])
        assert decoded["name"] == "r"
        assert list(decoded) == sorted(decoded)
        # canonical separators: no spaces
        assert ": " not in lines[0] and ", " not in lines[0]

    def test_two_seeded_runs_identical_modulo_wall_keys(self):
        def run():
            store = make_store(seed=11)
            for n in range(3):
                with store.root("r", n=n) as root:
                    with trace_span("inner", key=f"k{n}"):
                        pass
                    root.set_sim(0.01 * (n + 1))
            return store.to_jsonl()

        def strip_wall(text):
            out = []
            for line in text.strip().split("\n"):
                record = json.loads(line)
                record.pop("wall_seconds", None)
                for span in record["spans"]:
                    span.pop("wall_seconds", None)
                    span.pop("start_wall_seconds", None)
                out.append(
                    json.dumps(
                        record, sort_keys=True, separators=(",", ":")
                    )
                )
            return "\n".join(out)

        assert strip_wall(run()) == strip_wall(run())

    def test_write_jsonl_returns_count(self, tmp_path):
        store = make_store()
        for _ in range(2):
            with store.root("r"):
                pass
        path = tmp_path / "traces.jsonl"
        assert store.write_jsonl(str(path)) == 2
        assert len(path.read_text().strip().split("\n")) == 2
