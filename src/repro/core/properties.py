"""Summarizability property oracles.

Sec. 3.6/3.7: whether an optimized (or locally customized) algorithm is
*allowed* to take a shortcut at a lattice point depends on whether
disjointness / total coverage are guaranteed there.  Three oracle
constructions, all exposing the same interface:

- :meth:`PropertyOracle.from_flags` — the experiment *declares* the
  regime globally (how the paper configures its Treebank settings);
- :meth:`PropertyOracle.from_schema` — inferred per axis state from a
  DTD (Sec. 3.7; what BUCCUST/TDCUST use on DBLP);
- :meth:`PropertyOracle.from_data` — ground truth measured on the fact
  table (used by tests to check the schema oracle is conservative).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.bindings import FactTable
from repro.core.lattice import CubeLattice, LatticePoint
from repro.schema.dtd import Dtd
from repro.schema.properties import (
    PropertyVerdict,
    axis_coverage,
    axis_disjointness,
)


class PropertyOracle:
    """Per-(axis, structural state) property verdicts, combined per point.

    ``axis_disjoint[(position, state)]`` is True when the axis is
    guaranteed to bind at most one value under that structural state;
    ``axis_covered`` likewise for at least one value.
    """

    def __init__(
        self,
        lattice: CubeLattice,
        axis_disjoint: Dict[Tuple[int, int], bool],
        axis_covered: Dict[Tuple[int, int], bool],
    ) -> None:
        self.lattice = lattice
        self._axis_disjoint = axis_disjoint
        self._axis_covered = axis_covered

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_flags(
        lattice: CubeLattice, disjointness: bool, coverage: bool
    ) -> "PropertyOracle":
        """Globally declared regime (the controlled Treebank settings)."""
        disjoint: Dict[Tuple[int, int], bool] = {}
        covered: Dict[Tuple[int, int], bool] = {}
        for position, states in enumerate(lattice.axis_states):
            for state in range(len(states.states)):
                disjoint[(position, state)] = disjointness
                covered[(position, state)] = coverage
        return PropertyOracle(lattice, disjoint, covered)

    @staticmethod
    def from_schema(
        lattice: CubeLattice, dtd: Dtd, fact_tag: str
    ) -> "PropertyOracle":
        """Sec. 3.7: infer per-axis-state verdicts from the DTD.

        A state's binding path decides both properties; for SP states the
        existence prefix must also always match for coverage to hold.
        ``UNKNOWN`` verdicts count as "may fail" (conservative).
        """
        disjoint: Dict[Tuple[int, int], bool] = {}
        covered: Dict[Tuple[int, int], bool] = {}
        for position, states in enumerate(lattice.axis_states):
            axis = states.axis
            for state in range(len(states.states)):
                applied = states.structural_state(state)
                binding, prefix = axis.steps_for_state(applied)
                binding_nav = axis.nav_steps(binding)
                disjoint[(position, state)] = axis_disjointness(
                    dtd, fact_tag, binding_nav
                ) is PropertyVerdict.HOLDS
                cov = axis_coverage(dtd, fact_tag, binding_nav)
                if prefix and cov is PropertyVerdict.HOLDS:
                    cov = axis_coverage(
                        dtd, fact_tag, axis.nav_steps(prefix)
                    )
                covered[(position, state)] = cov is PropertyVerdict.HOLDS
        return PropertyOracle(lattice, disjoint, covered)

    @staticmethod
    def from_data(table: FactTable) -> "PropertyOracle":
        """Ground truth measured on the extracted fact table."""
        lattice = table.lattice
        disjoint: Dict[Tuple[int, int], bool] = {}
        covered: Dict[Tuple[int, int], bool] = {}
        for position, states in enumerate(lattice.axis_states):
            for state in range(len(states.states)):
                multi = False
                missing = False
                for row in table.rows:
                    values = row.values_under(position, state)
                    if len(values) > 1:
                        multi = True
                    if not values:
                        missing = True
                    if multi and missing:
                        break
                disjoint[(position, state)] = not multi
                covered[(position, state)] = not missing
        return PropertyOracle(lattice, disjoint, covered)

    # ------------------------------------------------------------------
    # point-level queries
    # ------------------------------------------------------------------
    def axis_disjoint(self, position: int, state: int) -> bool:
        return self._axis_disjoint.get((position, state), False)

    def axis_covered(self, position: int, state: int) -> bool:
        return self._axis_covered.get((position, state), False)

    def disjoint(self, point: LatticePoint) -> bool:
        """Is the cuboid at ``point`` guaranteed pairwise disjoint?"""
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            if not self.axis_disjoint(position, state):
                return False
        return True

    def covered(self, point: LatticePoint) -> bool:
        """Is every fact guaranteed to participate at ``point`` (so any
        roll-up dropping further axes from it has total coverage)?"""
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            if not self.axis_covered(position, state):
                return False
        return True

    def globally_disjoint(self) -> bool:
        return all(self.disjoint(point) for point in self.lattice.points())

    def globally_covered(self) -> bool:
        return all(self.covered(point) for point in self.lattice.points())


def oracle_from(
    lattice: CubeLattice,
    disjointness: Optional[bool] = None,
    coverage: Optional[bool] = None,
    dtd: Optional[Dtd] = None,
    fact_tag: str = "",
    table: Optional[FactTable] = None,
) -> PropertyOracle:
    """Convenience dispatcher: flags > schema > data > pessimistic."""
    if disjointness is not None and coverage is not None:
        return PropertyOracle.from_flags(lattice, disjointness, coverage)
    if dtd is not None and fact_tag:
        return PropertyOracle.from_schema(lattice, dtd, fact_tag)
    if table is not None:
        return PropertyOracle.from_data(table)
    return PropertyOracle.from_flags(lattice, False, False)
