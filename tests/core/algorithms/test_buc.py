"""Unit tests for the bottom-up family (Sec. 3.4)."""

from repro.core.cube import compute_cube
from repro.core.properties import PropertyOracle
from tests.conftest import small_workload


class TestBucCorrectness:
    def test_bottom_group_counts_each_fact_once(self, fig1_table):
        cube = compute_cube(fig1_table, "BUC")
        assert cube.cuboids[fig1_table.lattice.bottom] == {(): 4.0}

    def test_overlapping_partitions_replicate(self, fig1_table):
        cube = compute_cube(fig1_table, "BUC")
        point = fig1_table.lattice.point_by_description(
            "$n:rigid, $p:LND, $y:LND"
        )
        # pub1 lands in both the John and Jane partitions.
        assert cube.cuboids[point][("John",)] == 2.0  # pub1 + pub2
        assert cube.cuboids[point][("Jane",)] == 1.0


class TestBucOptWrongness:
    def test_first_value_placement_undercounts(self, fig1_table):
        cube = compute_cube(fig1_table, "BUCOPT")
        point = fig1_table.lattice.point_by_description(
            "$n:rigid, $p:LND, $y:LND"
        )
        cuboid = cube.cuboids[point]
        # pub1 went only to its first author's partition: Jane's group
        # lost it entirely.
        assert cuboid.get(("Jane",), 0.0) == 0.0
        assert cuboid[("John",)] == 2.0


class TestCosts:
    def test_bucopt_cheaper_on_disjoint_data(self):
        table = small_workload(
            disjoint=True, coverage=True, n_facts=200, n_axes=4
        ).fact_table()
        safe = compute_cube(table, "BUC")
        fast = compute_cube(table, "BUCOPT")
        assert fast.simulated_seconds < safe.simulated_seconds
        assert fast.same_contents(safe)

    def test_sparse_buc_beats_td(self):
        table = small_workload(
            density="sparse", n_facts=200, n_axes=4
        ).fact_table()
        buc = compute_cube(table, "BUC")
        td = compute_cube(table, "TD")
        assert buc.simulated_seconds < td.simulated_seconds


class TestBucCust:
    def test_oracle_guides_partitioning(self):
        workload = small_workload(
            disjoint=False, coverage=True, n_facts=150, seed=23
        )
        table = workload.fact_table()
        naive = compute_cube(table, "NAIVE")
        # With a truthful per-axis oracle BUCCUST stays correct.
        truthful = PropertyOracle.from_data(table)
        cust = compute_cube(table, "BUCCUST", oracle=truthful)
        assert cust.same_contents(naive)

    def test_buccust_between_buc_and_bucopt(self):
        """On mixed data (some axes disjoint, some not), BUCCUST should
        cost between the safe and the fully-optimistic variants."""
        from repro.datagen.dblp import DblpConfig, dblp_dtd, dblp_query, generate_dblp
        from repro.core.extract import extract_fact_table

        doc = generate_dblp(DblpConfig(n_articles=400, seed=6))
        table = extract_fact_table(doc, dblp_query())
        oracle = PropertyOracle.from_schema(
            table.lattice, dblp_dtd(), "article"
        )
        buc = compute_cube(table, "BUC")
        bucopt = compute_cube(table, "BUCOPT")
        cust = compute_cube(table, "BUCCUST", oracle=oracle)
        assert bucopt.simulated_seconds <= cust.simulated_seconds
        assert cust.simulated_seconds <= buc.simulated_seconds
        # ... while staying correct, unlike BUCOPT.
        naive = compute_cube(table, "NAIVE")
        assert cust.same_contents(naive)
        assert not bucopt.same_contents(naive)
