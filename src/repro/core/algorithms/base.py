"""Shared algorithm machinery: execution context and the base class.

Every algorithm runs against an :class:`ExecutionContext` holding its own
cost model and memory budget, and reads the materialized fact table (the
paper's protocol: the witness file is read in, cubing performed, results
written out).  Reading the base data charges page I/O proportional to the
table's entry footprint; operator memory beyond the budget spills through
:func:`repro.timber.external_sort.sorted_with_cost`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.core.bindings import FactRow, FactTable
from repro.core.groupby import Cuboid
from repro.core.cube import CostSnapshot, CubeResult
from repro.core.lattice import CubeLattice, LatticePoint
from repro.core.properties import PropertyOracle
from repro.timber.stats import CostModel, MemoryBudget

DEFAULT_MEMORY_ENTRIES = 50_000
ENTRIES_PER_PAGE = 128


def row_entries(row: FactRow) -> int:
    """Abstract storage footprint of one fact row (in budget entries)."""
    return 1 + sum(len(axis_values) for axis_values in row.axes)


def table_entries(table: FactTable) -> int:
    return sum(row_entries(row) for row in table.rows)


def table_pages(table: FactTable) -> int:
    return max(1, -(-table_entries(table) // ENTRIES_PER_PAGE))


class ExecutionContext:
    """Per-run cost model, memory budget and property oracle."""

    def __init__(
        self,
        table: FactTable,
        oracle: Optional[PropertyOracle],
        memory_entries: Optional[int],
        min_support: float = 0.0,
        encoding: str = "auto",
    ) -> None:
        self.table = table
        self.min_support = min_support
        self.encoding = encoding
        self.lattice: CubeLattice = table.lattice
        self.cost = CostModel()
        self.budget = MemoryBudget(
            memory_entries or DEFAULT_MEMORY_ENTRIES,
            entries_per_page=ENTRIES_PER_PAGE,
        )
        self.oracle = oracle or PropertyOracle.from_flags(
            table.lattice, False, False
        )
        self._base_pages = table_pages(table)
        # Per-run phase counters (base scans, partitions, roll-ups, ...).
        # Plain dict bumps at coarse points — always on, flushed into the
        # observability registry after the run when tracing is active.
        self.phases: Dict[str, float] = {}

    def bump(self, phase: str, amount: float = 1) -> None:
        """Count one algorithm phase event (cheap; never per-row)."""
        self.phases[phase] = self.phases.get(phase, 0) + amount

    @property
    def use_columnar(self) -> bool:
        """Should an encoding-capable algorithm take its columnar path?

        ``"auto"`` and ``"columnar"`` both say yes; only an explicit
        ``"dict"`` pins the legacy row path (the duels and differential
        cross-checks rely on this to time both kernels).
        """
        return self.encoding != "dict"

    def charge_encoded_scan(self, encoded_pages: int) -> None:
        """One sequential pass over the dictionary-encoded columns."""
        self.bump("base_scans")
        self.bump("columnar_scans")
        self.cost.charge_read(encoded_pages)

    def charge_base_scan(self) -> None:
        """One sequential pass over the materialized fact table."""
        self.bump("base_scans")
        self.cost.charge_read(self._base_pages)
        self.cost.charge_cpu(len(self.table.rows))

    def charge_spill(self, entries: int) -> None:
        """Write + eventual re-read of spilled working data."""
        pages = self.budget.pages(entries)
        self.cost.charge_write(pages)
        self.cost.charge_read(pages)

    @property
    def base_pages(self) -> int:
        return self._base_pages


class CubeAlgorithm:
    """Base class: subclasses implement :meth:`_compute`."""

    name = "?"

    def run(
        self,
        table: FactTable,
        oracle: Optional[PropertyOracle] = None,
        memory_entries: Optional[int] = None,
        points: Optional[Sequence[LatticePoint]] = None,
        min_support: float = 0.0,
        encoding: str = "auto",
    ) -> CubeResult:
        if min_support > 0 and table.aggregate.function.upper() != "COUNT":
            from repro.errors import CubeError

            raise CubeError(
                "iceberg (min_support) pruning is only sound for the "
                "monotone COUNT aggregate"
            )
        context = ExecutionContext(
            table,
            oracle,
            memory_entries,
            min_support=min_support,
            encoding=encoding,
        )
        wanted: List[LatticePoint] = (
            list(points) if points is not None else list(table.lattice.points())
        )
        begin = time.perf_counter()
        with obs.span(
            f"algo.{self.name}",
            category="algorithm",
            cost=context.cost,
            algorithm=self.name,
            points=len(wanted),
            facts=len(table.rows),
        ) as span:
            cuboids, passes = self._compute(context, wanted)
            span.annotate(passes=passes)
        wall_seconds = time.perf_counter() - begin
        tracer = obs.current_tracer()
        if tracer.enabled and context.phases:
            tracer.metrics.absorb_phases(
                context.phases, algorithm=self.name
            )
        if min_support > 0:
            cuboids = {
                point: {
                    key: value
                    for key, value in cuboid.items()
                    if value >= min_support
                }
                for point, cuboid in cuboids.items()
            }
        return CubeResult(
            lattice=table.lattice,
            cuboids=cuboids,
            algorithm=self.name,
            cost=CostSnapshot.from_mapping(
                context.cost.snapshot(), wall_seconds=wall_seconds
            ),
            passes=passes,
            aggregate=table.aggregate.function.upper(),
        )

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CubeAlgorithm {self.name}>"


def empty_cuboids(points: List[LatticePoint]) -> Dict[LatticePoint, Cuboid]:
    return {point: {} for point in points}
