"""Unit tests for the cost model and memory budget."""

import pytest

from repro.errors import MemoryBudgetExceeded
from repro.timber.stats import CostModel, IOStats, MemoryBudget


class TestIOStats:
    def test_snapshot_and_total(self):
        stats = IOStats(page_reads=2, page_writes=3)
        assert stats.total_io == 5
        snap = stats.snapshot()
        assert snap["page_reads"] == 2

    def test_reset(self):
        stats = IOStats(page_reads=2)
        stats.reset()
        assert stats.total_io == 0


class TestCostModel:
    def test_simulated_seconds(self):
        cost = CostModel(cpu_op_cost=1.0, page_io_cost=10.0)
        cost.charge_cpu(3)
        cost.charge_read(2)
        cost.charge_write(1)
        assert cost.simulated_seconds() == 3 + 30.0

    def test_io_dominates_cpu(self):
        cost = CostModel()
        cost.charge_cpu(1)
        cpu_only = cost.simulated_seconds()
        cost.charge_read(1)
        assert cost.simulated_seconds() > 1000 * cpu_only

    def test_reset(self):
        cost = CostModel()
        cost.charge_cpu(5)
        cost.charge_read(2)
        cost.reset()
        assert cost.simulated_seconds() == 0.0

    def test_snapshot_keys(self):
        snap = CostModel().snapshot()
        assert {"cpu_ops", "page_reads", "simulated_seconds"} <= set(snap)


class TestMemoryBudget:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)

    def test_acquire_release(self):
        budget = MemoryBudget(10)
        budget.acquire(6)
        assert budget.remaining == 4
        budget.release(3)
        assert budget.used_entries == 3
        budget.release(99)
        assert budget.used_entries == 0

    def test_high_water(self):
        budget = MemoryBudget(10)
        budget.acquire(7)
        budget.release(5)
        budget.acquire(1)
        assert budget.high_water == 7

    def test_would_overflow(self):
        budget = MemoryBudget(10)
        budget.acquire(8)
        assert budget.would_overflow(3)
        assert not budget.would_overflow(2)

    def test_fail_on_overflow(self):
        budget = MemoryBudget(4, fail_on_overflow=True)
        budget.acquire(4)
        with pytest.raises(MemoryBudgetExceeded):
            budget.acquire(1)

    def test_pages_rounding(self):
        budget = MemoryBudget(100, entries_per_page=10)
        assert budget.pages(1) == 1
        assert budget.pages(10) == 1
        assert budget.pages(11) == 2
        budget.acquire(25)
        assert budget.pages() == 3
