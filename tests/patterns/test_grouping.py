"""Unit tests for TAX-style witness grouping and value predicates."""

import pytest

from repro.datagen.publications import figure1_document
from repro.errors import PatternError
from repro.patterns.grouping import (
    group_count,
    group_witnesses,
    grouping_basis,
)
from repro.patterns.match import match_db, match_document
from repro.patterns.parse import parse_pattern
from repro.timber.database import TimberDB
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize


class TestSection21Example:
    """The paper's Sec. 2.1 walk-through, verbatim."""

    def test_year_groups(self):
        doc = figure1_document()
        pattern = parse_pattern("//publication/year=$y")
        witnesses = match_document(doc, pattern)
        assert len(witnesses) == 4  # pub2 matched twice
        counts = group_count(witnesses, ["$y"])
        assert counts == {
            ("2003",): 2,  # first and third publications
            ("2004",): 1,  # second publication
            ("2005",): 1,  # second publication again
        }

    def test_db_backend_same_groups(self):
        doc = figure1_document()
        db = TimberDB()
        db.load(serialize(doc))
        pattern = parse_pattern("//publication/year=$y")
        counts = group_count(match_db(db, pattern), ["$y"])
        assert counts == {("2003",): 2, ("2004",): 1, ("2005",): 1}

    def test_witness_counts_vs_root_counts(self):
        doc = figure1_document()
        pattern = parse_pattern("//publication/year=$y")
        witnesses = match_document(doc, pattern)
        raw = group_count(witnesses, ["$y"], distinct_roots=False)
        assert raw == {("2003",): 2, ("2004",): 1, ("2005",): 1}


class TestGroupWitnesses:
    def test_multi_label_key(self):
        doc = figure1_document()
        pattern = parse_pattern(
            "//publication[/author/name=$n][/year=$y]"
        )
        groups = group_witnesses(match_document(doc, pattern), ["$n", "$y"])
        assert ("John", "2003") in groups
        assert ("Jane", "2003") in groups

    def test_empty_grouping_list_rejected(self):
        with pytest.raises(PatternError):
            group_witnesses([], [])

    def test_grouping_basis(self):
        pattern = parse_pattern("//publication=$b[/year=$y][/author=$a]")
        assert set(grouping_basis(pattern)) == {"$y", "$a"}


class TestValuePredicates:
    def test_parse_signature(self):
        pattern = parse_pattern('//book[/year="2003"]')
        assert 'year="2003"' in pattern.signature()

    def test_element_value_filter(self):
        doc = figure1_document()
        pattern = parse_pattern('//publication[/year="2003"]')
        witnesses = match_document(doc, pattern)
        # pub1 and pub3 both have a direct year child with value 2003.
        assert len(witnesses) == 2
        pattern = parse_pattern('//publication[/year="2004"]')
        assert len(match_document(doc, pattern)) == 1  # pub2 only

    def test_attribute_value_filter(self):
        doc = figure1_document()
        pattern = parse_pattern('//publication[//publisher[/@id="p1"]]')
        witnesses = match_document(doc, pattern)
        assert len(witnesses) == 1

    def test_db_matches_memory_with_value_tests(self):
        doc = figure1_document()
        db = TimberDB()
        db.load(serialize(doc))
        for text in (
            '//publication[/year="2003"]',
            '//publication[//publisher[/@id="p1"]]',
            '//publication[/author/name="John"][/year=$y]',
        ):
            pattern = parse_pattern(text)
            assert len(match_document(doc, pattern)) == len(
                match_db(db, pattern)
            ), text

    def test_root_value_filter(self):
        doc = parse("<r><x>a</x><x>b</x></r>")
        pattern = parse_pattern('//x="a"')
        assert len(match_document(doc, pattern)) == 1

    def test_unterminated_value_rejected(self):
        from repro.errors import PatternParseError

        with pytest.raises(PatternParseError):
            parse_pattern('//a[/b="oops]')

    def test_clone_preserves_value_test(self):
        pattern = parse_pattern('//a[/b="x"]')
        assert pattern.clone().signature() == pattern.signature()
