"""COLUMNAR: vectorized single-pass multi-cuboid sweep over encoded columns.

The counter algorithm (Sec. 3.3) already computes every requested cuboid
from one base scan, but it re-derives the per-axis value lists and hashes
a *string-tuple* key per (row, point, combination).  This kernel runs the
same combinatorial incrementing over the dictionary-encoded columns of
:class:`~repro.core.columnar.ColumnarFactTable` and shares work across
cuboids:

- the requested lattice points are arranged in a **prefix trie** keyed by
  their per-axis states, so two points that keep axis 0 in the same state
  share the column combine for axis 0 (one pass, many cuboids);
- a trie edge extends a whole **group-id column** at once with a
  mixed-radix multiply-add (``gid * radix + code``) — one list
  comprehension over an ``array('q')`` state view, no per-row dict or
  tuple work;
- a row with no value under a kept state carries ``None`` — the coverage
  gap of Sec. 2 — and drops out of every cuboid below that edge, exactly
  the ``key_combinations`` contract;
- a row with several distinct values fans out into a tuple of group ids
  (the Sec. 3.3 cross product); the codes are distinct by construction,
  so a fact still counts once per group;
- at a leaf, integer group ids index a counter dict (COUNT and SUM use
  C-speed fast paths); ids decode back to string group keys with the
  reversed mixed-radix divmod.

Aggregation folds measures in base-row order — the same fold order as
NAIVE and COUNTER — so finalized floats are **bit-identical** to the dict
engine, which is what the differential battery asserts.

Cost model: one sequential scan of the *encoded* pages (dictionary codes
pack ~8x denser than the row form), the encode itself charged at full
CPU rate every run, and column combines / counter updates charged at one
op per :data:`VECTOR_LANES` rows (batched integer ops on flat buffers
versus per-row hash probes).  Memory behaviour mirrors COUNTER: when the
cells overflow the budget the sweep degrades to multi-pass partitioned
execution, re-reading the encoded table per extra pass.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.algorithms.base import CubeAlgorithm, ExecutionContext
from repro.core.bindings import GroupKey
from repro.core.columnar import ColumnarFactTable, StateView
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint

#: Rows per charged CPU op for batched column work.  Extending a group-id
#: column is a flat integer multiply-add over an ``array('q')`` buffer;
#: the model prices it at one op per 8 rows versus the dict engine's one
#: op per counter update.
VECTOR_LANES = 8

#: Per-row group state inside a sweep: ``None`` (row excluded below this
#: trie node — a coverage gap), a single mixed-radix group id, or a tuple
#: of group ids (multi-valued cross product).
RowGroups = Any

#: (dictionary, radix) per kept axis, accumulated along a trie path.
KeptAxis = Tuple[Tuple[str, ...], int]


class ColumnarSweepAlgorithm(CubeAlgorithm):
    name = "COLUMNAR"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        table = context.table
        with obs.span(
            "columnar.encode", category="columnar", facts=len(table.rows)
        ):
            encoded = table.columnar()
        n_rows = encoded.n_rows

        # One sequential scan of the encoded table; the encode work is
        # charged every run so modeled cost never depends on whether the
        # memoized encoding was warm.
        context.bump("base_scans")
        context.bump("columnar_scans")
        context.cost.charge_read(encoded.encoded_pages)
        context.cost.charge_cpu(encoded.encoded_entries)
        context.cost.charge_cpu(_lanes(n_rows))

        sweep = _Sweep(context, encoded, table.aggregate.fn)
        with obs.span(
            "columnar.sweep",
            category="columnar",
            points=len(points),
            facts=n_rows,
        ):
            sweep.descend(0, [0] * n_rows, False, list(points), [])

        total_cells = sweep.total_cells
        passes = max(
            1, -(-total_cells // context.budget.capacity_entries)
        )
        context.bump("columnar_cells", total_cells)
        context.bump("columnar_increments", sweep.increments)
        context.bump("columnar_nodes", sweep.nodes)
        context.bump("columnar_passes", passes)
        context.budget.acquire(
            min(total_cells, context.budget.capacity_entries)
        )
        for _ in range(passes - 1):
            context.bump("columnar_scans")
            context.cost.charge_read(encoded.encoded_pages)
            context.cost.charge_cpu(_lanes(n_rows))
            context.charge_spill(context.budget.capacity_entries)
        if obs.enabled():
            obs.count("x3_columnar_rows_total", n_rows)
            obs.count("x3_columnar_cells_total", total_cells)
            obs.count("x3_columnar_trie_nodes_total", sweep.nodes)
            obs.count("x3_columnar_increments_total", sweep.increments)
            obs.count("x3_columnar_passes_total", passes)
        context.budget.release_all()
        return sweep.cuboids, passes


def _lanes(rows: int) -> int:
    """CPU ops for one batched pass over ``rows`` rows."""
    return -(-rows // VECTOR_LANES)


class _Sweep:
    """One sweep's mutable state (fresh per run; thread-safe by isolation)."""

    def __init__(
        self,
        context: ExecutionContext,
        encoded: ColumnarFactTable,
        fn: Any,
    ) -> None:
        self.context = context
        self.encoded = encoded
        self.fn = fn
        self.fn_name = fn.name
        self.cuboids: Dict[LatticePoint, Cuboid] = {}
        self.total_cells = 0
        self.increments = 0
        self.nodes = 0

    # ------------------------------------------------------------------
    # the prefix trie over requested points
    # ------------------------------------------------------------------
    def descend(
        self,
        position: int,
        prefix: List[RowGroups],
        has_multi: bool,
        points: List[LatticePoint],
        kept: List[KeptAxis],
    ) -> None:
        lattice = self.context.lattice
        if position == lattice.axis_count:
            # All points in this bucket are the same tuple.
            self.cuboids[points[0]] = self._leaf(prefix, has_multi, kept)
            return
        states = lattice.axis_states[position]
        buckets: Dict[int, List[LatticePoint]] = {}
        for point in points:
            buckets.setdefault(point[position], []).append(point)
        for state in sorted(buckets):
            subset = buckets[state]
            if states.is_dropped(state):
                # Dropped axis: the group-id column passes through
                # unchanged (LND keeps every fact, adds no key part).
                self.descend(position + 1, prefix, has_multi, subset, kept)
                continue
            column = self.encoded.columns[position]
            view = self.encoded.state_view(position, state)
            extended, extended_multi = _extend(
                prefix, has_multi, view, column.radix
            )
            self.nodes += 1
            self.context.cost.charge_cpu(_lanes(len(prefix)))
            self.descend(
                position + 1,
                extended,
                extended_multi,
                subset,
                kept + [(column.dictionary, column.radix)],
            )

    # ------------------------------------------------------------------
    # leaf: aggregate one cuboid from the group-id column
    # ------------------------------------------------------------------
    def _leaf(
        self,
        prefix: List[RowGroups],
        has_multi: bool,
        kept: List[KeptAxis],
    ) -> Cuboid:
        fn = self.fn
        measures = self.encoded.measures
        increments = 0
        cells: Dict[int, Any]
        if self.fn_name == "COUNT":
            if has_multi:
                counter: Counter[int] = Counter(
                    g for g in prefix if type(g) is int
                )
                for g in prefix:
                    if type(g) is tuple:
                        counter.update(g)
                        increments += len(g)
                increments += len(prefix) - prefix.count(None)
                increments -= sum(1 for g in prefix if type(g) is tuple)
            else:
                counter = Counter(g for g in prefix if g is not None)
                increments = len(prefix) - prefix.count(None)
            cells = dict(counter)
        elif self.fn_name == "SUM" and not has_multi:
            cells = {}
            get = cells.get
            for g, measure in zip(prefix, measures):
                if g is not None:
                    cells[g] = get(g, 0.0) + measure
            increments = len(prefix) - prefix.count(None)
        else:
            cells = {}
            new = fn.new
            add = fn.add
            if has_multi:
                for g, measure in zip(prefix, measures):
                    if g is None:
                        continue
                    if type(g) is int:
                        cells[g] = add(
                            cells[g] if g in cells else new(), measure
                        )
                        increments += 1
                    else:
                        for gid in g:
                            cells[gid] = add(
                                cells[gid] if gid in cells else new(),
                                measure,
                            )
                            increments += 1
            else:
                for g, measure in zip(prefix, measures):
                    if g is not None:
                        cells[g] = add(
                            cells[g] if g in cells else new(), measure
                        )
                increments = len(prefix) - prefix.count(None)
        self.increments += increments
        self.total_cells += len(cells)
        self.context.cost.charge_cpu(_lanes(increments))
        self.context.cost.charge_cpu(len(cells))  # finalize, scalar

        finalize = fn.finalize
        decode = _decoder(kept)
        return {decode(gid): finalize(state) for gid, state in cells.items()}


def _extend(
    prefix: List[RowGroups],
    has_multi: bool,
    view: StateView,
    radix: int,
) -> Tuple[List[RowGroups], bool]:
    """Extend every row's group id(s) with one kept axis's codes."""
    flat = view.flat
    if flat is not None and not has_multi:
        # The vectorized fast path: every row single-valued, ids ints.
        return (
            [
                None if (g is None or c < 0) else g * radix + c
                for g, c in zip(prefix, flat)
            ],
            False,
        )
    out: List[RowGroups] = []
    append = out.append
    if flat is not None:
        for g, c in zip(prefix, flat):
            if g is None or c < 0:
                append(None)
            elif type(g) is int:
                append(g * radix + c)
            else:
                append(tuple(gid * radix + c for gid in g))
        return out, True
    rows = view.per_row
    assert rows is not None
    multi = has_multi
    for g, codes in zip(prefix, rows):
        if g is None or not codes:
            append(None)
        elif type(g) is int:
            if len(codes) == 1:
                append(g * radix + codes[0])
            else:
                multi = True
                append(tuple(g * radix + c for c in codes))
        else:
            if len(codes) == 1:
                code = codes[0]
                append(tuple(gid * radix + code for gid in g))
            else:
                append(
                    tuple(gid * radix + c for gid in g for c in codes)
                )
    return out, multi


def _decoder(kept: List[KeptAxis]):
    """Group-id -> string group key, via reversed mixed-radix divmod."""
    reversed_kept = list(reversed(kept))

    def decode(gid: int) -> GroupKey:
        parts: List[Optional[str]] = []
        remaining = gid
        for dictionary, radix in reversed_kept:
            remaining, code = divmod(remaining, radix)
            parts.append(dictionary[code])
        parts.reverse()
        return tuple(parts)

    return decode
