"""Write figure series as gnuplot-ready ``.dat`` files.

``x3-bench --dat DIR`` drops one file per figure::

    # fig5: Sparse cubes, 10^5 trees; coverage fails, disjointness holds
    # axes COUNTER BUC BUCOPT TD TDOPT
    2 0.036 0.044 0.043 0.322 0.152
    3 0.400 0.066 0.064 1.282 0.420
    ...

so the curves can be re-plotted next to the paper's with any tool.
"""

from __future__ import annotations

import os
from typing import List

from repro.bench.figures import FigureSpec, series_of
from repro.bench.harness import AlgorithmRun


def figure_dat(spec: FigureSpec, runs: List[AlgorithmRun]) -> str:
    """Render one figure's series as a .dat text block."""
    series = series_of(runs)
    axis_values = sorted({run.n_axes for run in runs})
    lines = [
        f"# {spec.figure_id}: {spec.title}",
        "# axes " + " ".join(spec.algorithms),
    ]
    for axis in axis_values:
        row = [str(axis)]
        for algorithm in spec.algorithms:
            cells = dict(series.get(algorithm, []))
            row.append(
                f"{cells[axis]:.6f}" if axis in cells else "nan"
            )
        lines.append(" ".join(row))
    return "\n".join(lines) + "\n"


def write_figure_dat(
    directory: str, spec: FigureSpec, runs: List[AlgorithmRun]
) -> str:
    """Write the figure's .dat file; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{spec.figure_id}.dat")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(figure_dat(spec, runs))
    return path
