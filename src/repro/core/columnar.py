"""Columnar fact storage: the dictionary-encoded twin of :class:`FactTable`.

The dict engine iterates :class:`~repro.core.bindings.FactRow` objects one
at a time and re-derives per-axis value lists per (row, point) pair.  This
module stores the same annotated fact table *by column*:

- per axis, a **dictionary** mapping each distinct grouping value to a
  small integer code (first-seen order, so encode/decode is stable);
- per axis, flat ``array('q')`` **code** and ``array('Q')`` **mask**
  columns holding every annotated value of every row, addressed through a
  CSR-style ``array('q')`` **offsets** column (row ``i`` owns the slice
  ``offsets[i]:offsets[i+1]``) — multi-valued axes cost nothing extra;
- per axis, a per-row **union mask** (OR of the row's value masks).  For a
  structural state ``s``, bit ``s`` of the union mask is the row's
  participation bit, so ``union & (1 << s) == 0`` *is* the paper's
  coverage gap — the null mask falls out of the encoding;
- a typed ``array('d')`` **measure** column and two ``array('q')``
  fact-id columns, so decoding is lossless.

Everything lives in stdlib :mod:`array` buffers exposed through
:class:`memoryview` accessors; there is no third-party dependency.

The encoded table answers ``key_combinations`` / ``participates`` with
exactly the :class:`FactTable` semantics (Sec. 3.3 combinatorial
incrementing, coverage gaps excluded), and the single-pass sweep kernel
(:mod:`repro.core.algorithms.columnar_sweep`) reads the per-state
:class:`StateView` projections this module caches.

Page accounting: the encoded form is what a columnar scan reads.
Dictionary codes pack roughly eight times denser than the pointer-rich
row form (``ENTRIES_PER_PAGE = 128``), so the simulated storage layer
charges ``COLUMNAR_ENTRIES_PER_PAGE = 1024`` entries per page — the
compression win real columnar stores get from dictionary encoding.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bindings import AnnotatedValue, FactRow, FactTable, GroupKey
from repro.core.lattice import CubeLattice, LatticePoint

#: Encoded entries per simulated 8 KB page.  The row layout packs 128
#: entries per page (:data:`repro.core.algorithms.base.ENTRIES_PER_PAGE`);
#: dictionary-encoded integer columns pack 8x denser.
COLUMNAR_ENTRIES_PER_PAGE = 1024

#: Rows per charged CPU op for batched column work.  Extending a group-id
#: column, gathering a partition or folding a measure slice is a flat
#: integer/float op over an ``array`` buffer; the model prices it at one
#: op per 8 rows versus the dict engine's one op per row.
VECTOR_LANES = 8

#: Per-row group state inside a columnar kernel: ``None`` (row excluded —
#: a coverage gap), a single mixed-radix group id, or a tuple of group
#: ids (multi-valued cross product).
RowGroups = Any

#: (dictionary, radix) per kept axis, accumulated along a sweep path or a
#: top-down build.  ``radix`` may exceed ``len(dictionary)`` by one when
#: the axis carries the Sec. 3.5 null digit (augmented keys).
KeptAxis = Tuple[Tuple[str, ...], int]

#: Group key decoded from a mixed-radix id; ``None`` components are the
#: null digits of augmented keys.
DecodedKey = Tuple[Optional[str], ...]


def vector_lanes(rows: int) -> int:
    """CPU ops charged for one batched pass over ``rows`` rows."""
    return -(-rows // VECTOR_LANES)


def extend_group_ids(
    prefix: List[RowGroups],
    has_multi: bool,
    view: StateView,
    radix: int,
    missing_code: Optional[int] = None,
) -> Tuple[List[RowGroups], bool]:
    """Extend every row's group id(s) with one kept axis's codes.

    The mixed-radix multiply-add ``gid * radix + code`` appends one digit
    per kept axis; a row with several distinct codes fans out into a
    tuple of ids (the Sec. 3.3 cross product).

    ``missing_code`` selects the coverage-gap behaviour: ``None`` drops
    the row (``key_combinations`` semantics — the sweep and BUC paths),
    while an integer assigns that digit to the gap (the Sec. 3.5 null
    padding of ``augmented_keys`` — the top-down roll-up paths, which
    pass ``missing_code=len(dictionary)`` and ``radix=len(dictionary)+1``).
    """
    flat = view.flat
    if flat is not None and not has_multi:
        # The vectorized fast path: every row single-valued, ids ints.
        if missing_code is None:
            return (
                [
                    None if (g is None or c < 0) else g * radix + c
                    for g, c in zip(prefix, flat)
                ],
                False,
            )
        return (
            [
                None
                if g is None
                else g * radix + (missing_code if c < 0 else c)
                for g, c in zip(prefix, flat)
            ],
            False,
        )
    out: List[RowGroups] = []
    append = out.append
    if flat is not None:
        for g, c in zip(prefix, flat):
            if g is None or (c < 0 and missing_code is None):
                append(None)
                continue
            code = missing_code if c < 0 else c
            if type(g) is int:
                append(g * radix + code)
            else:
                append(tuple(gid * radix + code for gid in g))
        return out, True
    rows = view.per_row
    assert rows is not None
    multi = has_multi
    for g, codes in zip(prefix, rows):
        if g is None or (not codes and missing_code is None):
            append(None)
            continue
        if not codes:
            codes = (missing_code,)  # type: ignore[assignment]
        if type(g) is int:
            if len(codes) == 1:
                append(g * radix + codes[0])
            else:
                multi = True
                append(tuple(g * radix + c for c in codes))
        else:
            if len(codes) == 1:
                code = codes[0]
                append(tuple(gid * radix + code for gid in g))
            else:
                append(
                    tuple(gid * radix + c for gid in g for c in codes)
                )
    return out, multi


def fold_group_ids(
    fn: Any,
    prefix: List[RowGroups],
    has_multi: bool,
    measures: "array[float]",
) -> Tuple[Dict[int, Any], int]:
    """Aggregate one group-id column into ``gid -> partial state`` cells.

    Measures fold in base-row order — the same fold order as NAIVE — so
    finalized floats are bit-identical to the dict engine.  COUNT and SUM
    take C-speed fast paths whose results equal the generic fold exactly
    (integer counts; left-to-right float addition from ``fn.new()``).

    Returns ``(cells, increments)``; the cell values are mergeable
    partial states (``fn.finalize`` pending).
    """
    increments = 0
    cells: Dict[int, Any]
    if fn.name == "COUNT":
        if has_multi:
            counter: Counter[int] = Counter(
                g for g in prefix if type(g) is int
            )
            for g in prefix:
                if type(g) is tuple:
                    counter.update(g)
                    increments += len(g)
            increments += len(prefix) - prefix.count(None)
            increments -= sum(1 for g in prefix if type(g) is tuple)
        else:
            counter = Counter(g for g in prefix if g is not None)
            increments = len(prefix) - prefix.count(None)
        cells = dict(counter)
    elif fn.name == "SUM" and not has_multi:
        cells = {}
        get = cells.get
        for g, measure in zip(prefix, measures):
            if g is not None:
                cells[g] = get(g, 0.0) + measure
        increments = len(prefix) - prefix.count(None)
    else:
        cells = {}
        new = fn.new
        add = fn.add
        if has_multi:
            for g, measure in zip(prefix, measures):
                if g is None:
                    continue
                if type(g) is int:
                    cells[g] = add(
                        cells[g] if g in cells else new(), measure
                    )
                    increments += 1
                else:
                    for gid in g:
                        cells[gid] = add(
                            cells[gid] if gid in cells else new(),
                            measure,
                        )
                        increments += 1
        else:
            for g, measure in zip(prefix, measures):
                if g is not None:
                    cells[g] = add(
                        cells[g] if g in cells else new(), measure
                    )
            increments = len(prefix) - prefix.count(None)
    return cells, increments


def make_group_decoder(
    kept: Sequence[KeptAxis],
) -> Callable[[int], DecodedKey]:
    """Group-id -> group key, via reversed mixed-radix divmod.

    A digit beyond the dictionary (the augmented-key null slot) decodes
    to ``None``, matching :func:`repro.core.groupby.augmented_keys`.
    """
    reversed_kept = list(reversed(kept))

    def decode(gid: int) -> DecodedKey:
        parts: List[Optional[str]] = []
        remaining = gid
        for dictionary, radix in reversed_kept:
            remaining, code = divmod(remaining, radix)
            parts.append(
                dictionary[code] if code < len(dictionary) else None
            )
        parts.reverse()
        return tuple(parts)

    return decode


@dataclass(frozen=True)
class AxisColumn:
    """One axis of the encoded table.

    Attributes:
        dictionary: distinct values in first-seen order; the code of a
            value is its index here.
        codes: one code per annotated value, rows concatenated.
        masks: the structural-state bitmask of each annotated value,
            parallel to ``codes``.
        offsets: CSR offsets, length ``n_rows + 1``; row ``i`` owns
            ``codes[offsets[i]:offsets[i+1]]``.
        union_masks: per row, the OR of its value masks (participation
            bitset over structural states).
    """

    dictionary: Tuple[str, ...]
    codes: "array[int]"
    masks: "array[int]"
    offsets: "array[int]"
    union_masks: "array[int]"

    @property
    def radix(self) -> int:
        """Dictionary size, floored at 1 so mixed-radix math stays sane."""
        return max(1, len(self.dictionary))


@dataclass(frozen=True)
class StateView:
    """An axis projected onto one structural state.

    Exactly one of ``flat`` / ``per_row`` is set.  When every row binds at
    most one distinct code under the state, ``flat`` holds one code per
    row with ``-1`` for a coverage gap (the vectorizable fast path).
    Otherwise ``per_row`` holds each row's distinct codes in first-seen
    order (the Sec. 3.3 cross-product path).
    """

    flat: Optional["array[int]"]
    per_row: Optional[Tuple[Tuple[int, ...], ...]]
    missing: int

    def codes_of(self, row_index: int) -> Tuple[int, ...]:
        """The row's distinct codes under this state (may be empty)."""
        if self.per_row is not None:
            return self.per_row[row_index]
        assert self.flat is not None
        code = self.flat[row_index]
        return () if code < 0 else (code,)


class ColumnarFactTable:
    """The columnar encoding of a :class:`FactTable`.

    Build once with :meth:`from_table` (or the memoizing
    :meth:`FactTable.columnar` accessor); the encoding is immutable.
    """

    def __init__(
        self,
        lattice: CubeLattice,
        aggregate: object,
        columns: Tuple[AxisColumn, ...],
        measures: "array[float]",
        fact_hi: "array[int]",
        fact_lo: "array[int]",
    ) -> None:
        self.lattice = lattice
        self.aggregate = aggregate
        self.columns = columns
        self.measures = measures
        self.fact_hi = fact_hi
        self.fact_lo = fact_lo
        self.n_rows = len(measures)
        self._views: Dict[Tuple[int, int], StateView] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: FactTable) -> "ColumnarFactTable":
        """Encode a fact table column-by-column (one pass over the rows)."""
        lattice = table.lattice
        axis_count = lattice.axis_count
        dictionaries: List[Dict[str, int]] = [{} for _ in range(axis_count)]
        codes: List["array[int]"] = [array("q") for _ in range(axis_count)]
        masks: List["array[int]"] = [array("Q") for _ in range(axis_count)]
        offsets: List["array[int]"] = [
            array("q", [0]) for _ in range(axis_count)
        ]
        unions: List["array[int]"] = [array("Q") for _ in range(axis_count)]
        measures: "array[float]" = array("d")
        fact_hi: "array[int]" = array("q")
        fact_lo: "array[int]" = array("q")
        for row in table.rows:
            measures.append(row.measure)
            fact_hi.append(row.fact_id[0])
            fact_lo.append(row.fact_id[1])
            for position in range(axis_count):
                dictionary = dictionaries[position]
                axis_codes = codes[position]
                axis_masks = masks[position]
                union = 0
                for annotated in row.axes[position]:
                    code = dictionary.setdefault(
                        annotated.value, len(dictionary)
                    )
                    axis_codes.append(code)
                    axis_masks.append(annotated.mask)
                    union |= annotated.mask
                offsets[position].append(len(axis_codes))
                unions[position].append(union)
        columns = tuple(
            AxisColumn(
                dictionary=tuple(dictionaries[position]),
                codes=codes[position],
                masks=masks[position],
                offsets=offsets[position],
                union_masks=unions[position],
            )
            for position in range(axis_count)
        )
        return cls(
            lattice, table.aggregate, columns, measures, fact_hi, fact_lo
        )

    # ------------------------------------------------------------------
    # state projections (what the sweep kernel reads)
    # ------------------------------------------------------------------
    def state_view(self, axis_position: int, state_index: int) -> StateView:
        """The axis projected onto one structural state (cached)."""
        key = (axis_position, state_index)
        view = self._views.get(key)
        if view is None:
            view = self._build_view(axis_position, state_index)
            self._views[key] = view
        return view

    def _build_view(self, axis_position: int, state_index: int) -> StateView:
        column = self.columns[axis_position]
        bit = 1 << state_index
        offsets = column.offsets
        codes = column.codes
        masks = column.masks
        unions = column.union_masks
        flat_codes: List[int] = []
        per_row: List[Tuple[int, ...]] = []
        multi = False
        missing = 0
        for i in range(self.n_rows):
            if not unions[i] & bit:
                flat_codes.append(-1)
                per_row.append(())
                missing += 1
                continue
            distinct: List[int] = []
            for j in range(offsets[i], offsets[i + 1]):
                if masks[j] & bit:
                    code = codes[j]
                    if code not in distinct:
                        distinct.append(code)
            per_row.append(tuple(distinct))
            flat_codes.append(distinct[0])
            if len(distinct) > 1:
                multi = True
        if multi:
            return StateView(flat=None, per_row=tuple(per_row), missing=missing)
        return StateView(
            flat=array("q", flat_codes), per_row=None, missing=missing
        )

    def null_mask(self, axis_position: int, state_index: int) -> bytes:
        """One byte per row: 1 where the row has *no* value under the
        state (the paper's coverage gap), else 0."""
        bit = 1 << state_index
        unions = self.columns[axis_position].union_masks
        return bytes(
            0 if unions[i] & bit else 1 for i in range(self.n_rows)
        )

    # ------------------------------------------------------------------
    # FactTable-compatible semantics
    # ------------------------------------------------------------------
    def values_under(
        self, row_index: int, axis_position: int, state_index: int
    ) -> Tuple[str, ...]:
        """Distinct values of one row's axis under a structural state, in
        first-seen order — :meth:`FactRow.values_under`, decoded."""
        dictionary = self.columns[axis_position].dictionary
        return tuple(
            dictionary[code]
            for code in self.state_view(axis_position, state_index).codes_of(
                row_index
            )
        )

    def key_combinations(
        self, row_index: int, point: LatticePoint
    ) -> List[GroupKey]:
        """All group keys the row contributes to at a lattice point —
        exactly :meth:`FactTable.key_combinations` on the decoded row."""
        per_axis: List[Sequence[str]] = []
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            values = self.values_under(row_index, position, state)
            if not values:
                return []
            per_axis.append(values)
        if not per_axis:
            return [()]
        keys: List[GroupKey] = [()]
        for values in per_axis:
            keys = [key + (value,) for key in keys for value in values]
        return keys

    def participates(self, row_index: int, point: LatticePoint) -> bool:
        """Does the row appear in any group of the cuboid at ``point``?"""
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            bit = 1 << state
            if not self.columns[position].union_masks[row_index] & bit:
                return False
        return True

    # ------------------------------------------------------------------
    # partition refinement (what the BUC kernel reads)
    # ------------------------------------------------------------------
    def partition_slices(
        self,
        rows: "array[int]",
        start: int,
        end: int,
        axis_position: int,
        state_index: int,
        exclusive: bool,
    ) -> Tuple["array[int]", Tuple[Tuple[int, int, int], ...]]:
        """Refine one partition of row indices by an (axis, state) pair.

        ``rows[start:end]`` is the current partition (a slice of a flat
        row-index buffer — BUC's partitions are ``(start, end)`` ranges,
        never row-dict lists).  The result is ``(refined, slices)``:
        ``refined`` holds the surviving row indices bucketed by
        dictionary code, codes ascending, **base-row order preserved
        within each code** (stable bucketing — what keeps fold order, and
        therefore floats, identical to NAIVE); each ``slices`` entry is
        ``(code, bucket_start, bucket_end)`` into ``refined``.

        A row with no value under the state has no code — the union-mask
        coverage gap — and drops out.  ``exclusive`` places a multi-valued
        row into its *first* code's bucket only (BUCOPT's disjointness
        assumption); otherwise the row is replicated into every distinct
        code's bucket (safe BUC, Sec. 3.4).
        """
        view = self.state_view(axis_position, state_index)
        buckets: Dict[int, List[int]] = {}
        flat = view.flat
        if flat is not None:
            for i in range(start, end):
                r = rows[i]
                c = flat[r]
                if c >= 0:
                    bucket = buckets.get(c)
                    if bucket is None:
                        buckets[c] = [r]
                    else:
                        bucket.append(r)
        else:
            per_row = view.per_row
            assert per_row is not None
            for i in range(start, end):
                r = rows[i]
                codes = per_row[r]
                if not codes:
                    continue
                if exclusive:
                    codes = codes[:1]
                for c in codes:
                    bucket = buckets.get(c)
                    if bucket is None:
                        buckets[c] = [r]
                    else:
                        bucket.append(r)
        refined: "array[int]" = array("q")
        slices: List[Tuple[int, int, int]] = []
        for code in sorted(buckets):
            bucket_start = len(refined)
            refined.extend(buckets[code])
            slices.append((code, bucket_start, len(refined)))
        return refined, tuple(slices)

    # ------------------------------------------------------------------
    # lossless decode
    # ------------------------------------------------------------------
    def decode_row(self, row_index: int) -> FactRow:
        """Reconstruct the original row, duplicates and order included."""
        axes: List[Tuple[AnnotatedValue, ...]] = []
        for column in self.columns:
            start = column.offsets[row_index]
            stop = column.offsets[row_index + 1]
            axes.append(
                tuple(
                    AnnotatedValue(
                        column.dictionary[column.codes[j]], column.masks[j]
                    )
                    for j in range(start, stop)
                )
            )
        return FactRow(
            fact_id=(self.fact_hi[row_index], self.fact_lo[row_index]),
            measure=self.measures[row_index],
            axes=tuple(axes),
        )

    def to_fact_table(self) -> FactTable:
        """Decode the whole table (round-trip partner of
        :meth:`from_table`)."""
        from repro.core.aggregates import AggregateSpec

        aggregate = self.aggregate
        assert isinstance(aggregate, AggregateSpec)
        return FactTable(
            self.lattice,
            [self.decode_row(i) for i in range(self.n_rows)],
            aggregate,
        )

    # ------------------------------------------------------------------
    # storage accounting and raw buffer access
    # ------------------------------------------------------------------
    @property
    def encoded_entries(self) -> int:
        """Abstract entry footprint of the encoded table: one entry per
        row (measure + ids) plus one per annotated value plus the
        dictionaries — the columnar mirror of ``table_entries``."""
        return self.n_rows + sum(
            len(column.codes) + len(column.dictionary)
            for column in self.columns
        )

    @property
    def encoded_pages(self) -> int:
        """Simulated pages one sequential scan of the encoding reads."""
        return max(
            1, -(-self.encoded_entries // COLUMNAR_ENTRIES_PER_PAGE)
        )

    def measures_view(self) -> memoryview:
        """Zero-copy view of the measure column."""
        return memoryview(self.measures)

    def codes_view(self, axis_position: int) -> memoryview:
        """Zero-copy view of an axis's code column."""
        return memoryview(self.columns[axis_position].codes)

    def offsets_view(self, axis_position: int) -> memoryview:
        """Zero-copy view of an axis's CSR offsets column."""
        return memoryview(self.columns[axis_position].offsets)

    # ------------------------------------------------------------------
    # introspection (goldens, docs, debugging)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Shape summary of the encoding."""
        return {
            "n_rows": self.n_rows,
            "n_axes": len(self.columns),
            "encoded_entries": self.encoded_entries,
            "encoded_pages": self.encoded_pages,
            "cardinalities": [
                len(column.dictionary) for column in self.columns
            ],
            "value_counts": [len(column.codes) for column in self.columns],
        }

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able dump of the full physical layout (golden tests).

        Per axis: the dictionary, the code/mask/offset columns, and one
        null-mask row per structural state.  Layout changes show up as a
        golden diff, so they are deliberate.
        """
        axes: List[Dict[str, object]] = []
        for position, states in enumerate(self.lattice.axis_states):
            column = self.columns[position]
            axes.append(
                {
                    "axis": states.axis.name,
                    "dictionary": list(column.dictionary),
                    "codes": list(column.codes),
                    "masks": list(column.masks),
                    "offsets": list(column.offsets),
                    "union_masks": list(column.union_masks),
                    "null_masks": {
                        states.describe(index): list(
                            self.null_mask(position, index)
                        )
                        for index in range(len(states.states))
                    },
                }
            )
        return {
            "n_rows": self.n_rows,
            "measures": list(self.measures),
            "fact_ids": [
                [self.fact_hi[i], self.fact_lo[i]]
                for i in range(self.n_rows)
            ],
            "axes": axes,
        }

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ColumnarFactTable rows={self.n_rows} "
            f"axes={len(self.columns)} entries={self.encoded_entries}>"
        )
