"""CubeBackend conformance, parametrized over both runtime surfaces.

One suite, two backends: :class:`repro.serve.CubeServer` and
:class:`repro.cluster.ClusterCoordinator` must be interchangeable
behind :class:`repro.core.query.CubeBackend` — same query kinds, same
answers, same error taxonomy, same versioning semantics.  This is the
contract the HTTP front door (and everything above it) relies on.
"""

import warnings

import pytest

from repro.cluster import ClusterCoordinator
from repro.core.bindings import FactTable
from repro.core.cube import ExecutionOptions, compute_cube
from repro.core.incremental import split_rows
from repro.core.query import (
    CubeBackend,
    Query,
    QueryExplanation,
    QueryResult,
)
from repro.errors import InvalidQuery, StaleVersion
from repro.serve import CubeServer
from repro.testing import small_workload

BACKENDS = ("serve", "cluster")


def reference_cuboid(table, rows, point):
    snapshot = FactTable(table.lattice, list(rows), table.aggregate)
    result = compute_cube(
        snapshot, ExecutionOptions(algorithm="NAIVE", points=(point,))
    )
    return result.cuboids[point]


@pytest.fixture(params=BACKENDS)
def stack(request):
    workload = small_workload(n_facts=60)
    table = workload.fact_table()
    oracle = workload.oracle(table)
    if request.param == "cluster":
        with ClusterCoordinator(
            table, 2, 2, oracle=oracle, hedge_deadline_seconds=None
        ) as coordinator:
            yield coordinator, table
    else:
        yield CubeServer(table, oracle), table


@pytest.fixture()
def backend(stack):
    return stack[0]


@pytest.fixture()
def fine_point(backend):
    lattice = backend.lattice
    return lattice.describe(lattice.topo_finer_first()[0])


class TestProtocol:
    def test_satisfies_the_runtime_checkable_protocol(self, backend):
        assert isinstance(backend, CubeBackend)

    def test_query_returns_the_shared_envelope(self, backend, fine_point):
        result = backend.query(Query(point=fine_point))
        assert isinstance(result, QueryResult)
        assert result.kind == "aggregate"
        assert result.point == fine_point
        assert result.modeled_seconds > 0.0
        assert result.cells == len(result.as_cuboid())
        assert result.rungs  # every backend reports its ladder trail
        assert result.version == backend.version_token()

    def test_explain_returns_the_shared_plan(self, backend, fine_point):
        explanation = backend.explain_query(Query(point=fine_point))
        assert isinstance(explanation, QueryExplanation)
        assert explanation.point == fine_point
        if isinstance(backend, ClusterCoordinator):
            assert explanation.backend == "cluster"
            assert len(explanation.shards) == backend.n_shards
            assert all(plan.tier for plan in explanation.shards)
        else:
            assert explanation.backend == "serve"
            assert explanation.shards == ()


class TestAnswers:
    def test_aggregate_matches_serial_naive(self, stack, fine_point):
        backend, table = stack
        point = backend.lattice.point_by_description(fine_point)
        expected = reference_cuboid(table, table.rows, point)
        result = backend.query(Query(point=fine_point))
        assert result.as_cuboid() == expected

    def test_every_kind_is_served(self, backend, fine_point):
        lattice = backend.lattice
        point = lattice.point_by_description(fine_point)
        base = backend.query(Query(point=fine_point)).as_cuboid()
        some_key = sorted(base)[0]
        axis = lattice.axes[lattice.kept_axes(point)[0]].name

        cell = backend.query(Query(point=fine_point, kind="cell",
                                   key=some_key))
        assert cell.as_cell() == base[some_key]

        sliced = backend.query(
            Query(point=fine_point, kind="slice", axis=axis,
                  value=str(some_key[0]))
        ).as_cuboid()
        assert sliced  # the sliced value exists, so rows survive

        diced = backend.query(
            Query(point=fine_point, kind="dice",
                  filters=((axis, (str(some_key[0]),)),))
        ).as_cuboid()
        assert all(key[0] == some_key[0] for key in diced)

        apex = lattice.describe(lattice.topo_finer_first()[-1])
        drilled = backend.query(
            Query(point=apex, kind="drilldown", axis=axis)
        )
        assert drilled.point != apex

    def test_measure_mismatch_rejected(self, backend, fine_point):
        assert backend.query(
            Query(point=fine_point, measure="count")
        ).as_cuboid()
        with pytest.raises(InvalidQuery):
            backend.query(Query(point=fine_point, measure="SUM"))

    def test_unknown_point_rejected(self, backend):
        with pytest.raises(InvalidQuery):
            backend.query(Query(point="$warp:LND"))

    def test_deadline_overrun_is_flagged_not_fatal(
        self, backend, fine_point
    ):
        result = backend.query(
            Query(point=fine_point, deadline_seconds=1e-12)
        )
        assert result.deadline_exceeded
        assert result.as_cuboid()  # the answer still comes back
        relaxed = backend.query(
            Query(point=fine_point, deadline_seconds=1e6)
        )
        assert not relaxed.deadline_exceeded


class TestVersioning:
    def test_version_token_advances_on_writes(self, stack):
        backend, table = stack
        before = backend.version_token()
        initial, delta = split_rows(table, 0.9)
        backend.delete(list(delta))
        after = backend.version_token()
        assert len(after) == len(before)
        assert sum(after) > sum(before)

    def test_stale_read_version_raises(self, backend, fine_point):
        ahead = tuple(v + 1 for v in backend.version_token())
        with pytest.raises(StaleVersion):
            backend.query(Query(point=fine_point, read_version=ahead))

    def test_satisfied_read_version_answers(self, backend, fine_point):
        now = backend.version_token()
        result = backend.query(
            Query(point=fine_point, read_version=now)
        )
        assert result.version == now

    def test_wrong_length_read_version_is_invalid(
        self, backend, fine_point
    ):
        bad = tuple(backend.version_token()) + (0,)
        with pytest.raises(InvalidQuery):
            backend.query(Query(point=fine_point, read_version=bad))


class TestDeprecatedShims:
    def test_positional_reads_warn_once_and_still_answer(
        self, backend, fine_point
    ):
        lattice = backend.lattice
        point = lattice.point_by_description(fine_point)
        expected = backend.query(Query(point=fine_point)).as_cuboid()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert backend.cuboid(point) == expected
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "deprecated" in str(caught[0].message)
        assert "Query" in str(caught[0].message)

    def test_each_positional_method_warns(self, backend, fine_point):
        lattice = backend.lattice
        point = lattice.point_by_description(fine_point)
        some_key = sorted(
            backend.query(Query(point=fine_point)).as_cuboid()
        )[0]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend.cell(point, some_key)
            backend.slice(point, 0, str(some_key[0]))
            backend.dice(point, {0: (str(some_key[0]),)})
        assert [
            issubclass(w.category, DeprecationWarning) for w in caught
        ] == [True, True, True]
