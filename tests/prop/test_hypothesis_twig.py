"""Property-based cross-validation: holistic twig join == navigational
matcher on random documents and random element-only patterns."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.match import match_db
from repro.patterns.parse import parse_pattern
from repro.timber.database import TimberDB
from repro.timber.twig_join import twig_join
from repro.xmlmodel.nodes import Document, Element
from repro.xmlmodel.serializer import serialize

TAGS = "abc"


@st.composite
def random_document(draw):
    def build(depth):
        element = Element(draw(st.sampled_from(TAGS)))
        if depth < 3:
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                element.append(build(depth + 1))
        return element

    root = Element("r")
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        root.append(build(0))
    return Document(root)


@st.composite
def random_pattern_text(draw):
    """Small element-only twigs over the same alphabet."""
    shape = draw(
        st.sampled_from(
            [
                "//{0}//{1}",
                "//{0}/{1}",
                "//{0}[/{1}][//{2}]",
                "//{0}//{1}//{2}",
                "//{0}[//{1}]/{2}",
            ]
        )
    )
    tags = [draw(st.sampled_from(TAGS)) for _ in range(3)]
    return shape.format(*tags)


@given(
    st.lists(random_document(), min_size=1, max_size=3),
    random_pattern_text(),
)
@settings(max_examples=60, deadline=None)
def test_twig_join_equals_navigational(docs, pattern_text):
    db = TimberDB()
    for doc in docs:
        db.load(serialize(doc))
    db.build_index()
    pattern = parse_pattern(pattern_text)

    holistic = sorted(
        tuple((p.doc_id, p.node_id) for p in match)
        for match in twig_join(db, pattern)
    )
    navigational = sorted(
        {
            tuple(
                (record.doc_id, record.node_id)
                for record in witness.bindings
            )
            for witness in match_db(db, pattern)
        }
    )
    assert holistic == navigational
