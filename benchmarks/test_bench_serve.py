"""Serving-layer benchmark: hit rate and modeled latency vs cache budget.

Replays one deterministic skewed request mix (the ``x3-serve`` replay
sampler) against :class:`repro.serve.CubeServer` under a sweep of cache
budgets, and writes the resulting curves to ``BENCH_serve.json`` at the
repository root.  The acceptance signal is modeled, not wall clock:
with any non-zero budget the server must answer some requests above the
recompute tier, and its total modeled cost must be strictly below the
cold cost of recomputing every request.
"""

import json
import pathlib

import pytest

from repro.bench.runner import bench_artifact_path, write_bench_artifact
from repro.core.query import Query
from repro.serve import CubeServer
from repro.serve.cli import sample_points

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PATH = bench_artifact_path("serve", REPO_ROOT)

REQUESTS = 120
SEED = 13
#: Cache budgets as fractions of the full-lattice cell count.
BUDGET_FRACTIONS = (0.0, 0.05, 0.25, 1.0)


@pytest.fixture(scope="module")
def serve_curves(dense_cov_disj):
    table = dense_cov_disj.table
    oracle = dense_cov_disj.oracle
    replay = sample_points(table.lattice, REQUESTS, SEED)
    from repro.core.materialize import cuboid_sizes

    total_cells = sum(cuboid_sizes(table, table.lattice).values())
    curves = []
    for fraction in BUDGET_FRACTIONS:
        budget = int(total_cells * fraction)
        server = CubeServer(table, oracle, cache_cells=budget)
        for point in replay:
            server.query(Query(point=point))
        stats = server.stats()
        curves.append(
            {
                "budget_cells": budget,
                "budget_fraction": fraction,
                "hit_rate": stats.hit_rate,
                "modeled_cost_seconds": stats.modeled_cost_seconds,
                "cold_cost_seconds": stats.cold_cost_seconds,
                "modeled_speedup": stats.modeled_speedup,
                "tiers": stats.tiers,
                "cache": stats.cache,
            }
        )
    payload = {
        "workload": {
            "kind": dense_cov_disj.config.kind,
            "n_facts": dense_cov_disj.config.n_facts,
            "n_axes": dense_cov_disj.config.n_axes,
            "density": dense_cov_disj.config.density,
            "total_cells": total_cells,
        },
        "requests": REQUESTS,
        "seed": SEED,
        "curves": curves,
    }
    write_bench_artifact("serve", payload, REPO_ROOT)
    return curves


def test_writes_bench_serve_json(serve_curves):
    assert OUT_PATH.exists()
    document = json.loads(OUT_PATH.read_text())
    assert len(document["curves"]) == len(BUDGET_FRACTIONS)


def test_hit_rate_grows_with_budget(serve_curves):
    rates = [curve["hit_rate"] for curve in serve_curves]
    assert rates == sorted(rates), rates
    assert rates[0] == 0.0  # zero budget answers nothing above recompute
    assert rates[-1] > 0.0


def test_modeled_cost_beats_cold_recompute(serve_curves):
    for curve in serve_curves:
        if curve["budget_cells"] == 0:
            continue
        assert (
            curve["modeled_cost_seconds"] < curve["cold_cost_seconds"]
        ), curve
    costs = [curve["modeled_cost_seconds"] for curve in serve_curves]
    assert costs[-1] < costs[0]  # a full-lattice cache is fastest


def test_full_budget_serves_warm(serve_curves):
    full = serve_curves[-1]
    assert full["hit_rate"] > 0.5
    assert full["modeled_speedup"] > 1.0
    assert full["cache"]["evictions"] == 0
