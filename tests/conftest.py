"""Shared fixtures: the running example and small controlled workloads."""

from __future__ import annotations

import pytest

from repro.core.extract import extract_fact_table
from repro.datagen.publications import figure1_document, query1
from repro.datagen.workload import WorkloadConfig, build_workload


@pytest.fixture()
def fig1_doc():
    return figure1_document()


@pytest.fixture()
def q1():
    return query1()


@pytest.fixture()
def fig1_table(fig1_doc, q1):
    return extract_fact_table(fig1_doc, q1)


def small_workload(**overrides):
    """A fast controlled Treebank workload for algorithm tests."""
    defaults = dict(
        kind="treebank",
        n_facts=80,
        n_axes=3,
        density="dense",
        coverage=True,
        disjoint=True,
        seed=5,
    )
    defaults.update(overrides)
    return build_workload(WorkloadConfig(**defaults))


@pytest.fixture()
def regular_workload():
    return small_workload()


@pytest.fixture()
def messy_workload():
    """Neither summarizability property holds."""
    return small_workload(coverage=False, disjoint=False, seed=9)
