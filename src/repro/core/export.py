"""Cube results as XML documents (and back).

The paper's runs "were written into files"; an XML OLAP system naturally
speaks XML on the way out too.  :func:`cube_to_xml` serializes a
:class:`~repro.core.cube.CubeResult` into a self-describing document::

    <cube algorithm="BUC" aggregate="COUNT">
      <axes>
        <axis name="$n" path="author/name" relaxations="LND,PC-AD,SP"/>
        ...
      </axes>
      <cuboid point="$n:rigid, $p:rigid, $y:rigid">
        <group result="1.0"><k>John</k><k>p1</k><k>2003</k></group>
        ...
      </cuboid>
      ...
    </cube>

and :func:`cube_from_xml` reads it back given the lattice (which the
query defines), so materialized cubes can be persisted and reloaded.
Key components are child elements, so arbitrary value strings round-trip
without any delimiter escaping; a null component (an augmented-cuboid
key) is ``<k null="true"/>``.  The round-trip is property-tested.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.cube import CubeResult
from repro.core.groupby import Cuboid
from repro.core.lattice import CubeLattice
from repro.core.query import X3Query
from repro.errors import CubeError
from repro.xmlmodel.nodes import Document, Element
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize


def cube_to_xml(cube: CubeResult, query: Optional[X3Query] = None) -> str:
    """Serialize a cube result to XML text."""
    root = Element(
        "cube",
        attrs={
            "algorithm": cube.algorithm or "?",
            "aggregate": cube.aggregate,
        },
    )
    if query is not None:
        axes = root.make_child("axes")
        for axis in query.axes:
            axes.make_child(
                "axis",
                attrs={
                    "name": axis.name,
                    "path": axis.path_text(),
                    "relaxations": ",".join(
                        sorted(r.value for r in axis.relaxations)
                    ),
                },
            )
    lattice = cube.lattice
    for point in sorted(cube.cuboids):
        cuboid_el = root.make_child(
            "cuboid", attrs={"point": lattice.describe(point)}
        )
        for key in sorted(
            cube.cuboids[point],
            key=lambda k: tuple("" if part is None else part for part in k),
        ):
            group_el = cuboid_el.make_child(
                "group",
                attrs={"result": repr(cube.cuboids[point][key])},
            )
            for component in key:
                if component is None:
                    group_el.make_child("k", attrs={"null": "true"})
                else:
                    group_el.make_child("k", text=component)
    return serialize(Document(root), pretty=True)


def cube_from_xml(text: str, lattice: CubeLattice) -> CubeResult:
    """Load a cube result previously written by :func:`cube_to_xml`.

    The lattice must come from the same query specification; points are
    resolved through their descriptions.
    """
    doc = parse(text)
    if doc.root.tag != "cube":
        raise CubeError("not a cube document")
    cuboids: Dict = {}
    for cuboid_el in doc.root.find_children("cuboid"):
        description = cuboid_el.attrs.get("point", "")
        try:
            point = lattice.point_by_description(description)
        except KeyError as error:
            raise CubeError(
                f"cuboid point {description!r} does not belong to this "
                "lattice"
            ) from error
        arity = len(lattice.kept_axes(point))
        cuboid: Cuboid = {}
        for group_el in cuboid_el.find_children("group"):
            key = _read_key(group_el)
            if len(key) != arity:
                raise CubeError(
                    f"group key {key!r} does not have {arity} components"
                )
            cuboid[key] = float(group_el.attrs["result"])
        cuboids[point] = cuboid
    return CubeResult(
        lattice=lattice,
        cuboids=cuboids,
        algorithm=doc.root.attrs.get("algorithm", "?"),
        aggregate=doc.root.attrs.get("aggregate", "COUNT"),
    )


def _read_key(group_el: Element) -> Tuple[Optional[str], ...]:
    components = []
    for k_el in group_el.find_children("k"):
        if k_el.attrs.get("null") == "true":
            components.append(None)
        else:
            components.append(k_el.text)
    return tuple(components)
