"""Synthetic DBLP-shaped data (paper Sec. 4.5).

The DBLP experiment cubes ``article`` by ``/author``, ``/month``,
``/year`` and ``/journal``.  Only the DTD-declared cardinalities matter
to the cubing layer, and the real DBLP DTD fragment declares:

- ``author`` — repeated *and* possibly missing (``author*``),
- ``month`` — possibly missing (``month?``),
- ``year``, ``journal`` — mandatory and unique.

The generator reproduces those cardinalities (plus noise fields), and
:data:`DBLP_DTD` carries the DTD text so the schema-driven oracle
(Sec. 3.7) can prove exactly the properties the customized algorithms
exploit in Fig. 10.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.query import X3Query
from repro.patterns.relaxation import Relaxation
from repro.schema.dtd import Dtd
from repro.schema.dtd_parser import parse_dtd
from repro.xmlmodel.nodes import Document, Element

DBLP_DTD = """
<!ELEMENT dblp (article)*>
<!ELEMENT article (author*, title, month?, year, journal, pages?)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ATTLIST article key CDATA #REQUIRED>
"""

MONTHS = [
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
]
JOURNALS = [
    "VLDB J.", "TODS", "SIGMOD Record", "TKDE", "Inf. Syst.",
    "J. ACM", "CACM", "Data Knowl. Eng.",
]
AUTHOR_POOL_SIZE = 40


@dataclass(frozen=True)
class DblpConfig:
    """Knobs of the DBLP workload (defaults mirror the DTD cardinalities)."""

    n_articles: int = 2000
    seed: int = 11
    p_no_author: float = 0.05
    p_extra_author: float = 0.45
    p_month: float = 0.7
    year_range: int = 15


def generate_dblp(config: DblpConfig) -> Document:
    rng = random.Random(config.seed)
    authors = [f"Author {number:02d}" for number in range(AUTHOR_POOL_SIZE)]
    root = Element("dblp")
    for number in range(config.n_articles):
        article = root.make_child(
            "article", attrs={"key": f"journals/x/{number}"}
        )
        if rng.random() >= config.p_no_author:
            article.make_child("author", text=rng.choice(authors))
            while rng.random() < config.p_extra_author:
                article.make_child("author", text=rng.choice(authors))
        article.make_child("title", text=f"Paper {number}")
        if rng.random() < config.p_month:
            article.make_child("month", text=rng.choice(MONTHS))
        article.make_child(
            "year", text=str(1992 + rng.randrange(config.year_range))
        )
        article.make_child("journal", text=rng.choice(JOURNALS))
        if rng.random() < 0.8:
            article.make_child("pages", text=f"{number}-{number + 12}")
    return Document(root, name="dblp")


def dblp_dtd() -> Dtd:
    """The parsed DBLP DTD fragment (for the schema oracle)."""
    return parse_dtd(DBLP_DTD, root="dblp")


def dblp_query() -> X3Query:
    """Fig. 10's query: cube article by /author, /month, /year, /journal."""
    lnd = frozenset({Relaxation.LND})
    return X3Query(
        fact_tag="article",
        axes=(
            AxisSpec.from_path("$a", "author", lnd),
            AxisSpec.from_path("$m", "month", lnd),
            AxisSpec.from_path("$y", "year", lnd),
            AxisSpec.from_path("$j", "journal", lnd),
        ),
        aggregate=AggregateSpec("COUNT"),
        fact_id_path="@key",
        document="dblp.xml",
    )
