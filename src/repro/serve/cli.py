"""The ``x3-serve`` command line tool: serve cube queries over XML files.

Usage::

    x3-serve --query query.xq data.xml
    x3-serve --query query.xq data.xml --requests 200 --cache-cells 2048
    x3-serve --query query.xq data.xml --view-cells 512 --warm
    x3-serve --query query.xq data.xml --cuboid '$n:LND, $y:rigid'
    x3-serve --query query.xq data.xml --log-jsonl events.jsonl
    x3-serve explain --query query.xq data.xml --cuboid '$n:LND, $y:rigid'
    x3-serve explain --query query.xq data.xml --requests 100 --verify

Without ``--cuboid`` the tool replays a deterministic, skewed request
workload (``--requests`` samples over the lattice, biased towards fine
cuboids like real dashboards) against a :class:`repro.serve.CubeServer`
and reports the resolution-tier breakdown, cache behaviour and modeled
cost against cold recomputation.

The ``explain`` subcommand prints the sound-source ladder decision tree
for each query *without* executing it (DESIGN.md Sec. 5c); with
``--verify`` it then executes each query and fails when the recorded
rung in the request log disagrees with the explanation.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.core.bindings import FactTable
from repro.core.cube import ENGINE_CHOICES, ExecutionOptions
from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.core.query import Query
from repro.core.xq_parser import parse_x3_query
from repro.errors import InvalidQuery, X3Error
from repro.serve.server import TIERS, CubeServer
from repro.xmlmodel.parser import parse_file


def add_workload_args(parser: argparse.ArgumentParser) -> None:
    """The arguments every serving tool shares (x3-serve, x3-top)."""
    parser.add_argument("files", nargs="+", help="XML input files")
    parser.add_argument(
        "--query", required=True, help="file holding the X^3 FLWOR text"
    )
    parser.add_argument(
        "--cache-cells",
        type=int,
        default=4096,
        help="cuboid cache budget in cells (default 4096; 0 disables)",
    )
    parser.add_argument(
        "--view-cells",
        type=int,
        default=0,
        help="materialized-view space budget in cells (default 0: no"
        " views)",
    )
    parser.add_argument(
        "--oracle",
        choices=("data", "none"),
        default="data",
        help="property oracle for sound roll-ups: 'data' measures the"
        " fact table, 'none' is pessimistic (no roll-up tier)",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="pre-fill the cache with the best-fitting cuboids",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=100,
        help="replayed requests (default 100)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="replay sampling seed (default 7)",
    )
    parser.add_argument(
        "--algorithm",
        default="NAIVE",
        help="recompute algorithm (default NAIVE)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker pool for recomputes (default 1)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="execution engine for recomputes (default auto)",
    )


def load_table(args: argparse.Namespace) -> FactTable:
    """Parse the query and documents into a fact table (X3Error on
    bad input, propagated to the caller's error handling)."""
    with open(args.query, "r", encoding="utf-8") as handle:
        query = parse_x3_query(handle.read())
    docs = [parse_file(path) for path in args.files]
    return extract_fact_table(docs, query)


def build_server(
    args: argparse.Namespace, table, telemetry=None
) -> CubeServer:
    """A CubeServer configured from the shared workload arguments."""
    oracle = (
        PropertyOracle.from_data(table) if args.oracle == "data" else None
    )
    server = CubeServer(
        table,
        oracle,
        options=ExecutionOptions(
            algorithm=args.algorithm,
            workers=args.workers,
            engine=args.engine,
        ),
        cache_cells=args.cache_cells,
        view_cells=args.view_cells,
        telemetry=telemetry,
    )
    return server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-serve",
        description=(
            "Serve X^3 cube queries (cache + views + sound roll-up + "
            "engine recompute) over XML files."
        ),
    )
    add_workload_args(parser)
    parser.add_argument(
        "--cuboid",
        action="append",
        metavar="DESC",
        help="serve and print one cuboid instead of replaying, e.g."
        " '$n:LND, $y:rigid'; repeatable",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows shown per printed cuboid (default 10)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the serving session and print a span summary plus"
        " the per-rung breakdown from the request log",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="with --profile: write a Chrome trace_event JSON file",
    )
    parser.add_argument(
        "--log-jsonl",
        metavar="PATH",
        help="write the structured request/write event log as JSON"
        " Lines",
    )
    return parser


def build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-serve explain",
        description=(
            "Print the sound-source ladder decision tree for queries "
            "without executing them (DESIGN.md Sec. 5c)."
        ),
    )
    add_workload_args(parser)
    parser.add_argument(
        "--cuboid",
        action="append",
        metavar="DESC",
        help="explain one cuboid query instead of the replay mix;"
        " repeatable",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="execute each query after explaining it and fail when the"
        " rung recorded in the request log disagrees",
    )
    return parser


def sample_points(lattice, n: int, seed: int) -> List:
    """A deterministic skewed request mix: finer points drawn more often
    (dashboards hammer detailed cuboids), with a long tail over the rest.
    """
    points = lattice.topo_finer_first()
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(points))]
    return rng.choices(points, weights=weights, k=n)


def _print_cuboid(server: CubeServer, description: str, top: int) -> None:
    result = server.query(Query(point=description))
    cuboid = result.as_cuboid()
    print(f"-- {result.point} ({len(cuboid)} groups)")
    rows = sorted(cuboid.items(), key=lambda item: (-item[1], item[0]))
    for key, value in rows[:top]:
        label = ", ".join(part if part is not None else "-" for part in key)
        print(f"   ({label}): {value:g}")
    if len(rows) > top:
        print(f"   ... {len(rows) - top} more")


def rung_breakdown(server: CubeServer) -> List[str]:
    """Per-rung lines from the request log: counts and both cost bases
    (so ``--profile`` output matches trace/event semantics)."""
    per_tier = {
        tier: {"requests": 0, "modeled": 0.0, "wall": 0.0}
        for tier in TIERS
    }
    for event in server.events.requests():
        slot = per_tier[event.tier]
        slot["requests"] += 1
        slot["modeled"] += event.modeled_seconds
        slot["wall"] += event.wall_seconds
    lines = [
        f"{'rung':<12} {'requests':>8} {'modeled_s':>10} {'wall_s':>10}"
    ]
    for tier in TIERS:
        slot = per_tier[tier]
        if not slot["requests"]:
            continue
        lines.append(
            f"{tier:<12} {slot['requests']:>8.0f} "
            f"{slot['modeled']:>10.4f} {slot['wall']:>10.4f}"
        )
    return lines


def explain_main(argv: List[str]) -> int:
    """The ``x3-serve explain`` subcommand."""
    args = build_explain_parser().parse_args(argv)
    try:
        table = load_table(args)
        server = build_server(args, table)
        if args.warm:
            server.warm()
        if args.cuboid:
            queries = [
                server.resolve_point(description)
                for description in args.cuboid
            ]
        else:
            queries = sample_points(
                table.lattice, args.requests, args.seed
            )
    except (OSError, X3Error) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    mismatches = 0
    for point in queries:
        explanation = server.explain(point)
        print(explanation.render())
        if args.verify:
            result = server.query(Query(point=point))
            agrees = result.tier == explanation.tier
            mismatches += 0 if agrees else 1
            print(
                f"  executed -> {result.tier} "
                f"({'agrees' if agrees else 'MISMATCH'})"
            )
    if args.verify:
        print(
            f"verified {len(queries)} queries: "
            f"{len(queries) - mismatches} agree, {mismatches} mismatch"
        )
        return 1 if mismatches else 0
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.trace_out and not args.profile:
        print("error: --trace-out requires --profile", file=sys.stderr)
        return 1
    from repro import obs

    session = obs.trace() if args.profile else None
    tracer = session.__enter__() if session is not None else None
    try:
        try:
            table = load_table(args)
        except (OSError, X3Error) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

        try:
            server = build_server(args, table)
            if args.warm:
                warmed = server.warm()
                print(
                    f"warmed {len(warmed)} cuboids "
                    f"({server.cache.used_cells} cells)"
                )
            if args.cuboid:
                for description in args.cuboid:
                    try:
                        _print_cuboid(server, description, args.top)
                    except InvalidQuery as error:
                        print(
                            f"error: unknown cuboid {error}",
                            file=sys.stderr,
                        )
                        return 1
            else:
                for point in sample_points(
                    table.lattice, args.requests, args.seed
                ):
                    server.query(Query(point=point))
        except X3Error as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

        stats = server.stats()
        print(
            f"{len(table)} facts, {table.lattice.size()} cuboids, "
            f"cache {stats.cache_used_cells}/{stats.cache_budget_cells}"
            f" cells, {stats.view_points} views"
        )
        print(f"serve: {stats.summary()}")
        print(
            "tiers: "
            + ", ".join(
                f"{tier}={stats.tiers.get(tier, 0)}" for tier in TIERS
            )
        )
        cache = stats.cache
        print(
            f"cache: {cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['evictions']} evictions, "
            f"{cache['rejections']} rejections"
        )
        if stats.singleflight_shared:
            print(
                f"single-flight: {stats.singleflight_shared} deduplicated"
                f" of {stats.singleflight_led} computes"
            )
        if args.log_jsonl:
            written = server.events.write_jsonl(args.log_jsonl)
            print(f"wrote {written} events to {args.log_jsonl}")
    finally:
        if session is not None:
            session.__exit__(None, None, None)

    if tracer is not None:
        print("rungs (from the request log):")
        for line in rung_breakdown(server):
            print(f"   {line}")
        report = tracer.trace()
        print("profile (top spans by wall time):")
        for line in report.summary(top=args.top).splitlines():
            print(f"   {line}")
        if args.trace_out:
            report.write_chrome(args.trace_out)
            print(f"wrote Chrome trace to {args.trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
