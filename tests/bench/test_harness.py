"""Unit tests for the benchmark harness."""

from repro.bench.harness import run_algorithm, run_config, run_workload
from repro.datagen.workload import WorkloadConfig, build_workload


def tiny_config(**overrides):
    defaults = dict(kind="treebank", n_facts=30, n_axes=2)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestRunAlgorithm:
    def test_measures_filled(self):
        workload = build_workload(tiny_config())
        table = workload.fact_table()
        run = run_algorithm(table, "BUC", workload_name="w")
        assert run.algorithm == "BUC"
        assert run.workload == "w"
        assert run.simulated_seconds > 0
        assert run.wall_seconds > 0
        assert run.cells > 0
        assert run.correct is None

    def test_validation_flag(self):
        workload = build_workload(tiny_config())
        table = workload.fact_table()
        from repro.core.cube import compute_cube

        reference = compute_cube(table, "NAIVE")
        run = run_algorithm(table, "COUNTER", reference=reference)
        assert run.correct is True

    def test_dnf_marking(self):
        workload = build_workload(tiny_config())
        table = workload.fact_table()
        run = run_algorithm(table, "TD", dnf_simulated_limit=1e-9)
        assert run.dnf

    def test_as_row_keys(self):
        workload = build_workload(tiny_config())
        run = run_algorithm(workload.fact_table(), "BUC")
        row = run.as_row()
        assert {"algorithm", "sim_seconds", "cells", "passes"} <= set(row)


class TestRunWorkload:
    def test_runs_all_algorithms(self):
        workload = build_workload(tiny_config())
        runs = run_workload(workload, ["COUNTER", "BUC"], validate=True)
        assert [run.algorithm for run in runs] == ["COUNTER", "BUC"]
        assert all(run.correct for run in runs)

    def test_run_config_shortcut(self):
        runs = run_config(tiny_config(), ["NAIVE"])
        assert runs[0].n_facts == 30
        assert runs[0].n_axes == 2

    def test_optimized_flagged_incorrect_on_messy_data(self):
        config = tiny_config(coverage=False, disjoint=False, n_facts=60)
        runs = run_config(config, ["BUC", "BUCOPT"], validate=True)
        by_name = {run.algorithm: run for run in runs}
        assert by_name["BUC"].correct is True
        assert by_name["BUCOPT"].correct is False
