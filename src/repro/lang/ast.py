"""The typed X^3QL abstract syntax tree.

Two statement families share one AST module:

- :class:`X3Statement` — the paper's augmented FLWOR form (Query 1):
  a ``doc()`` fact binding, per-variable grouping paths, the ``X^3 ...
  by`` clause with per-axis permitted relaxations, and the aggregate
  ``return``.  It compiles to a :class:`repro.core.query.X3Query`
  cube *definition*.
- :class:`NavStatement` — the navigation verbs over an already-served
  cube (``ROLLUP`` / ``DRILLDOWN`` / ``SLICE`` / ``DICE`` / ``CELL``,
  optionally wrapped in ``EXPLAIN``), with ``BY`` grouping levels,
  ``WHERE`` filters, ``AT VERSION`` read fences, ``WITHIN`` deadlines
  and ``MEASURE`` schema checks.  It compiles to a frozen
  :class:`repro.core.query.Query` against the logical catalog.

Every node is a frozen dataclass.  Source positions ride along on a
``compare=False`` field so that two parses of the same *text* are equal
regardless of surrounding whitespace — the property the pretty-print /
re-parse round-trip (``parse(pretty(ast)) == ast``) is fuzzed on.
``pretty()`` renders the canonical textual form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.lang.tokens import is_bare_name


@dataclass(frozen=True)
class Pos:
    """A 1-based source position (excluded from node equality)."""

    line: int = 0
    column: int = 0


_NO_POS = Pos()


def quote(value: str) -> str:
    """Render a string literal (no escape sequences: pick whichever
    quote the value does not contain)."""
    if "'" not in value:
        return f"'{value}'"
    if '"' not in value:
        return f'"{value}"'
    raise ValueError(
        f"value {value!r} contains both quote kinds and has no textual "
        f"form in X^3QL"
    )


def _level_text(level: str) -> str:
    return level if is_bare_name(level) else quote(level)


def _number_text(value: float) -> str:
    """A float literal the tokenizer can re-lex (never exponent form)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    text = repr(value)
    if "e" in text or "E" in text:
        text = f"{value:.15f}".rstrip("0")
    return text


# ======================================================================
# the FLWOR X^3 statement
# ======================================================================
@dataclass(frozen=True)
class PathExpr:
    """A variable-rooted path (``$b/@id``; ``path`` empty for ``$b``)."""

    var: str
    path: str = ""
    pos: Pos = field(default=_NO_POS, compare=False)

    def pretty(self) -> str:
        if not self.path:
            return self.var
        sep = "" if self.path.startswith("/") else "/"
        return f"{self.var}{sep}{self.path}"


@dataclass(frozen=True)
class AxisBinding:
    """One ``for`` binding: ``$n in $b/author/name`` (path relative to
    the fact variable, leading ``//`` preserved)."""

    var: str
    source_var: str
    path: str
    pos: Pos = field(default=_NO_POS, compare=False)

    def pretty(self) -> str:
        sep = "" if self.path.startswith("/") else "/"
        return f"{self.var} in {self.source_var}{sep}{self.path}"


@dataclass(frozen=True)
class AxisRelaxations:
    """One ``by`` entry: ``$n (LND, SP, PC-AD)`` (names unvalidated
    until compile time, stored uppercased)."""

    var: str
    relaxations: Tuple[str, ...]
    pos: Pos = field(default=_NO_POS, compare=False)

    def pretty(self) -> str:
        return f"{self.var} ({', '.join(self.relaxations)})"


@dataclass(frozen=True)
class X3Statement:
    """The augmented FLWOR form of the paper's Query 1."""

    document: str
    fact_tag: str
    fact_var: str
    bindings: Tuple[AxisBinding, ...]
    measure: PathExpr
    by: Tuple[AxisRelaxations, ...]
    aggregate: str
    aggregate_arg: Optional[PathExpr]
    pos: Pos = field(default=_NO_POS, compare=False)

    def pretty(self) -> str:
        lines = [
            f'for {self.fact_var} in doc({quote(self.document)})'
            f"//{self.fact_tag},"
        ]
        for position, binding in enumerate(self.bindings):
            comma = "," if position < len(self.bindings) - 1 else ""
            lines.append(f"    {binding.pretty()}{comma}")
        for position, entry in enumerate(self.by):
            prefix = (
                f"X^3 {self.measure.pretty()} by "
                if position == 0
                else "       "
            )
            comma = "," if position < len(self.by) - 1 else ""
            lines.append(f"{prefix}{entry.pretty()}{comma}")
        arg = self.aggregate_arg.pretty() if self.aggregate_arg else ""
        lines.append(f"return {self.aggregate}({arg}).")
        return "\n".join(lines)


# ======================================================================
# the navigation statement
# ======================================================================
#: The verbs, in grammar order.
NAV_VERBS = ("ROLLUP", "DRILLDOWN", "SLICE", "DICE", "CELL")


@dataclass(frozen=True)
class Assignment:
    """One ``BY`` entry: ``nation:detail`` (dimension to level)."""

    name: str
    level: str
    pos: Pos = field(default=_NO_POS, compare=False)

    def pretty(self) -> str:
        return f"{self.name}:{_level_text(self.level)}"


@dataclass(frozen=True)
class Predicate:
    """One ``WHERE`` term: ``name IN ('a', 'b')`` or ``name = 'a'``
    (the single-value form canonicalizes to ``=``)."""

    name: str
    values: Tuple[str, ...]
    pos: Pos = field(default=_NO_POS, compare=False)

    def pretty(self) -> str:
        if len(self.values) == 1:
            return f"{self.name} = {quote(self.values[0])}"
        body = ", ".join(quote(value) for value in self.values)
        return f"{self.name} IN ({body})"


@dataclass(frozen=True)
class NavStatement:
    """One navigation query over a named cube."""

    verb: str
    cube: str
    group_by: Tuple[Assignment, ...] = ()
    axis: Optional[str] = None  #: ``ON`` operand (drilldown / slice)
    value: Optional[str] = None  #: ``ON axis = value`` (slice)
    key: Optional[Tuple[Optional[str], ...]] = None  #: ``KEY`` (cell)
    where: Tuple[Predicate, ...] = ()
    at_version: Optional[Tuple[int, ...]] = None
    within_seconds: Optional[float] = None
    measure: Optional[str] = None
    explain: bool = False
    pos: Pos = field(default=_NO_POS, compare=False)

    def pretty(self) -> str:
        parts = []
        if self.explain:
            parts.append("EXPLAIN")
        parts.append(self.verb)
        parts.append(self.cube)
        if self.axis is not None:
            parts.append(f"ON {self.axis}")
            if self.value is not None:
                parts.append(f"= {quote(self.value)}")
        if self.key is not None:
            body = ", ".join(
                "NULL" if part is None else quote(part)
                for part in self.key
            )
            parts.append(f"KEY ({body})")
        if self.group_by:
            body = ", ".join(item.pretty() for item in self.group_by)
            parts.append(f"BY {body}")
        if self.where:
            body = " AND ".join(term.pretty() for term in self.where)
            parts.append(f"WHERE {body}")
        if self.at_version is not None:
            body = ", ".join(str(part) for part in self.at_version)
            parts.append(f"AT VERSION {body}")
        if self.within_seconds is not None:
            parts.append(f"WITHIN {_number_text(self.within_seconds)}s")
        if self.measure is not None:
            parts.append(f"MEASURE {self.measure}")
        return " ".join(parts)


Statement = Union[X3Statement, NavStatement]


def pretty(statement: Statement) -> str:
    """The canonical text of a statement (``parse(pretty(s)) == s``)."""
    return statement.pretty()
