"""Serialize :class:`~repro.xmlmodel.nodes.Document` trees back to text.

The serializer escapes markup characters so that ``parse(serialize(doc))``
round-trips structure, attributes and (stripped) text content; the
property-based tests in ``tests/xmlmodel`` assert this.
"""

from __future__ import annotations

from typing import List, Union

from repro.xmlmodel.nodes import Document, Element

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for raw, entity in _TEXT_ESCAPES:
        value = value.replace(raw, entity)
    return value


def escape_attr(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for raw, entity in _ATTR_ESCAPES:
        value = value.replace(raw, entity)
    return value


def _open_tag(element: Element) -> str:
    parts = [f"<{element.tag}"]
    for name, value in element.attrs.items():
        parts.append(f' {name}="{escape_attr(value)}"')
    return "".join(parts)


def _serialize_compact(element: Element, out: List[str]) -> None:
    out.append(_open_tag(element))
    if not element.children and not element.text_chunks:
        out.append("/>")
        return
    out.append(">")
    # Interleave text chunks and children the way Element stores them:
    # all direct text first is a simplification we avoid by emitting text
    # chunks before children only when there are no children, otherwise
    # text first then children (mixed content order within children is not
    # tracked by the model; warehouse data is element- or text-only).
    for chunk in element.text_chunks:
        out.append(escape_text(chunk))
    for child in element.children:
        _serialize_compact(child, out)
    out.append(f"</{element.tag}>")


def _serialize_pretty(element: Element, out: List[str], indent: int) -> None:
    pad = "  " * indent
    out.append(pad + _open_tag(element))
    text = element.text
    if not element.children and not text:
        out.append("/>\n")
        return
    out.append(">")
    if text:
        out.append(escape_text(text))
    if element.children:
        out.append("\n")
        for child in element.children:
            _serialize_pretty(child, out, indent + 1)
        out.append(pad)
    out.append(f"</{element.tag}>\n")


def serialize(node: Union[Document, Element], pretty: bool = False) -> str:
    """Serialize a document or element subtree to an XML string.

    Args:
        node: the document or element to serialize.
        pretty: if true, emit indented output (normalizes whitespace); if
            false, emit compact output that round-trips text exactly
            (modulo the model's text-before-children ordering).
    """
    root = node.root if isinstance(node, Document) else node
    out: List[str] = []
    if pretty:
        _serialize_pretty(root, out, 0)
    else:
        _serialize_compact(root, out)
    return "".join(out)
