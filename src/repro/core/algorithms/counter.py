"""COUNTER: the counter-based algorithm (paper Sec. 3.3).

One scan of the base data; for every fact, for every lattice point, every
key combination of the fact's axis values increments a counter (the
"combinatorial number of counters incremented for a single sub-tree").
Counter-based computation does not depend on the summarizability
properties, so it is always correct.

Memory behaviour is the whole story (Sec. 4.6): when the counters fit the
budget, COUNTER is optimal; when they do not, it degrades to multi-pass
partitioned execution — each extra pass re-reads the base data — which is
the thrashing the paper observed at 6-7 axes ("at 6 axes, we had to do 2
passes, at 7 axes we needed 5 passes").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.algorithms.base import CubeAlgorithm, ExecutionContext
from repro.core.aggregates import AggregateFunction
from repro.core.bindings import GroupKey
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint


class CounterAlgorithm(CubeAlgorithm):
    name = "COUNTER"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        table = context.table
        fn: AggregateFunction = table.aggregate.fn
        counters: Dict[LatticePoint, Dict[GroupKey, object]] = {
            point: {} for point in points
        }

        context.charge_base_scan()
        total_cells = 0
        for row in table.rows:
            for point in points:
                for key in table.key_combinations(row, point):
                    cuboid = counters[point]
                    context.cost.charge_cpu()
                    if key not in cuboid:
                        cuboid[key] = fn.new()
                        total_cells += 1
                    cuboid[key] = fn.add(cuboid[key], row.measure)

        # Memory accounting: if the counter array exceeded the budget, the
        # work above would really have been done in multiple partitioned
        # passes over the base data, re-reading it each time and redoing
        # the combination work for the points of each pass.
        passes = max(1, -(-total_cells // context.budget.capacity_entries))
        context.bump("counter_cells", total_cells)
        context.bump("counter_passes", passes)
        context.budget.acquire(min(total_cells, context.budget.capacity_entries))
        for _ in range(passes - 1):
            context.charge_base_scan()
            context.cost.charge_cpu(len(table.rows))
            context.charge_spill(context.budget.capacity_entries)

        cuboids: Dict[LatticePoint, Cuboid] = {}
        for point, cells in counters.items():
            cuboids[point] = {
                key: fn.finalize(state) for key, state in cells.items()
            }
            context.cost.charge_cpu(len(cells))
        context.budget.release_all()
        return cuboids, passes
