"""Fig. 7 — sparse cubes, 10^5 trees, both summarizability properties
hold: 'the bottom-up algorithms are good for sparse cubes', as in the
relational case."""

import pytest

from benchmarks.conftest import bench_once

ALGORITHMS = ["COUNTER", "BUC", "BUCOPT", "TD", "TDOPTALL"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7_algorithm(benchmark, sparse_cov_disj, algorithm):
    result = bench_once(benchmark, lambda: sparse_cov_disj.run(algorithm))
    benchmark.extra_info["simulated_seconds"] = result.simulated_seconds
    assert result.total_cells() > 0


def test_fig7_shape(sparse_cov_disj):
    sim = {name: sparse_cov_disj.simulated(name) for name in ALGORITHMS}
    # Bottom-up wins on sparse cubes.
    assert sim["BUCOPT"] <= sim["BUC"]
    assert min(sim["BUC"], sim["BUCOPT"]) < sim["TD"]
    assert min(sim["BUC"], sim["BUCOPT"]) < sim["COUNTER"]


def test_fig7_all_correct(sparse_cov_disj):
    """With both properties holding, every listed algorithm is correct."""
    reference = sparse_cov_disj.run("COUNTER")
    for name in ALGORITHMS:
        assert sparse_cov_disj.run(name).same_contents(reference), name
