"""The ``x3-cluster`` command line tool: replay a workload on a cluster.

Usage::

    x3-cluster --query query.xq data.xml
    x3-cluster --query query.xq data.xml --shards 1,2,4,8 --replicas 2
    x3-cluster --query query.xq data.xml --chaos light --chaos-seed 11
    x3-cluster --query query.xq data.xml --writes 5 --validate
    x3-cluster --query query.xq data.xml --chaos heavy --log-jsonl ev.jsonl

The tool replays the same deterministic skewed request mix ``x3-serve``
uses, once per requested shard count, optionally interleaving write
batches (rotating delete / re-insert of fact slices) and seeded chaos
faults.  With ``--validate`` every gathered answer is checked against a
serial NAIVE recompute over the rows the write log implies at that
moment — the cluster's degraded answers must be *exactly* the serial
answers, which is the whole point of the fault-injection harness.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.chaos import PROFILES, ChaosEngine, get_profile
from repro.cluster.coordinator import ClusterCoordinator
from repro.core.bindings import FactRow, FactTable
from repro.core.cube import ENGINE_CHOICES, ExecutionOptions, compute_cube
from repro.core.lattice import LatticePoint
from repro.core.properties import PropertyOracle
from repro.errors import X3Error
from repro.obs.trace_store import TraceStore
from repro.serve.cli import load_table, sample_points


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-cluster",
        description=(
            "Replay an X^3 cube workload against a sharded, replicated "
            "cluster (scatter-gather over hash-partitioned CubeServers) "
            "across shard counts, with optional fault injection."
        ),
    )
    parser.add_argument("files", nargs="+", help="XML input files")
    parser.add_argument(
        "--query", required=True, help="file holding the X^3 FLWOR text"
    )
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts to replay (default 1,2,4)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="replicas per shard (default 2)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=100,
        help="replayed requests per shard count (default 100)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="replay sampling seed (default 7)",
    )
    parser.add_argument(
        "--writes",
        type=int,
        default=0,
        help="write batches interleaved into the replay (default 0)",
    )
    parser.add_argument(
        "--chaos",
        choices=sorted(PROFILES),
        default="none",
        help="fault-injection profile (default none)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="fault planner seed (default 0)",
    )
    parser.add_argument(
        "--hedge-deadline",
        type=float,
        default=0.1,
        help="modeled seconds before a straggling shard read is hedged"
        " on a backup replica (default 0.1; negative disables)",
    )
    parser.add_argument(
        "--cache-cells",
        type=int,
        default=2048,
        help="per-replica cuboid cache budget in cells (default 2048)",
    )
    parser.add_argument(
        "--oracle",
        choices=("data", "none"),
        default="data",
        help="property oracle for the replicas' roll-up rung",
    )
    parser.add_argument(
        "--algorithm",
        default="NAIVE",
        help="replica recompute algorithm (default NAIVE)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker pool inside each replica (default 1)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="execution engine for replica recomputes (default auto)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check every gathered answer against a serial NAIVE"
        " recompute at the same write-log position",
    )
    parser.add_argument(
        "--log-jsonl",
        metavar="PATH",
        help="write the cluster event log as JSON Lines (events of the"
        " last replayed shard count)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="trace every replayed request (HTTP-less roots; spans "
        "cover coordinator, shards, and replica engines)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="head sampling rate in [0, 1] (default 1.0)",
    )
    parser.add_argument(
        "--trace-seed",
        type=int,
        default=0,
        help="seed for deterministic trace/span id generation",
    )
    parser.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        help="dump the last replay's traces as canonical JSONL "
        "(implies --trace)",
    )
    return parser


def parse_shards(text: str) -> List[int]:
    try:
        shards = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise X3Error(f"bad --shards value {text!r}") from None
    if not shards or any(n <= 0 for n in shards):
        raise X3Error(f"bad --shards value {text!r}")
    return shards


def plan_writes(
    rows: Sequence[FactRow], requests: int, writes: int
) -> Dict[int, Tuple[str, List[FactRow]]]:
    """Deterministic write batches keyed by the request index they
    precede: rotating deletes and re-inserts of fact slices."""
    if writes <= 0 or not rows:
        return {}
    batch = max(1, len(rows) // (2 * writes))
    gap = max(1, requests // (writes + 1))
    plan: Dict[int, Tuple[str, List[FactRow]]] = {}
    removed: List[List[FactRow]] = []
    cursor = 0
    for index in range(writes):
        position = (index + 1) * gap
        if index % 2 == 0:
            slice_rows = list(rows[cursor : cursor + batch])
            cursor += batch
            if not slice_rows:
                break
            removed.append(slice_rows)
            plan[position] = ("delete", slice_rows)
        else:
            plan[position] = ("insert", removed.pop())
    return plan


def percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(
        len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1))))
    )
    return ordered[rank]


def reference_cuboid(
    table: FactTable, rows: Sequence[FactRow], point: LatticePoint
):
    """Serial NAIVE recompute of one cuboid over the given rows."""
    snapshot = FactTable(table.lattice, list(rows), table.aggregate)
    result = compute_cube(
        snapshot, ExecutionOptions(algorithm="NAIVE", points=(point,))
    )
    return result.cuboids[point]


def replay(
    table: FactTable,
    args: argparse.Namespace,
    n_shards: int,
) -> Tuple[ClusterCoordinator, int]:
    """Replay the workload on one cluster; returns it plus mismatches."""
    oracle = (
        PropertyOracle.from_data(table) if args.oracle == "data" else None
    )
    options = ExecutionOptions(
        algorithm=args.algorithm, workers=args.workers, engine=args.engine
    )
    chaos = (
        ChaosEngine(get_profile(args.chaos), seed=args.chaos_seed)
        if args.chaos != "none"
        else None
    )
    deadline = (
        None if args.hedge_deadline < 0 else args.hedge_deadline
    )
    trace_store = (
        TraceStore(sample_rate=args.trace_sample, seed=args.trace_seed)
        if (args.trace or args.trace_jsonl)
        else None
    )
    coordinator = ClusterCoordinator(
        table,
        n_shards,
        args.replicas,
        oracle=oracle,
        options=options,
        cache_cells=args.cache_cells,
        chaos=chaos,
        hedge_deadline_seconds=deadline,
        trace_store=trace_store,
    )
    points = sample_points(table.lattice, args.requests, args.seed)
    writes = plan_writes(table.rows, args.requests, args.writes)
    current_rows = list(table.rows)
    removed_ids = set()
    mismatches = 0
    reference_cache: Dict[Tuple[int, LatticePoint], object] = {}
    write_epoch = 0
    for index, point in enumerate(points):
        if index in writes:
            op, batch = writes[index]
            if op == "delete":
                coordinator.delete(batch)
                removed_ids.update(row.fact_id for row in batch)
                current_rows = [
                    row
                    for row in current_rows
                    if row.fact_id not in removed_ids
                ]
            else:
                coordinator.insert(batch)
                removed_ids.difference_update(
                    row.fact_id for row in batch
                )
                current_rows = current_rows + list(batch)
            write_epoch += 1
        cuboid, _vector = coordinator.cuboid_versioned(point)
        if args.validate:
            key = (write_epoch, point)
            if key not in reference_cache:
                reference_cache[key] = reference_cuboid(
                    table, current_rows, point
                )
            if cuboid != reference_cache[key]:
                mismatches += 1
                print(
                    f"MISMATCH at request {index} "
                    f"({table.lattice.describe(point)}): cluster answer "
                    f"differs from serial NAIVE",
                    file=sys.stderr,
                )
    return coordinator, mismatches


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        shard_counts = parse_shards(args.shards)
        table = load_table(args)
    except (OSError, X3Error) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    print(
        f"{len(table)} facts, {table.lattice.size()} cuboids, "
        f"aggregate {table.aggregate.function}"
    )
    total_mismatches = 0
    last: Optional[ClusterCoordinator] = None
    try:
        for n_shards in shard_counts:
            if last is not None:
                last.close()
            try:
                coordinator, mismatches = replay(table, args, n_shards)
            except X3Error as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            last = coordinator
            total_mismatches += mismatches
            stats = coordinator.stats()
            latencies = coordinator.modeled_latencies()
            modeled_total = sum(latencies)
            throughput = (
                stats.requests / modeled_total if modeled_total else 0.0
            )
            print(
                f"shards={n_shards} replicas={stats.replicas}: "
                f"{stats.requests} requests, {stats.writes} writes, "
                f"throughput {throughput:.1f} req/modeled-s, "
                f"p50 {percentile(latencies, 0.50) * 1e3:.2f}ms, "
                f"p95 {percentile(latencies, 0.95) * 1e3:.2f}ms"
            )
            print(
                f"   degraded: {stats.failovers} failovers, "
                f"{stats.hedges} hedges, {stats.stale_retries} stale"
                f" retries, {stats.rejects} rejects, "
                f"{stats.crashes} crashes"
            )
            print(f"   rows/shard: {list(stats.per_shard_rows)}")
            if coordinator.chaos is not None:
                print(f"   {coordinator.chaos.summary()}")
            if args.validate:
                print(
                    f"   validate: "
                    f"{stats.requests - mismatches}/{stats.requests} "
                    f"answers match serial NAIVE"
                )
        if args.log_jsonl and last is not None:
            written = last.events.write_jsonl(args.log_jsonl)
            print(f"wrote {written} cluster events to {args.log_jsonl}")
        if last is not None and last.trace_store is not None:
            stats = last.trace_store.stats()
            print(
                f"tracing: {stats['started']} started, "
                f"{stats['sampled']} sampled, "
                f"{stats['retained']} tail-retained, "
                f"{stats['stored']} stored"
            )
            if args.trace_jsonl:
                count = last.trace_store.write_jsonl(args.trace_jsonl)
                print(f"wrote {count} traces to {args.trace_jsonl}")
    finally:
        if last is not None:
            last.close()
    return 1 if total_mismatches else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
