"""The shared merge kernel: lossless combination of partial cube work.

Two distinct merge shapes show up in this codebase, and both live here
so every consumer agrees on their laws:

- **Disjoint point-map union** (:func:`merge_disjoint`): the parallel
  engine partitions the *lattice* — each worker computes whole cuboids
  for its own lattice points — so combining outcomes is a checked dict
  union where any overlap is a plan bug.
- **Aggregate-state merge** (:func:`merge_states` /
  :func:`finalize_states`): the cluster layer partitions the *facts* —
  each shard computes a partial aggregate state per group key over its
  slice — so combining answers folds the per-shard states with
  :meth:`AggregateFunction.merge` and finalizes once, at the very end.

The second shape is sound because facts are partitioned disjointly by
fact id even when the *grouping* is non-disjoint (a fact appearing in
several groups of one cuboid still lives on exactly one shard, so each
of its group contributions is counted exactly once across the cluster)
and merge is associative/commutative with ``new()`` as identity — the
laws ``tests/prop/test_hypothesis_aggregates.py`` pins down.

For the distributive aggregates the finalized cell value *is* a valid
partial state (:data:`STATE_EXACT_AGGREGATES`), which lets shards reuse
their finalized serving path; the algebraic AVG must ship its
``(sum, count)`` pair instead (finalized averages do not merge).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Sequence

from repro.core.aggregates import AggregateFunction, get_function
from repro.core.bindings import GroupKey
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint
from repro.errors import CubeError

#: A cuboid of *partial aggregate states* rather than finalized values.
StateCuboid = Dict[GroupKey, Any]

#: Aggregates whose finalized cell value is itself a mergeable partial
#: state (``finalize`` is the identity up to float coercion).  AVG is
#: excluded: an average cannot be merged without its support count.
STATE_EXACT_AGGREGATES = frozenset({"COUNT", "SUM", "MIN", "MAX"})


# ----------------------------------------------------------------------
# disjoint point-map union (the engine's shape)
# ----------------------------------------------------------------------
def merge_disjoint(
    point_maps: Iterable[Mapping[LatticePoint, Cuboid]],
) -> Dict[LatticePoint, Cuboid]:
    """Union per-partition ``point -> cuboid`` maps; overlap is an error.

    The engine's partition plan assigns every lattice point to exactly
    one partition, so two partitions reporting the same point means the
    plan (not the data) is broken — fail loudly instead of silently
    keeping one of the two cuboids.
    """
    merged: Dict[LatticePoint, Cuboid] = {}
    for point_map in point_maps:
        for point, cuboid in point_map.items():
            if point in merged:
                raise CubeError(
                    f"partition plan overlap: point {point} computed twice"
                )
            merged[point] = cuboid
    return merged


# ----------------------------------------------------------------------
# aggregate-state merge (the cluster's shape)
# ----------------------------------------------------------------------
def merge_states(
    fn: AggregateFunction,
    shard_states: Sequence[Mapping[GroupKey, Any]],
) -> StateCuboid:
    """Fold per-shard partial states key by key with ``fn.merge``.

    Keys missing from a shard simply contribute nothing (the shard holds
    no fact of that group); because ``merge`` is associative and
    commutative, the fold order cannot change the result.
    """
    merged: StateCuboid = {}
    for states in shard_states:
        for key, state in states.items():
            if key in merged:
                merged[key] = fn.merge(merged[key], state)
            else:
                merged[key] = state
    return merged


def finalize_states(fn: AggregateFunction, states: StateCuboid) -> Cuboid:
    """Finalize a merged state cuboid into reported values — exactly
    once, after the last merge (AVG divides here and nowhere earlier)."""
    return {key: fn.finalize(state) for key, state in states.items()}


def states_from_finalized(
    aggregate_name: str, cuboid: Mapping[GroupKey, float]
) -> StateCuboid:
    """Reinterpret a finalized cuboid as partial states.

    Only valid for :data:`STATE_EXACT_AGGREGATES`; shards use this to
    turn their (cache-served, ladder-resolved) finalized answers back
    into mergeable states without recomputing anything.
    """
    name = aggregate_name.upper()
    if name not in STATE_EXACT_AGGREGATES:
        raise CubeError(
            f"{name} states cannot be recovered from finalized values; "
            f"ship the partial states instead"
        )
    if name == "COUNT":
        return {key: int(value) for key, value in cuboid.items()}
    return dict(cuboid)


def merge_finalized(
    aggregate_name: str,
    shard_cuboids: Sequence[Mapping[GroupKey, float]],
) -> Cuboid:
    """Convenience: merge finalized shard cuboids of a state-exact
    aggregate (lifts to states, merges, finalizes)."""
    fn = get_function(aggregate_name)
    states = merge_states(
        fn,
        [
            states_from_finalized(aggregate_name, cuboid)
            for cuboid in shard_cuboids
        ],
    )
    return finalize_states(fn, states)
