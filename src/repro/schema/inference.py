"""Infer a DTD (cardinalities and attributes) from document instances.

When XML data arrives without a schema, the customized algorithms
(BUCCUST / TDCUST) can still exploit summarizability locally by *learning*
the schema from the warehouse itself.  The inference is sound for the
properties used downstream:

- a child is marked repeatable iff some instance parent has >= 2 such
  children;
- a child is marked optional iff some instance parent lacks it (including
  parents seen before the child type first appeared);
- an attribute is marked required iff every instance carries it.

Inferred cardinalities are the tightest ones consistent with the sample,
so property inference built on them never asserts a summarizability
property that the sampled data itself violates (tested property-based in
``tests/schema/test_inference.py``).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Set

from repro.schema.dtd import AttributeDecl, Cardinality, Dtd, ElementDecl
from repro.xmlmodel.nodes import Document


def infer_dtd(docs: Iterable[Document]) -> Dtd:
    """Infer a :class:`Dtd` from one or more documents.

    Uses per-tag presence counting, so a child type that first appears on
    the N-th instance of its parent (N > 1) is correctly marked optional.
    """
    doc_list = list(docs)
    instance_counts: Counter = Counter()
    child_presence: Dict[str, Counter] = {}
    child_repeat: Dict[str, Set[str]] = {}
    attr_presence: Dict[str, Counter] = {}
    has_text: Set[str] = set()
    root_tag = ""

    for doc in doc_list:
        if not root_tag:
            root_tag = doc.root.tag
        for node in doc.elements:
            tag = node.tag
            instance_counts[tag] += 1
            if node.text:
                has_text.add(tag)
            counts = Counter(child.tag for child in node.children)
            presence = child_presence.setdefault(tag, Counter())
            for child_tag, count in counts.items():
                presence[child_tag] += 1
                if count >= 2:
                    child_repeat.setdefault(tag, set()).add(child_tag)
            attrs = attr_presence.setdefault(tag, Counter())
            for attr in node.attrs:
                attrs[attr] += 1

    dtd = Dtd(root=root_tag or None)
    for tag in sorted(instance_counts):
        decl = ElementDecl(tag, has_text=tag in has_text)
        total = instance_counts[tag]
        for child_tag, present in sorted(
            child_presence.get(tag, Counter()).items()
        ):
            absent = present < total
            repeat = child_tag in child_repeat.get(tag, ())
            if absent and repeat:
                decl.children[child_tag] = Cardinality.STAR
            elif absent:
                decl.children[child_tag] = Cardinality.OPTIONAL
            elif repeat:
                decl.children[child_tag] = Cardinality.PLUS
            else:
                decl.children[child_tag] = Cardinality.ONE
        for attr, present in sorted(
            attr_presence.get(tag, Counter()).items()
        ):
            decl.attributes[attr] = AttributeDecl(
                attr, required=present == total
            )
        dtd.declare(decl)
    if root_tag:
        dtd.root = root_tag
    return dtd
