"""Unit tests for the cuboid materialization advisor (Sec. 3.6)."""

import pytest

from repro.core.cube import compute_cube
from repro.core.materialize import (
    MaterializedCube,
    cuboid_sizes,
    select_views,
)
from repro.core.properties import PropertyOracle
from tests.conftest import small_workload


@pytest.fixture(scope="module")
def clean():
    workload = small_workload(n_facts=100, coverage=True, disjoint=True)
    table = workload.fact_table()
    oracle = PropertyOracle.from_flags(table.lattice, True, True)
    return table, oracle


@pytest.fixture(scope="module")
def messy():
    workload = small_workload(
        n_facts=100, coverage=False, disjoint=False, seed=3
    )
    table = workload.fact_table()
    oracle = PropertyOracle.from_flags(table.lattice, False, False)
    return table, oracle


class TestSizes:
    def test_sizes_match_naive(self, clean):
        table, _ = clean
        sizes = cuboid_sizes(table, table.lattice)
        cube = compute_cube(table, "NAIVE")
        for point, size in sizes.items():
            assert size == len(cube.cuboids[point])


class TestSelection:
    def test_budget_respected(self, clean):
        table, oracle = clean
        sizes = cuboid_sizes(table, table.lattice)
        budget = sizes[table.lattice.top] + 10
        selection = select_views(table, oracle, space_budget=budget)
        assert selection.space_used <= budget
        assert table.lattice.top in selection.chosen

    def test_bigger_budget_serves_more(self, clean):
        table, oracle = clean
        small = select_views(table, oracle, space_budget=50)
        sizes = cuboid_sizes(table, table.lattice)
        large = select_views(
            table, oracle, space_budget=sum(sizes.values())
        )
        assert large.coverage_ratio() >= small.coverage_ratio()

    def test_messy_data_limits_serving(self, clean, messy):
        """Without summarizability, no cuboid can serve another: the
        advisor must fall back to per-point recomputation."""
        messy_table, messy_oracle = messy
        selection = select_views(
            messy_table, messy_oracle, space_budget=10_000
        )
        # Only materialized points serve themselves; nothing else is
        # soundly derivable.
        for point, source in selection.serving.items():
            if source is not None:
                assert source == point

    def test_clean_data_serves_most_points(self, clean):
        table, oracle = clean
        sizes = cuboid_sizes(table, table.lattice)
        selection = select_views(
            table, oracle, space_budget=sizes[table.lattice.top] + 50
        )
        assert selection.coverage_ratio() > 0.9


class TestMaterializedCube:
    def test_answers_match_full_cube(self, clean):
        table, oracle = clean
        selection = select_views(table, oracle, space_budget=2000)
        materialized = MaterializedCube(table, selection, oracle)
        reference = compute_cube(table, "NAIVE")
        materialized.verify_against(reference)
        assert materialized.stats["direct"] + materialized.stats[
            "rolled_up"
        ] + materialized.stats["recomputed"] == table.lattice.size()

    def test_messy_answers_still_correct(self, messy):
        table, oracle = messy
        selection = select_views(table, oracle, space_budget=2000)
        materialized = MaterializedCube(table, selection, oracle)
        reference = compute_cube(table, "NAIVE")
        materialized.verify_against(reference)
        # Everything not materialized had to be recomputed from base.
        assert materialized.stats["rolled_up"] == 0

    def test_cell_accessor(self, clean):
        table, oracle = clean
        selection = select_views(table, oracle, space_budget=2000)
        materialized = MaterializedCube(table, selection, oracle)
        reference = compute_cube(table, "NAIVE")
        point = table.lattice.bottom
        assert materialized.cell(point, ()) == reference.cuboids[point][()]
