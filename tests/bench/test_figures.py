"""Unit tests for the per-figure experiment definitions."""

from repro.bench.figures import FIGURES, run_figure, series_of


class TestSpecs:
    def test_all_figures_defined(self):
        assert set(FIGURES) == {
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "figC", "figD",
        }

    def test_settings_match_paper(self):
        assert FIGURES["fig4"].density == "sparse"
        assert not FIGURES["fig4"].coverage and FIGURES["fig4"].disjoint
        assert FIGURES["fig6"].density == "dense"
        assert FIGURES["fig7"].coverage and FIGURES["fig7"].disjoint
        assert not FIGURES["fig9"].coverage and not FIGURES["fig9"].disjoint
        assert FIGURES["fig10"].kind == "dblp"

    def test_fig5_scales_fig4(self):
        assert FIGURES["fig5"].base_facts > FIGURES["fig4"].base_facts

    def test_algorithm_lineups(self):
        assert "TDOPT" in FIGURES["fig4"].algorithms
        assert "TDOPTALL" in FIGURES["fig7"].algorithms
        assert "TDOPT" not in FIGURES["fig7"].algorithms
        assert set(FIGURES["fig10"].algorithms) >= {"BUCCUST", "TDCUST"}

    def test_configs_scale_knob(self):
        spec = FIGURES["fig4"]
        small = spec.configs(scale=0.5)
        big = spec.configs(scale=2.0)
        assert big[0].n_facts == 4 * small[0].n_facts

    def test_dblp_single_config(self):
        assert len(FIGURES["fig10"].configs()) == 1

    def test_columnar_duel_figure(self):
        spec = FIGURES["figC"]
        assert spec.algorithms == ("COUNTER", "COLUMNAR")
        assert spec.base_facts == 100_000
        assert spec.axes == (3,)
        assert spec.coverage and spec.disjoint

    def test_buc_td_duel_figure(self):
        spec = FIGURES["figD"]
        assert spec.algorithms == ("BUC", "TD")
        assert spec.encodings == ("dict", "auto")
        assert spec.base_facts == 100_000
        assert spec.axes == (3,)
        assert spec.coverage and spec.disjoint

    def test_duel_series_split_by_encoding(self):
        spec, runs = run_figure("figD", scale=0.002)
        series = series_of(runs)
        assert set(series) == {"BUC", "BUC[dict]", "TD", "TD[dict]"}


class TestRunFigure:
    def test_axes_restriction(self):
        spec, runs = run_figure("fig4", scale=0.3, axes=[2, 3])
        assert {run.n_axes for run in runs} == {2, 3}
        assert spec.figure_id == "fig4"

    def test_series_pivot(self):
        _, runs = run_figure("fig4", scale=0.3, axes=[2, 3])
        series = series_of(runs)
        assert set(series) == set(FIGURES["fig4"].algorithms)
        for points in series.values():
            assert [x for x, _ in points] == [2, 3]
