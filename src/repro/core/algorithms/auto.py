"""AUTO: the advisor as an algorithm.

``compute_cube(table, "AUTO", oracle=...)`` consults the Sec. 4.6
advisor (:mod:`repro.core.advisor`) with the given property oracle and
delegates to the chosen concrete algorithm.  The result's ``algorithm``
field records the delegation (e.g. ``AUTO->BUCOPT``) so runs stay
auditable.

Because the advisor gates on correctness first, AUTO is always correct
*provided the oracle is truthful* — an optimistic oracle delegates to an
optimistic algorithm, exactly like running that algorithm directly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.advisor import recommend_for_table
from repro.core.algorithms.base import CubeAlgorithm, ExecutionContext
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint


class AutoAlgorithm(CubeAlgorithm):
    name = "AUTO"

    def run(self, table, oracle=None, memory_entries=None, points=None,
            min_support=0.0, encoding="auto"):
        from repro.core.algorithms.base import DEFAULT_MEMORY_ENTRIES
        from repro.core.algorithms.registry import new_instance
        from repro.core.properties import PropertyOracle

        effective_oracle = oracle or PropertyOracle.from_flags(
            table.lattice, False, False
        )
        recommendation = recommend_for_table(
            table,
            effective_oracle,
            memory_entries or DEFAULT_MEMORY_ENTRIES,
        )
        # Fresh delegate: concurrent AUTO runs (the parallel engine's
        # thread pool) must not share the registry singleton's state.
        delegate = new_instance(recommendation.algorithm)
        result = delegate.run(
            table,
            oracle=effective_oracle,
            memory_entries=memory_entries,
            points=points,
            min_support=min_support,
            encoding=encoding,
        )
        result.algorithm = f"AUTO->{result.algorithm}"
        return result

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:  # pragma: no cover
        raise AssertionError("AUTO overrides run() directly")
