#!/usr/bin/env python3
"""Driving the TIMBER-style native XML store directly.

Loads raw XML text into :class:`repro.timber.TimberDB`, runs a
structural join over the tag index, matches a relaxed tree pattern
against the store, and extracts a fact table through the database
backend — all with page-level I/O accounting, the substrate the paper's
measurements ran on.

Run:  python examples/timber_store.py
"""

from repro.core.cube import compute_cube
from repro.core.extract import extract_from_db
from repro.datagen.publications import figure1_document, query1
from repro.patterns.match import match_db
from repro.patterns.parse import parse_pattern
from repro.timber.database import TimberDB
from repro.timber.structural_join import stack_tree_join
from repro.xmlmodel.serializer import serialize

BOOKSTORE_XML = """
<bookstore>
  <book genre="db"><title>XML Warehousing</title>
    <author><name>Ada</name></author>
    <author><name>Alan</name></author>
  </book>
  <book genre="ir"><title>Tree Patterns</title>
    <editors><author><name>Grace</name></author></editors>
  </book>
</bookstore>
"""


def main() -> None:
    db = TimberDB(buffer_pages=64, memory_entries=10_000)

    # Load raw XML text (parsed by the hand-written parser) and the
    # Figure 1 document (serialize -> reparse round-trip for fun).
    db.load(BOOKSTORE_XML, name="bookstore")
    db.load(serialize(figure1_document()), name="figure1")
    db.build_index()
    print(f"store: {db!r}")
    print(f"tags: {db.tags()}")

    # A raw structural join: book ancestors of name descendants.
    pairs = list(
        stack_tree_join(db.postings("book"), db.postings("name"), db.cost)
    )
    print(f"\nstructural join book//name: {len(pairs)} pairs")
    for anc, desc in pairs:
        print(f"  book@{anc.start} contains name@{desc.start} "
              f"({db.record_of(desc).text})")

    # Tree-pattern matching with an optional (outer-join) branch.
    pattern = parse_pattern("//book[//name=$n][/title=$t]")
    witnesses = match_db(db, pattern)
    print(f"\npattern {pattern.signature()}: {len(witnesses)} witnesses")
    for witness in witnesses:
        print(f"  title={witness.value_of('$t')!r} name={witness.value_of('$n')!r}")

    # Cube over the DB backend, with I/O accounted.
    db.reset_cost()
    table = extract_from_db(db, query1())
    print(f"\nextraction touched {db.cost.io.page_reads} page reads, "
          f"{db.cost.io.buffer_hits} buffer hits")
    cube = compute_cube(table, "COUNTER")
    print(cube.summary())


if __name__ == "__main__":
    main()
