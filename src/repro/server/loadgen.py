"""A deterministic closed-loop load generator for the HTTP front door.

``clients`` worker threads each run a *closed loop* against a live
:class:`~repro.server.http.X3HttpServer`: issue one request over a
persistent ``http.client`` connection, wait for the answer, record it,
issue the next.  The request mix is deterministic — client ``i`` draws
its point sequence from ``random.Random(seed + i)`` with the same
finer-biased weighting the serve replay uses — so the *modeled* latency
distribution the servers report is reproducible run to run; only the
wall-clock columns vary with the host.

Every response feeds three sinks:

- a :class:`LoadReport` with per-request records and latency quantiles
  on both time bases (the modeled p95 is the number the perf gate
  pins);
- optionally a :class:`~repro.obs.live.LiveTelemetry` instance, each
  answer re-entering the standard serving-telemetry pipeline as a
  synthesized :class:`~repro.obs.events.RequestEvent`;
- optionally a JSON-Lines file (one record per request) for CI
  artifact upload.

429 responses (admission shed) are recorded, not retried: a closed
loop that retried rejected requests would hide the backpressure the
generator exists to measure.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.lattice import CubeLattice
from repro.obs.events import RequestEvent
from repro.obs.live import LiveTelemetry, percentile

#: Query-kind mix of one client loop, as (kind, weight) pairs — mostly
#: whole-cuboid reads with a tail of transformed reads, like dashboards.
KIND_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("aggregate", 6.0),
    ("slice", 2.0),
    ("dice", 1.0),
    ("explain", 1.0),
)


@dataclass(frozen=True)
class RequestRecord:
    """One request/response pair, as the generator saw it."""

    client: int
    index: int  #: position in this client's loop
    op: str
    point: str
    status: int
    wall_seconds: float
    modeled_seconds: float  #: server-reported; 0.0 for non-200s
    tier: str  #: server-reported resolving rung ("" for non-200s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "client": self.client,
            "index": self.index,
            "op": self.op,
            "point": self.point,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "modeled_seconds": self.modeled_seconds,
            "tier": self.tier,
        }


@dataclass(frozen=True)
class LoadReport:
    """The whole run, reduced: counts, errors, and latency quantiles."""

    clients: int
    requests: int
    statuses: Dict[int, int]
    modeled_quantiles: Dict[float, float]
    wall_quantiles: Dict[float, float]
    records: Tuple[RequestRecord, ...]

    @property
    def ok(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def shed(self) -> int:
        return self.statuses.get(429, 0)

    def summary(self) -> str:
        status_text = ", ".join(
            f"{count}x{status}"
            for status, count in sorted(self.statuses.items())
        )
        return (
            f"{self.requests} requests from {self.clients} clients "
            f"({status_text}); modeled p95 "
            f"{self.modeled_quantiles[0.95] * 1e3:.3f}ms, wall p95 "
            f"{self.wall_quantiles[0.95] * 1e3:.3f}ms"
        )

    def write_jsonl(self, path: str) -> int:
        """One JSON line per request record; returns the line count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return len(self.records)


def sample_queries(
    lattice: CubeLattice, n: int, seed: int
) -> List[Tuple[str, str, Dict[str, Any]]]:
    """A deterministic request plan: ``n`` (op, point, body) triples.

    Points are drawn finer-biased exactly like the serve replay
    (dashboards hammer detailed cuboids); the op mix follows
    :data:`KIND_WEIGHTS`.  Slice/dice operands are drawn from the
    point's kept axes, falling back to ``aggregate`` at points with
    none (the apex has nothing to slice).
    """
    points = lattice.topo_finer_first()
    rng = random.Random(seed)
    point_weights = [1.0 / (rank + 1) for rank in range(len(points))]
    ops = [kind for kind, _ in KIND_WEIGHTS]
    op_weights = [weight for _, weight in KIND_WEIGHTS]
    plan: List[Tuple[str, str, Dict[str, Any]]] = []
    for _ in range(n):
        point = rng.choices(points, weights=point_weights, k=1)[0]
        op = rng.choices(ops, weights=op_weights, k=1)[0]
        described = lattice.describe(point)
        body: Dict[str, Any] = {"point": described}
        kept = lattice.kept_axes(point)
        if op in ("slice", "dice") and not kept:
            op = "aggregate"
        elif op == "slice":
            axis = lattice.axes[rng.choice(kept)].name
            body["axis"] = axis
            body["value"] = "__loadgen__"  # empty slice: cost, no rows
        elif op == "dice":
            axis = lattice.axes[rng.choice(kept)].name
            body["filters"] = {axis: ["__loadgen__"]}
        plan.append((op, described, body))
    return plan


class LoadGenerator:
    """Drive a live front door with concurrent closed-loop clients.

    Args:
        host: server host.
        port: server port.
        cube: catalog name of the cube to query.
        lattice: the cube's lattice (for the deterministic point mix).
        clients: concurrent closed loops.
        requests_per_client: loop length per client.
        seed: base seed; client ``i`` uses ``seed + i``.
        token: bearer token sent with every request (when set).
        telemetry: optional live-telemetry sink each 200 feeds.
        clock: wall-time source (injectable for tests).
    """

    def __init__(
        self,
        host: str,
        port: int,
        cube: str,
        lattice: CubeLattice,
        *,
        clients: int = 4,
        requests_per_client: int = 25,
        seed: int = 17,
        token: Optional[str] = None,
        telemetry: Optional[LiveTelemetry] = None,
        timeout_seconds: float = 30.0,
    ) -> None:
        if clients <= 0 or requests_per_client <= 0:
            raise ValueError(
                "clients and requests_per_client must be positive"
            )
        self.host = host
        self.port = port
        self.cube = cube
        self.lattice = lattice
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.seed = seed
        self.token = token
        self.telemetry = telemetry
        self.timeout_seconds = timeout_seconds

    # ------------------------------------------------------------------
    def run(self) -> LoadReport:
        """Run every client loop to completion and reduce the records."""
        results: List[List[RequestRecord]] = [
            [] for _ in range(self.clients)
        ]
        threads = [
            threading.Thread(
                target=self._client_loop,
                args=(client, results[client]),
                name=f"x3-loadgen-{client}",
            )
            for client in range(self.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = tuple(
            record for client in results for record in client
        )
        statuses: Dict[int, int] = {}
        for record in records:
            statuses[record.status] = statuses.get(record.status, 0) + 1
        modeled = [
            r.modeled_seconds for r in records if r.status == 200
        ]
        walls = [r.wall_seconds for r in records if r.status == 200]
        quantiles = (0.50, 0.95, 0.99)
        return LoadReport(
            clients=self.clients,
            requests=len(records),
            statuses=statuses,
            modeled_quantiles={
                q: percentile(modeled, q) for q in quantiles
            },
            wall_quantiles={q: percentile(walls, q) for q in quantiles},
            records=records,
        )

    # ------------------------------------------------------------------
    def _client_loop(
        self, client: int, out: List[RequestRecord]
    ) -> None:
        import time

        plan = sample_queries(
            self.lattice, self.requests_per_client, self.seed + client
        )
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_seconds
        )
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        try:
            for index, (op, point, body) in enumerate(plan):
                path = f"/api/v1/cubes/{self.cube}/{op}"
                started = time.monotonic()
                try:
                    connection.request(
                        "POST",
                        path,
                        body=json.dumps(body),
                        headers=headers,
                    )
                    response = connection.getresponse()
                    payload = response.read()
                    status = response.status
                except (OSError, http.client.HTTPException):
                    # Connection-level failure: record and reconnect.
                    connection.close()
                    connection = http.client.HTTPConnection(
                        self.host,
                        self.port,
                        timeout=self.timeout_seconds,
                    )
                    out.append(
                        RequestRecord(
                            client=client,
                            index=index,
                            op=op,
                            point=point,
                            status=0,
                            wall_seconds=time.monotonic() - started,
                            modeled_seconds=0.0,
                            tier="",
                        )
                    )
                    continue
                wall = time.monotonic() - started
                record = self._record(
                    client, index, op, point, status, wall, payload
                )
                out.append(record)
                if (
                    self.telemetry is not None
                    and status == 200
                    and op != "explain"
                ):
                    self.telemetry.record(
                        self._as_event(record)
                    )
        finally:
            connection.close()

    def _record(
        self,
        client: int,
        index: int,
        op: str,
        point: str,
        status: int,
        wall: float,
        payload: bytes,
    ) -> RequestRecord:
        modeled = 0.0
        tier = ""
        if status == 200:
            try:
                decoded = json.loads(payload.decode("utf-8"))
                modeled = float(decoded.get("modeled_seconds", 0.0))
                tier = str(decoded.get("tier", ""))
            except (ValueError, UnicodeDecodeError):
                pass
        return RequestRecord(
            client=client,
            index=index,
            op=op,
            point=point,
            status=status,
            wall_seconds=wall,
            modeled_seconds=modeled,
            tier=tier,
        )

    @staticmethod
    def _as_event(record: RequestRecord) -> RequestEvent:
        """Lift one answered request back into the standard serving
        event shape so :class:`LiveTelemetry` windows absorb it."""
        return RequestEvent(
            seq=0,
            kind=record.op,
            point=record.point,
            tier=record.tier or "recompute",
            version=0,
            modeled_seconds=record.modeled_seconds,
            cold_seconds=record.modeled_seconds,
            wall_seconds=record.wall_seconds,
            cells=0,
        )
