"""Unit tests for serialization and round-tripping."""

from repro.xmlmodel.nodes import Element
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import escape_attr, escape_text, serialize


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attr_escapes_quotes(self):
        assert escape_attr('say "hi" & <go>') == (
            "say &quot;hi&quot; &amp; &lt;go&gt;"
        )


class TestCompact:
    def test_empty_element(self):
        assert serialize(parse("<a/>")) == "<a/>"

    def test_attributes_preserved(self):
        text = serialize(parse('<a x="1" y="&lt;"/>'))
        assert text == '<a x="1" y="&lt;"/>'

    def test_nested_structure(self):
        text = serialize(parse("<a><b>t</b><c/></a>"))
        assert text == "<a><b>t</b><c/></a>"

    def test_serialize_element_subtree(self):
        doc = parse("<a><b>t</b></a>")
        assert serialize(doc.root.children[0]) == "<b>t</b>"


class TestRoundTrip:
    SAMPLES = [
        "<a/>",
        "<a>text</a>",
        '<a k="v"><b/><c>deep<d/></c></a>',
        "<a>&lt;escaped&gt; &amp; more</a>",
        '<a quote="&quot;q&quot;"/>',
    ]

    def test_structure_round_trips(self):
        for sample in self.SAMPLES:
            doc = parse(sample)
            again = parse(serialize(doc))
            assert _shape(doc.root) == _shape(again.root)

    def test_pretty_output_reparses(self):
        doc = parse('<a><b x="1">hi</b><c/></a>')
        pretty = serialize(doc, pretty=True)
        assert "\n" in pretty
        again = parse(pretty)
        assert _shape(doc.root) == _shape(again.root)


def _shape(element: Element):
    return (
        element.tag,
        tuple(sorted(element.attrs.items())),
        element.text,
        tuple(_shape(child) for child in element.children),
    )
