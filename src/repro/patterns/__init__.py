"""Tree patterns, their textual syntax, matching, and relaxations.

The paper specifies grouping by a *tree pattern* plus a grouping list
(Sec. 2.1), and generates the cube by relaxing the pattern (Sec. 2.2):

- **PC-AD** — parent/child edge generalized to ancestor/descendant;
- **SP**    — sub-tree promotion (re-attach under the grandparent with a
  descendant edge);
- **LND**   — leaf node deletion (make a leaf optional / drop a dimension).

Public surface:

- :class:`~repro.patterns.pattern.TreePattern` /
  :class:`~repro.patterns.pattern.PatternNode`
- :func:`~repro.patterns.parse.parse_pattern` — ``a[b/c][.//d]/@id`` syntax
- :func:`~repro.patterns.match.match_document` /
  :func:`~repro.patterns.match.match_db` — witness-tree enumeration
- :mod:`repro.patterns.relaxation` — the three operators and the most
  relaxed fully instantiated pattern of Fig. 2.
"""

from repro.patterns.pattern import EdgeAxis, PatternNode, TreePattern
from repro.patterns.parse import parse_pattern
from repro.patterns.match import match_db, match_document
from repro.patterns.relaxation import (
    Relaxation,
    apply_lnd,
    apply_pc_ad,
    apply_sp,
    most_relaxed_pattern,
)

__all__ = [
    "EdgeAxis",
    "PatternNode",
    "TreePattern",
    "parse_pattern",
    "match_document",
    "match_db",
    "Relaxation",
    "apply_lnd",
    "apply_pc_ad",
    "apply_sp",
    "most_relaxed_pattern",
]
