"""The ``x3-sql`` interactive shell for X^3QL.

Usage::

    x3-sql --query query.xq data.xml            # interactive shell
    x3-sql --demo                               # Figure-1 workload
    x3-sql --demo -c "ROLLUP default BY n:detail, y:detail"
    echo "ROLLUP default BY y:detail;" | x3-sql --demo

Boots the same backends as ``x3-server`` (a single
:class:`~repro.serve.CubeServer` or a sharded cluster behind the
:class:`~repro.core.query.CubeBackend` API), registers the cube in a
:class:`~repro.server.model.CubeCatalog`, and evaluates X^3QL
statements against it.  Interactive niceties: readline line editing
with a persistent history file, multi-line continuation driven by the
parser's ``incomplete`` flag (an unfinished FLWOR keeps prompting),
aligned table output or ``\\json`` mode, and ``\\``-prefixed meta
commands (``\\help`` lists them).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, List, Optional, Sequence

from repro.errors import QueryParseError, X3Error
from repro.lang.compiler import (
    Compiled,
    CompiledDefinition,
    compile_statement,
)
from repro.lang.parser import parse_statement, parse_statements
from repro.core.query import QueryResult
from repro.server.model import CubeCatalog

HISTORY_FILE = "~/.x3sql_history"

PROMPT = "x3ql> "
CONTINUE_PROMPT = "  ..> "

HELP_TEXT = """\
Statements (end-of-line runs a complete statement; unfinished ones
keep prompting; ';' separates several on one line):
  ROLLUP <cube> [BY dim:level, ...]
  DRILLDOWN <cube> ON <dim> [BY ...]
  SLICE <cube> ON <dim> = '<value>' [BY ...]
  DICE <cube> [BY ...] WHERE dim = 'v' [AND dim IN ('a', 'b')]
  CELL <cube> KEY ('v', NULL, ...) [BY ...]
  EXPLAIN <any of the above>
  for $b in doc("...")//tag, ... X^3 $b/@id by $v (LND, ...) return AGG(...).
Clauses: AT VERSION <n, ...>   WITHIN <n>[s|ms]   MEASURE <AGG>
Meta commands:
  \\help          this text
  \\cubes         list the served cubes
  \\explain STMT  show the backend's plan for STMT (no execution)
  \\ast STMT      show the parsed AST of STMT
  \\json [on|off] toggle JSON output
  \\q             quit
"""


class Repl:
    """One X^3QL session over a catalog (transport-free, testable)."""

    def __init__(
        self,
        catalog: CubeCatalog,
        *,
        json_output: bool = False,
        out: Optional[IO[str]] = None,
    ) -> None:
        self.catalog = catalog
        self.json_output = json_output
        self.out = out if out is not None else sys.stdout

    # ------------------------------------------------------------------
    def echo(self, text: str) -> None:
        print(text, file=self.out)

    def execute(self, text: str) -> bool:
        """Run every statement (or one meta command) in ``text``;
        returns False when anything failed."""
        stripped = text.strip()
        if not stripped:
            return True
        if stripped.startswith("\\"):
            return self.meta(stripped)
        try:
            statements = parse_statements(text)
            ok = True
            for statement in statements:
                compiled = compile_statement(statement, self.catalog)
                self.show(self.run(compiled))
            return ok
        except X3Error as error:
            self.echo(f"error: {error}")
            return False

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, compiled: Compiled) -> object:
        if isinstance(compiled, CompiledDefinition):
            spec = compiled.spec
            return {
                "kind": "definition",
                "fact_tag": spec.fact_tag,
                "document": spec.document,
                "axes": [axis.name for axis in spec.axes],
                "lattice_points": spec.lattice().size(),
                "flwor": spec.to_flwor(),
            }
        bound = self.catalog.get(compiled.cube)
        if compiled.explain:
            return bound.backend.explain_query(compiled.query).to_dict()
        return bound.backend.query(compiled.query)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def show(self, outcome: object) -> None:
        if isinstance(outcome, QueryResult):
            if self.json_output:
                self.echo(json.dumps(outcome.to_dict(), indent=1))
            else:
                self.show_result(outcome)
            return
        # definitions / explanations are already JSON-shaped
        if isinstance(outcome, dict) and not self.json_output:
            flwor = outcome.get("flwor")
            if isinstance(flwor, str):
                self.echo(flwor)
                self.echo(
                    f"-- cube definition: {len(outcome['axes'])} axes, "
                    f"{outcome['lattice_points']} lattice points"
                )
                return
        self.echo(json.dumps(outcome, indent=1))

    def show_result(self, result: QueryResult) -> None:
        if isinstance(result.payload, dict):
            headers = self._headers(result)
            rows = [
                ["NULL" if part is None else str(part) for part in key]
                + [f"{value:g}"]
                for key, value in sorted(
                    result.payload.items(),
                    key=lambda item: tuple(
                        (part is None, part) for part in item[0]
                    ),
                )
            ]
            self.echo(_table(headers, rows))
            count = f"{len(rows)} row{'s' if len(rows) != 1 else ''}"
        else:
            value = result.payload
            self.echo("NULL" if value is None else f"{value:g}")
            count = "1 cell"
        deadline = " DEADLINE EXCEEDED" if result.deadline_exceeded else ""
        self.echo(
            f"-- {count} · {result.point} · tier {result.tier} · "
            f"version {list(result.version)} · "
            f"{result.modeled_seconds * 1e3:.3f}ms modeled{deadline}"
        )

    @staticmethod
    def _headers(result: QueryResult) -> List[str]:
        """Column names from the served point description: the kept
        (non-LND) axes, when their count matches the key arity."""
        kept = [
            part.split(":", 1)[0].strip()
            for part in result.point.split(",")
            if ":" in part and not part.strip().endswith(":LND")
        ]
        rows = result.payload if isinstance(result.payload, dict) else {}
        arity = len(next(iter(rows), ()))
        if rows and len(kept) != arity:
            kept = [f"key{position}" for position in range(arity)]
        return kept + ["value"]

    # ------------------------------------------------------------------
    # meta commands
    # ------------------------------------------------------------------
    def meta(self, line: str) -> bool:
        command, _, rest = line.partition(" ")
        rest = rest.strip()
        if command in ("\\q", "\\quit", "\\exit"):
            raise EOFError
        if command in ("\\help", "\\?"):
            self.echo(HELP_TEXT)
            return True
        if command == "\\cubes":
            for entry in self.catalog.describe():
                dims = ", ".join(
                    f"{dim['name']}->{dim['axis']}"
                    for dim in entry["dimensions"]
                )
                self.echo(
                    f"{entry['name']}: {dims} "
                    f"({entry['lattice_points']} lattice points, "
                    f"version {entry['version']})"
                )
            return True
        if command == "\\json":
            if rest in ("on", "off"):
                self.json_output = rest == "on"
            else:
                self.json_output = not self.json_output
            self.echo(
                f"json output {'on' if self.json_output else 'off'}"
            )
            return True
        if command in ("\\explain", "\\ast"):
            if not rest:
                self.echo(f"usage: {command} STATEMENT")
                return False
            try:
                statement = parse_statement(rest)
                if command == "\\ast":
                    self.echo(repr(statement))
                    return True
                compiled = compile_statement(statement, self.catalog)
                if isinstance(compiled, CompiledDefinition):
                    self.echo(
                        json.dumps(
                            {
                                "kind": "definition",
                                "flwor": compiled.spec.to_flwor(),
                            },
                            indent=1,
                        )
                    )
                    return True
                bound = self.catalog.get(compiled.cube)
                plan = bound.backend.explain_query(compiled.query)
                self.echo(json.dumps(plan.to_dict(), indent=1))
                return True
            except X3Error as error:
                self.echo(f"error: {error}")
                return False
        self.echo(f"unknown meta command {command!r} (try \\help)")
        return False


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(header), *(len(row[i]) for row in rows), 1)
        if rows
        else max(len(header), 1)
        for i, header in enumerate(headers)
    ]
    def line(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()
    rule = "-+-".join("-" * width for width in widths)
    return "\n".join([line(headers), rule] + [line(row) for row in rows])


# ----------------------------------------------------------------------
# the interactive loop
# ----------------------------------------------------------------------
def _setup_readline() -> None:  # pragma: no cover - interactive only
    try:
        import atexit
        import os
        import readline
    except ImportError:
        return
    path = os.path.expanduser(HISTORY_FILE)
    try:
        readline.read_history_file(path)
    except OSError:
        pass
    readline.set_history_length(1000)
    atexit.register(
        lambda: _write_history(readline, path)
    )


def _write_history(readline: object, path: str) -> None:  # pragma: no cover
    try:
        readline.write_history_file(path)  # type: ignore[attr-defined]
    except OSError:
        pass


def interact(repl: Repl) -> int:  # pragma: no cover - interactive only
    """The prompt loop: multi-line continuation via the parser's
    ``incomplete`` flag, one history entry per statement."""
    _setup_readline()
    repl.echo(
        "x3-sql: the X^3QL shell (\\help for help, \\q to quit)"
    )
    buffer: List[str] = []
    while True:
        prompt = CONTINUE_PROMPT if buffer else PROMPT
        try:
            line = input(prompt)
        except EOFError:
            repl.echo("")
            return 0
        except KeyboardInterrupt:
            repl.echo("^C")
            buffer = []
            continue
        buffer.append(line)
        text = "\n".join(buffer)
        if not text.strip():
            buffer = []
            continue
        if not text.strip().startswith("\\"):
            try:
                parse_statements(text)
            except QueryParseError as error:
                if error.incomplete:
                    continue  # keep reading the statement
        buffer = []
        try:
            repl.execute(text)
        except EOFError:
            return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-sql",
        description=(
            "Interactive X^3QL shell over a CubeServer or a sharded "
            "cluster (same backends as x3-server)."
        ),
    )
    parser.add_argument(
        "files", nargs="*", help="XML input files (or use --demo)"
    )
    parser.add_argument(
        "--query", help="file holding the X^3 FLWOR cube definition"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="serve the paper's Figure-1 publication workload "
        "(no files needed)",
    )
    parser.add_argument(
        "--cube-name",
        default="default",
        help="catalog name of the served cube (default 'default')",
    )
    parser.add_argument(
        "--backend",
        choices=("serve", "cluster"),
        default="serve",
        help="single CubeServer or a sharded ClusterCoordinator",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--cache-cells", type=int, default=4096)
    parser.add_argument(
        "--oracle", choices=("data", "none"), default="data"
    )
    parser.add_argument("--algorithm", default="NAIVE")
    parser.add_argument(
        "--engine",
        default="auto",
        help="execution engine for recomputes (default auto)",
    )
    parser.add_argument(
        "-c",
        "--execute",
        action="append",
        metavar="STMT",
        help="execute a statement and exit (repeatable)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="JSON output instead of aligned tables",
    )
    return parser


def _load_demo_table() -> object:
    from repro.core.extract import extract_fact_table
    from repro.core.xq_parser import parse_x3_query
    from repro.datagen.publications import QUERY1_TEXT, figure1_document

    return extract_fact_table(
        [figure1_document()], parse_x3_query(QUERY1_TEXT)
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.demo:
            if args.files or args.query:
                raise X3Error(
                    "--demo replaces the files and --query arguments"
                )
            table = _load_demo_table()
        else:
            if not args.files or not args.query:
                raise X3Error(
                    "need XML files and --query (or --demo)"
                )
            from repro.serve.cli import load_table

            table = load_table(args)
    except (OSError, X3Error) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    from repro.server.cli import build_backend
    from repro.server.model import LogicalCube

    backend = build_backend(args, table)  # type: ignore[arg-type]
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice(
            args.cube_name,
            backend.lattice,
            measure=table.aggregate.function.upper(),  # type: ignore[attr-defined]
            description=f"x3-sql session ({args.backend})",
        ),
        backend,
    )
    repl = Repl(catalog, json_output=args.json)
    try:
        if args.execute:
            ok = True
            for statement in args.execute:
                try:
                    ok = repl.execute(statement) and ok
                except EOFError:
                    break
            return 0 if ok else 1
        if not sys.stdin.isatty():
            try:
                ok = repl.execute(sys.stdin.read())
            except EOFError:
                ok = True
            return 0 if ok else 1
        return interact(repl)  # pragma: no cover - interactive only
    finally:
        closer = getattr(backend, "close", None)
        if callable(closer):
            closer()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
