"""Deterministic fault injection for the sharded cube cluster.

The harness injects three fault kinds, all drawn from one seeded RNG so
a replay with the same profile, seed and operation order reproduces the
exact same fault schedule:

- **crash** — a shard replica becomes unavailable; reads must fail over
  to another replica.  The planner never crashes the last healthy
  replica of a shard (the harness proves degraded-mode *correctness*,
  not unavailability).
- **straggle** — a replica's answer is delayed by extra *modeled*
  seconds; past the coordinator's hedge deadline this triggers a hedged
  read on a backup replica.
- **stale** — a replica defers applying a write batch, so its next read
  answers at an old version and the coordinator must detect the
  inconsistency, force a sync, and retry.

Faults are *planned* sequentially by the coordinator before each fan-out
(one RNG draw per (operation, shard, replica) in a fixed order), so the
thread scheduling of the scatter itself can never perturb the schedule.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ClusterError


@dataclass(frozen=True)
class ChaosProfile:
    """Fault rates of one chaos configuration (all per opportunity)."""

    name: str
    crash_rate: float = 0.0  #: P(crash a healthy, non-last replica)
    straggle_rate: float = 0.0  #: P(delay a read answer)
    straggle_seconds: float = 0.25  #: modeled delay added when straggling
    stale_rate: float = 0.0  #: P(a replica defers a write batch)
    max_crashes: int = 0  #: cap on total injected crashes

    def __post_init__(self) -> None:
        for rate in (self.crash_rate, self.straggle_rate, self.stale_rate):
            if not 0.0 <= rate <= 1.0:
                raise ClusterError(
                    f"chaos rates must be in [0, 1], got {rate}"
                )


#: Named profiles the ``x3-cluster --chaos`` flag accepts.
PROFILES: Dict[str, ChaosProfile] = {
    "none": ChaosProfile(name="none"),
    "light": ChaosProfile(
        name="light",
        crash_rate=0.01,
        straggle_rate=0.05,
        straggle_seconds=0.25,
        stale_rate=0.05,
        max_crashes=1,
    ),
    "heavy": ChaosProfile(
        name="heavy",
        crash_rate=0.05,
        straggle_rate=0.20,
        straggle_seconds=0.5,
        stale_rate=0.25,
        max_crashes=3,
    ),
}


@dataclass(frozen=True)
class ReadFault:
    """The planned fault for one (read, shard, replica) opportunity."""

    crash: bool = False
    extra_seconds: float = 0.0


NO_FAULT = ReadFault()


@dataclass
class ChaosEngine:
    """Seeded fault planner; one instance drives one cluster's schedule.

    Thread-safe: planning draws happen under a lock, though the
    coordinator already serializes planning to keep schedules replayable.
    """

    profile: ChaosProfile
    seed: int = 0
    injected: Dict[str, int] = field(
        default_factory=lambda: {"crash": 0, "straggle": 0, "stale": 0}
    )

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def plan_read(
        self, op: int, shard: int, replica: int, healthy_replicas: int
    ) -> ReadFault:
        """The fault (if any) to inject on one read opportunity.

        ``healthy_replicas`` is the shard's healthy count *before* this
        fault; a crash is only planned when at least one other healthy
        replica would survive it.
        """
        with self._lock:
            crash_draw = self._rng.random()
            straggle_draw = self._rng.random()
            crash = (
                crash_draw < self.profile.crash_rate
                and healthy_replicas > 1
                and self.injected["crash"] < self.profile.max_crashes
            )
            if crash:
                self.injected["crash"] += 1
                return ReadFault(crash=True)
            if straggle_draw < self.profile.straggle_rate:
                self.injected["straggle"] += 1
                return ReadFault(
                    extra_seconds=self.profile.straggle_seconds
                )
            return NO_FAULT

    def plan_write_stale(self, op: int, shard: int, replica: int) -> bool:
        """Should this replica defer (lag) this write batch?"""
        with self._lock:
            stale = self._rng.random() < self.profile.stale_rate
            if stale:
                self.injected["stale"] += 1
            return stale

    def summary(self) -> str:
        with self._lock:
            return (
                f"chaos[{self.profile.name} seed={self.seed}]: "
                f"{self.injected['crash']} crashes, "
                f"{self.injected['straggle']} stragglers, "
                f"{self.injected['stale']} stale writes"
            )


def get_profile(name: str) -> ChaosProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ClusterError(
            f"unknown chaos profile {name!r}; choose from "
            f"{sorted(PROFILES)}"
        ) from None
