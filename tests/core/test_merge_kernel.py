"""The shared merge kernel (:mod:`repro.core.merge`): one soundness
story for the engine's partition merge and the cluster's shard gather."""

import pytest

from repro.core.aggregates import get_function
from repro.core.merge import (
    STATE_EXACT_AGGREGATES,
    finalize_states,
    merge_disjoint,
    merge_finalized,
    merge_states,
    states_from_finalized,
)
from repro.errors import CubeError


class TestMergeDisjoint:
    def test_merges_distinct_points(self):
        left = {(0, 0): {("a",): 1.0}}
        right = {(0, 1): {("b",): 2.0}}
        merged = merge_disjoint([left, right])
        assert merged == {(0, 0): {("a",): 1.0}, (0, 1): {("b",): 2.0}}

    def test_rejects_overlapping_points(self):
        colliding = {(0, 0): {("a",): 1.0}}
        with pytest.raises(CubeError):
            merge_disjoint([colliding, dict(colliding)])

    def test_empty_input(self):
        assert merge_disjoint([]) == {}


class TestMergeStates:
    def test_count_states_add(self):
        fn = get_function("COUNT")
        merged = merge_states(
            fn, [{("a",): 2, ("b",): 1}, {("a",): 3}, {}]
        )
        assert merged == {("a",): 5, ("b",): 1}

    def test_avg_states_merge_pairwise(self):
        fn = get_function("AVG")
        merged = merge_states(
            fn,
            [{("a",): (10.0, 2)}, {("a",): (2.0, 1), ("b",): (4.0, 4)}],
        )
        assert merged == {("a",): (12.0, 3), ("b",): (4.0, 4)}
        assert finalize_states(fn, merged) == {
            ("a",): 4.0,
            ("b",): 1.0,
        }

    def test_min_merge_handles_empty_side(self):
        fn = get_function("MIN")
        merged = merge_states(fn, [{("a",): 5.0}, {("a",): 3.0}, {}])
        assert finalize_states(fn, merged) == {("a",): 3.0}


class TestStatesFromFinalized:
    def test_count_round_trips_as_int_states(self):
        states = states_from_finalized("COUNT", {("a",): 3.0})
        assert states == {("a",): 3}
        assert isinstance(states[("a",)], int)

    @pytest.mark.parametrize("name", sorted(STATE_EXACT_AGGREGATES))
    def test_state_exact_lift_then_finalize_is_identity(self, name):
        fn = get_function(name)
        cuboid = {("a",): 4.0, ("b",): -2.0}
        lifted = states_from_finalized(name, cuboid)
        assert finalize_states(fn, lifted) == cuboid

    def test_avg_cannot_be_lifted(self):
        # The whole reason the cluster ships raw states for AVG.
        with pytest.raises(CubeError):
            states_from_finalized("AVG", {("a",): 4.0})


class TestMergeFinalized:
    def test_distributive_cuboids_merge(self):
        merged = merge_finalized(
            "SUM", [{("a",): 1.5}, {("a",): 2.5, ("b",): 1.0}]
        )
        assert merged == {("a",): 4.0, ("b",): 1.0}

    def test_avg_rejected(self):
        with pytest.raises(CubeError):
            merge_finalized("AVG", [{("a",): 1.0}, {("a",): 2.0}])
