"""Unit tests for the XSD-subset parser."""

import pytest

from repro.errors import SchemaError
from repro.schema.dtd import Cardinality
from repro.schema.properties import (
    PropertyVerdict,
    axis_coverage,
    axis_disjointness,
)
from repro.schema.xsd_parser import parse_xsd
from repro.xmlmodel.navigation import parse_path

PUBLICATION_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="publication">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="author" minOccurs="0" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="name" type="xs:string"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="publisher" minOccurs="0">
          <xs:complexType>
            <xs:attribute name="id" use="required"/>
          </xs:complexType>
        </xs:element>
        <xs:element name="year" type="xs:string"/>
      </xs:sequence>
      <xs:attribute name="id" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""


class TestParse:
    def test_cardinalities(self):
        dtd = parse_xsd(PUBLICATION_XSD)
        pub = dtd.get("publication")
        assert pub.children["author"] is Cardinality.STAR
        assert pub.children["publisher"] is Cardinality.OPTIONAL
        assert pub.children["year"] is Cardinality.ONE

    def test_nested_declarations_registered(self):
        dtd = parse_xsd(PUBLICATION_XSD)
        assert dtd.get("author").children["name"] is Cardinality.ONE
        assert dtd.get("name").has_text

    def test_attributes(self):
        dtd = parse_xsd(PUBLICATION_XSD)
        assert dtd.get("publication").attributes["id"].required
        assert dtd.get("publisher").attributes["id"].required

    def test_root_defaults_to_first(self):
        dtd = parse_xsd(PUBLICATION_XSD)
        assert dtd.root == "publication"
        assert parse_xsd(PUBLICATION_XSD, root="author").root == "author"

    def test_choice_members_optional(self):
        text = """
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="a">
            <xs:complexType>
              <xs:choice>
                <xs:element name="b" type="xs:string"/>
                <xs:element name="c" type="xs:string"/>
              </xs:choice>
            </xs:complexType>
          </xs:element>
        </xs:schema>
        """
        dtd = parse_xsd(text)
        assert dtd.get("a").children["b"].may_be_absent
        assert dtd.get("a").children["c"].may_be_absent

    def test_repeated_choice_is_star(self):
        text = """
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="a">
            <xs:complexType>
              <xs:choice maxOccurs="unbounded">
                <xs:element name="b" type="xs:string"/>
              </xs:choice>
            </xs:complexType>
          </xs:element>
        </xs:schema>
        """
        dtd = parse_xsd(text)
        assert dtd.get("a").children["b"] is Cardinality.STAR

    @pytest.mark.parametrize(
        "bad",
        [
            "<root/>",
            "<xs:schema xmlns:xs='x'></xs:schema>",
        ],
    )
    def test_invalid_schemas(self, bad):
        with pytest.raises(SchemaError):
            parse_xsd(bad)

    def test_bad_occurs(self):
        text = """
        <xs:schema xmlns:xs="x">
          <xs:element name="a"><xs:complexType><xs:sequence>
            <xs:element name="b" minOccurs="lots"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>
        """
        with pytest.raises(SchemaError):
            parse_xsd(text)


class TestPropertyReasoningViaXsd:
    """Sec. 3.7 works the same whether the schema came as DTD or XSD."""

    def test_same_verdicts_as_dtd(self):
        dtd = parse_xsd(PUBLICATION_XSD)
        assert axis_disjointness(
            dtd, "publication", parse_path("author/name")
        ) is PropertyVerdict.FAILS
        assert axis_coverage(
            dtd, "publication", parse_path("publisher")
        ) is PropertyVerdict.FAILS
        assert axis_coverage(
            dtd, "publication", parse_path("year")
        ) is PropertyVerdict.HOLDS
        assert axis_disjointness(
            dtd, "publication", parse_path("year")
        ) is PropertyVerdict.HOLDS
