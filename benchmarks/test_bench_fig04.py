"""Fig. 4 — sparse cubes, 10^4 input trees, coverage fails / disjointness
holds.  Benchmarks each algorithm at the 4-axis configuration (scaled to
the small population the figure uses relative to Fig. 5) and asserts the
figure's shape.
"""

import pytest

from benchmarks.conftest import bench_once

ALGORITHMS = ["COUNTER", "BUC", "BUCOPT", "TD", "TDOPT"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig4_algorithm(benchmark, sparse_nocov_disj_small, algorithm):
    result = bench_once(
        benchmark, lambda: sparse_nocov_disj_small.run(algorithm)
    )
    benchmark.extra_info["simulated_seconds"] = result.simulated_seconds
    benchmark.extra_info["cells"] = result.total_cells()
    assert result.total_cells() > 0


def test_fig4_shape(sparse_nocov_disj_small):
    """BUC family lowest; TD family blows up; TDOPT between TD and BUC."""
    sim = {
        name: sparse_nocov_disj_small.simulated(name) for name in ALGORITHMS
    }
    assert sim["BUC"] < sim["TD"]
    assert sim["BUCOPT"] <= sim["BUC"]
    assert sim["TDOPT"] < sim["TD"]
    assert sim["BUC"] < sim["TDOPT"]
