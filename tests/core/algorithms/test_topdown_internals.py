"""Unit tests for the top-down family's internal helpers."""

from repro.core.algorithms.topdown import (
    _pick_source,
    _rigid_twin,
    _sortable,
)
from repro.datagen.publications import query1


def lattice():
    return query1().lattice()


class TestSortable:
    def test_orders_none_first(self):
        keys = [("b", None), (None, "a"), ("a", "a"), (None, None)]
        ordered = sorted(keys, key=_sortable)
        assert ordered[0] == (None, None)
        assert ordered[-1] == ("b", None)

    def test_total_order_on_mixed(self):
        keys = [("x",), (None,), ("a",)]
        assert sorted(keys, key=_sortable) == [(None,), ("a",), ("x",)]


class TestRigidTwin:
    def test_identity_for_rigid_points(self):
        lat = lattice()
        assert _rigid_twin(lat, lat.top) == lat.top
        assert _rigid_twin(lat, lat.bottom) == lat.bottom

    def test_structural_states_collapse(self):
        lat = lattice()
        point = lat.point_by_description("$n:PC-AD+SP, $p:PC-AD, $y:rigid")
        twin = _rigid_twin(lat, point)
        assert twin == lat.top

    def test_drops_preserved(self):
        lat = lattice()
        point = lat.point_by_description("$n:PC-AD, $p:LND, $y:rigid")
        twin = _rigid_twin(lat, point)
        assert twin == lat.point_by_description(
            "$n:rigid, $p:LND, $y:rigid"
        )


class TestPickSource:
    def test_requires_matching_states(self):
        lat = lattice()
        target = lat.point_by_description("$n:PC-AD, $p:LND, $y:LND")
        wrong_state = lat.point_by_description(
            "$n:rigid, $p:rigid, $y:rigid"
        )
        computed = {wrong_state: {("a", "b", "c"): object()}}
        assert _pick_source(lat, computed, target) is None

    def test_prefers_smaller_cuboid(self):
        lat = lattice()
        target = lat.point_by_description("$n:LND, $p:LND, $y:rigid")
        big = lat.point_by_description("$n:rigid, $p:rigid, $y:rigid")
        small = lat.point_by_description("$n:LND, $p:rigid, $y:rigid")
        computed = {
            big: {(f"k{i}", "p", "y"): object() for i in range(10)},
            small: {("p", "y"): object()},
        }
        assert _pick_source(lat, computed, target) == small

    def test_candidate_must_be_finer(self):
        lat = lattice()
        target = lat.point_by_description("$n:rigid, $p:LND, $y:rigid")
        coarser = lat.point_by_description("$n:rigid, $p:LND, $y:LND")
        computed = {coarser: {("n",): object()}}
        assert _pick_source(lat, computed, target) is None

    def test_self_excluded(self):
        lat = lattice()
        point = lat.top
        computed = {point: {}}
        assert _pick_source(lat, computed, point) is None
