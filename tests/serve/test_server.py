"""Integration tests for :class:`repro.serve.CubeServer`.

The contract under test throughout: every answer the server produces —
whatever tier resolved it, whatever writes happened before it — is
bit-identical to a serial NAIVE recomputation over the table rows at
the version reported with the answer.
"""

import threading

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.bindings import FactTable
from repro.core.cube import ExecutionOptions, compute_cube
from repro.core.incremental import IncrementalCube, split_rows
from repro.core.rollup import derivable
from repro.errors import CubeError
from repro.serve import CubeServer, TIERS
from repro.testing import messy_workload, small_workload


def fresh(**overrides):
    workload = small_workload(**overrides)
    table = workload.fact_table()
    return table, workload.oracle(table)


def reference_cuboid(table, rows, point):
    """Serial NAIVE recompute of one cuboid over the given rows."""
    snapshot = FactTable(table.lattice, list(rows), table.aggregate)
    result = compute_cube(
        snapshot, ExecutionOptions(algorithm="NAIVE", points=(point,))
    )
    return result.cuboids[point]


def with_aggregate(table, function):
    spec = (
        AggregateSpec()
        if function == "COUNT"
        else AggregateSpec(function, "@m")
    )
    return FactTable(table.lattice, list(table.rows), aggregate=spec)


def assert_serves_exactly(server, table):
    for point in table.lattice.points():
        expected = reference_cuboid(table, table.rows, point)
        assert server.cuboid(point) == expected, table.lattice.describe(
            point
        )


class TestBitIdentity:
    def test_cold_server(self):
        table, oracle = fresh()
        assert_serves_exactly(CubeServer(table, oracle), table)

    def test_all_tiers_mixed(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle, cache_cells=64, view_cells=40)
        for _ in range(3):  # repeats route through cache/view/rollup
            assert_serves_exactly(server, table)

    def test_zero_cache(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle, cache_cells=0)
        assert_serves_exactly(server, table)
        assert server.stats().tiers["recompute"] == server.stats().requests

    def test_messy_workload_no_unsound_rollups(self):
        workload = messy_workload()
        table = workload.fact_table()
        server = CubeServer(table, workload.oracle(table))
        for _ in range(2):
            assert_serves_exactly(server, table)
        assert server.stats().tiers["rollup"] == 0

    @pytest.mark.parametrize("function", ["SUM", "MIN", "MAX", "AVG"])
    def test_other_aggregates(self, function):
        table, oracle = fresh(n_facts=40)
        table = with_aggregate(table, function)
        server = CubeServer(table, oracle)
        for _ in range(2):
            assert_serves_exactly(server, table)

    def test_after_warm(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle, cache_cells=4096)
        warmed = server.warm()
        assert warmed
        assert_serves_exactly(server, table)

    def test_parallel_recompute_options(self):
        table, oracle = fresh()
        server = CubeServer(
            table,
            oracle,
            options=ExecutionOptions(workers=2, engine="thread"),
        )
        assert_serves_exactly(server, table)


class TestLadder:
    def test_second_request_hits_cache(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.top
        server.cuboid(point)
        server.cuboid(point)
        tiers = server.stats().tiers
        assert tiers["recompute"] == 1 and tiers["cache"] == 1

    def test_views_answer_view_tier(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle, view_cells=600)
        assert server.selection is not None and server.selection.chosen
        view_point = server.selection.chosen[0]
        server.cuboid(view_point)
        assert server.stats().tiers["view"] == 1

    def test_rollup_tier_derives_from_cached_finer(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        finest = table.lattice.top
        server.cuboid(finest)
        coarser = next(
            point
            for point in table.lattice.topo_finer_first()
            if point != finest
            and derivable(table.lattice, finest, point, oracle)[0]
        )
        cuboid = server.cuboid(coarser)
        assert server.stats().tiers["rollup"] == 1
        assert cuboid == reference_cuboid(table, table.rows, coarser)

    def test_pessimistic_oracle_never_rolls_up(self):
        table, _ = fresh()
        server = CubeServer(table, oracle=None)
        for point in table.lattice.points():
            server.cuboid(point)
        assert server.stats().tiers["rollup"] == 0

    def test_incremental_tier(self):
        table, _ = fresh()
        cube = IncrementalCube(table)
        server = CubeServer(
            table, oracle=None, cache_cells=0, incremental=cube
        )
        point = table.lattice.top
        assert server.cuboid(point) == reference_cuboid(
            table, table.rows, point
        )
        assert server.stats().tiers["incremental"] == 1
        assert server.stats().tiers["recompute"] == 0

    def test_tier_names_are_stable(self):
        assert TIERS == (
            "cache",
            "view",
            "rollup",
            "incremental",
            "recompute",
        )


class TestQuerySurface:
    def test_resolve_by_description(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        description = table.lattice.describe(table.lattice.top)
        assert server.cuboid(description) == server.cuboid(
            table.lattice.top
        )

    def test_cell(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.top
        cuboid = server.cuboid(point)
        key = next(iter(cuboid))
        assert server.cell(point, key) == cuboid[key]
        assert server.cell(point, ("no", "such", "key")) is None

    def test_slice_restricts_one_axis(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.top
        cuboid = server.cuboid(point)
        value = next(iter(cuboid))[0]
        sliced = server.slice(point, 0, value)
        assert sliced == {
            key[1:]: cell
            for key, cell in cuboid.items()
            if key[0] == value
        }

    def test_dice_restricts_many_axes(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.top
        cuboid = server.cuboid(point)
        key = next(iter(cuboid))
        diced = server.dice(point, {0: [key[0]], 1: [key[1]]})
        assert key in diced
        assert all(
            k[0] == key[0] and k[1] == key[1] for k in diced
        )

    def test_unknown_point_rejected(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        with pytest.raises(CubeError):
            server.cuboid((99, 99, 99))

    def test_returned_cuboids_are_copies(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.top
        first = server.cuboid(point)
        first[("tampered",)] = 1.0
        assert ("tampered",) not in server.cuboid(point)


class TestConstruction:
    def test_points_option_is_reserved(self):
        table, oracle = fresh()
        with pytest.raises(CubeError):
            CubeServer(
                table,
                oracle,
                options=ExecutionOptions(
                    points=(table.lattice.top,)
                ),
            )

    def test_incremental_must_share_table(self):
        table, _ = fresh()
        other, _ = fresh(seed=11)
        with pytest.raises(CubeError):
            CubeServer(table, incremental=IncrementalCube(other))


class TestWarm:
    def test_warm_fills_cache_within_budget(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle, cache_cells=4096)
        warmed = server.warm()
        assert warmed
        assert server.cache.used_cells <= 4096
        for point in warmed:
            assert point in server.cache

    def test_warmed_requests_avoid_recompute(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle, cache_cells=100000)
        server.warm()
        assert_serves_exactly(server, table)
        stats = server.stats()
        assert stats.tiers["recompute"] == 0
        assert stats.hit_rate == 1.0
        assert stats.modeled_speedup > 1.0

    def test_warm_respects_explicit_budget(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle, cache_cells=100000)
        sizes = server.sizes()
        smallest = min(sizes.values())
        warmed = server.warm(budget_cells=smallest)
        assert sum(sizes[point] for point in warmed) <= smallest


class TestWrites:
    @pytest.mark.parametrize(
        "function", ["COUNT", "SUM", "MIN", "MAX", "AVG"]
    )
    def test_insert_stays_exact(self, function):
        table, oracle = fresh(n_facts=60)
        table = with_aggregate(table, function)
        initial, delta = split_rows(table, 0.7)
        live = FactTable(table.lattice, list(initial), table.aggregate)
        server = CubeServer(live, oracle)
        assert_serves_exactly(server, live)  # populate the cache
        server.insert(delta)
        assert_serves_exactly(server, live)

    @pytest.mark.parametrize("function", ["COUNT", "SUM", "AVG"])
    def test_delete_stays_exact(self, function):
        table, oracle = fresh(n_facts=60)
        table = with_aggregate(table, function)
        keep, churn = split_rows(table, 0.7)
        live = FactTable(table.lattice, list(table.rows), table.aggregate)
        server = CubeServer(live, oracle)
        assert_serves_exactly(server, live)
        server.delete(list(churn))
        assert_serves_exactly(server, live)

    def test_count_insert_patches_instead_of_evicting(self):
        table, oracle = fresh(n_facts=60)
        initial, delta = split_rows(table, 0.7)
        live = FactTable(table.lattice, list(initial), table.aggregate)
        server = CubeServer(live, oracle)
        assert_serves_exactly(server, live)
        cached_before = len(server.cache)
        server.insert(delta)
        stats = server.stats()
        assert stats.patched_points > 0
        assert stats.evicted_points == 0
        assert len(server.cache) == cached_before

    def test_sum_delete_evicts_affected(self):
        table, oracle = fresh(n_facts=60)
        table = with_aggregate(table, "SUM")
        live = FactTable(table.lattice, list(table.rows), table.aggregate)
        server = CubeServer(live, oracle)
        assert_serves_exactly(server, live)
        server.delete(list(table.rows[:5]))
        stats = server.stats()
        assert stats.evicted_points > 0
        assert stats.patched_points == 0

    def test_writes_bump_version(self):
        table, oracle = fresh(n_facts=40)
        initial, delta = split_rows(table, 0.5)
        live = FactTable(table.lattice, list(initial), table.aggregate)
        server = CubeServer(live, oracle)
        assert server.version == 0
        assert server.insert(delta[:1]) == 1
        assert server.delete(delta[:1]) == 2
        assert server.version == 2

    def test_views_follow_writes(self):
        table, oracle = fresh(n_facts=60)
        initial, delta = split_rows(table, 0.7)
        live = FactTable(table.lattice, list(initial), table.aggregate)
        server = CubeServer(live, oracle, view_cells=600)
        assert server.selection is not None and server.selection.chosen
        server.insert(delta)
        assert_serves_exactly(server, live)

    def test_delete_unknown_row_rejected(self):
        table, oracle = fresh(n_facts=40)
        initial, delta = split_rows(table, 0.5)
        live = FactTable(table.lattice, list(initial), table.aggregate)
        server = CubeServer(live, oracle)
        with pytest.raises(CubeError):
            server.delete(delta[:1])  # never inserted

    def test_routed_through_incremental(self):
        table, oracle = fresh(n_facts=60)
        initial, delta = split_rows(table, 0.7)
        live = FactTable(table.lattice, list(initial), table.aggregate)
        cube = IncrementalCube(live)
        server = CubeServer(live, oracle, incremental=cube)
        applied_before = cube.applied_rows
        server.insert(delta)
        assert cube.applied_rows == applied_before + len(delta)
        assert_serves_exactly(server, live)
        server.delete(delta)
        assert_serves_exactly(server, live)


class TestConcurrency:
    def test_stampede_recomputes_once(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.top
        release = threading.Event()
        original = server._recompute

        def gated(rows, target, publish=None):
            assert release.wait(timeout=5.0)
            return original(rows, target, publish)

        server._recompute = gated
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(server.cuboid(point))
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for _ in range(2000):
            if server._flight.shared_total == 3:
                break
            threading.Event().wait(0.005)
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        expected = reference_cuboid(table, table.rows, point)
        assert results == [expected] * 4
        assert server.stats().singleflight_led == 1
        assert server.stats().singleflight_shared == 3
        assert server.stats().tiers["recompute"] == 4

    def test_overtaken_recompute_not_admitted(self):
        table, oracle = fresh(n_facts=60)
        initial, delta = split_rows(table, 0.8)
        live = FactTable(table.lattice, list(initial), table.aggregate)
        server = CubeServer(live, oracle)
        point = live.lattice.top
        release = threading.Event()
        entered = threading.Event()
        original = server._recompute

        def gated(rows, target, publish=None):
            entered.set()
            assert release.wait(timeout=5.0)
            return original(rows, target, publish)

        server._recompute = gated
        outcome = {}

        def read():
            outcome["cuboid"], outcome["version"] = (
                server.cuboid_versioned(point)
            )

        reader = threading.Thread(target=read)
        reader.start()
        assert entered.wait(timeout=5.0)
        server.insert(delta)  # overtakes the in-flight recompute
        release.set()
        reader.join(timeout=10.0)

        # Correct for the snapshot it started from...
        assert outcome["version"] == 0
        assert outcome["cuboid"] == reference_cuboid(
            live, initial, point
        )
        # ...but never admitted: the next read recomputes fresh.
        server._recompute = original
        assert server.cuboid(point) == reference_cuboid(
            live, live.rows, point
        )


class TestStats:
    def test_summary_mentions_tiers_and_costs(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.top
        server.cuboid(point)
        server.cuboid(point)
        text = server.stats().summary()
        assert "2 requests" in text
        assert "cache=1" in text and "recompute=1" in text
        assert "hit rate 50%" in text

    def test_modeled_cost_below_cold_on_hits(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.top
        for _ in range(5):
            server.cuboid(point)
        stats = server.stats()
        assert stats.modeled_cost_seconds < stats.cold_cost_seconds
        assert stats.modeled_speedup > 1.0

    def test_empty_server_stats(self):
        table, oracle = fresh()
        stats = CubeServer(table, oracle).stats()
        assert stats.requests == 0
        assert stats.hit_rate == 0.0
        assert stats.version == 0
