"""Metrics parity: the registry's totals equal the cost model's counters.

The registry absorbs the run's final merged cost snapshot, so for both
the serial and the parallel engine the unified counters must equal the
``CubeResult.cost`` numbers exactly — no double counting across workers,
no lost partitions.
"""

import pytest

from repro.core.cube import ExecutionOptions, compute_cube
from repro.testing import small_workload
from repro.timber.database import TimberDB
from repro import obs

PARITY_FIELDS = (
    ("cpu_ops", "x3_cost_cpu_ops_total"),
    ("page_reads", "x3_cost_page_reads_total"),
    ("page_writes", "x3_cost_page_writes_total"),
    ("buffer_hits", "x3_buffer_hits_total"),
    ("buffer_misses", "x3_buffer_misses_total"),
)


def _assert_parity(result):
    registry = result.trace.metrics
    cost = result.cost.as_dict()
    for field, metric in PARITY_FIELDS:
        assert registry.total(metric) == pytest.approx(
            float(cost.get(field, 0.0))
        ), f"{metric} != cost.{field}"
    assert registry.total(
        "x3_cost_simulated_seconds_total"
    ) == pytest.approx(result.cost.simulated_seconds)


@pytest.mark.parametrize("algorithm", ["NAIVE", "COUNTER", "BUC", "TD"])
def test_serial_parity(algorithm):
    table = small_workload().fact_table()
    result = compute_cube(
        table, ExecutionOptions(algorithm=algorithm, trace=True)
    )
    _assert_parity(result)


@pytest.mark.parametrize("workers", [2, 3])
def test_parallel_parity(workers):
    table = small_workload().fact_table()
    result = compute_cube(
        table,
        ExecutionOptions(
            algorithm="BUC", workers=workers, engine="thread", trace=True
        ),
    )
    assert result.metrics is not None and result.metrics.engine == "thread"
    _assert_parity(result)


def test_process_engine_parity_and_span_propagation():
    """Process workers ship their span batches back on the outcome; the
    parent absorbs them into one coherent tree.  A forked child inherits
    the parent's enabled active tracer, so this exercises the pid-based
    local-tracer decision in ``_run_partition``.  Where the host cannot
    fork, the pool falls back to threads (RuntimeWarning) and the shared
    tracer path must produce the same tree shape."""
    import warnings

    table = small_workload().fact_table()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = compute_cube(
            table,
            ExecutionOptions(
                algorithm="BUC", workers=2, engine="process", trace=True
            ),
        )
    _assert_parity(result)
    trace = result.trace
    run = trace.spans_named("engine.run")[0]
    partitions = trace.spans_named("engine.partition")
    assert len(partitions) >= 2
    assert all(p.parent_id == run.span_id for p in partitions)
    ids = {s.span_id for s in trace.records}
    assert len(ids) == len(trace.records)
    assert all(
        s.parent_id is None or s.parent_id in ids for s in trace.records
    )
    assert "algorithm" in trace.categories()

    # Worker-local counters (sorts, phases) ride back on the outcome and
    # must match an identical thread run, where the shared registry sees
    # them directly.
    threaded = compute_cube(
        table,
        ExecutionOptions(
            algorithm="BUC", workers=2, engine="thread", trace=True
        ),
    )
    for name in ("x3_sorts_total", "x3_sorted_items_total"):
        assert trace.metrics.total(name) == pytest.approx(
            threaded.trace.metrics.total(name)
        ), name
    assert trace.metrics.total("x3_sorts_total") > 0


def test_parallel_matches_serial_costs():
    """Same totals whether the registry absorbed one or many partitions."""
    table = small_workload().fact_table()
    serial = compute_cube(
        table, ExecutionOptions(algorithm="TD", trace=True)
    )
    parallel = compute_cube(
        table,
        ExecutionOptions(
            algorithm="TD", workers=2, engine="thread", trace=True
        ),
    )
    assert serial.trace.metrics.total(
        "x3_cost_cpu_ops_total"
    ) == pytest.approx(serial.cost.cpu_ops)
    assert parallel.trace.metrics.total(
        "x3_cost_cpu_ops_total"
    ) == pytest.approx(parallel.cost.cpu_ops)


def test_timber_buffer_counters_parity():
    """A TimberDB workload with real page traffic: published buffer
    metrics equal the cost model's buffer counters."""
    from repro.datagen.publications import figure1_document

    with obs.trace() as tracer:
        db = TimberDB(buffer_pages=4)
        db.load(figure1_document(), name="parity")
        db.postings("publication")
        db.postings("name")
        db.publish_metrics()
    snapshot = db.cost.snapshot()
    registry = tracer.metrics
    assert snapshot["buffer_hits"] + snapshot["buffer_misses"] > 0
    assert registry.total("x3_buffer_hits_total") == snapshot["buffer_hits"]
    assert (
        registry.total("x3_buffer_misses_total")
        == snapshot["buffer_misses"]
    )
    assert (
        registry.total("x3_cost_page_reads_total")
        == snapshot["page_reads"]
    )
