"""Unit tests for the tree-pattern model."""

import pytest

from repro.errors import PatternError
from repro.patterns.pattern import EdgeAxis, PatternNode, TreePattern


def query1_pattern() -> TreePattern:
    root = PatternNode("publication", label="$fact")
    root.add(PatternNode("@id"))
    author = root.add(PatternNode("author"))
    author.add(PatternNode("name", label="$n"))
    publisher = root.add(
        PatternNode("publisher", axis=EdgeAxis.DESCENDANT)
    )
    publisher.add(PatternNode("@id", label="$p"))
    root.add(PatternNode("year", label="$y"))
    return TreePattern(root)


class TestPatternNode:
    def test_empty_test_rejected(self):
        with pytest.raises(PatternError):
            PatternNode("")

    def test_attribute_properties(self):
        node = PatternNode("@id")
        assert node.is_attribute
        assert node.attribute_name == "id"

    def test_attribute_cannot_have_children(self):
        node = PatternNode("@id")
        with pytest.raises(PatternError):
            node.add(PatternNode("x"))

    def test_add_rejects_attached(self):
        parent = PatternNode("a")
        child = PatternNode("b")
        parent.add(child)
        with pytest.raises(PatternError):
            PatternNode("c").add(child)

    def test_detach(self):
        parent = PatternNode("a")
        child = parent.add(PatternNode("b"))
        child.detach()
        assert parent.children == []
        assert child.parent is None

    def test_clone_is_deep(self):
        pattern = query1_pattern()
        clone = pattern.root.clone()
        clone.children[1].children[0].label = "$other"
        assert pattern.root.children[1].children[0].label == "$n"

    def test_signature_includes_flags(self):
        node = PatternNode("a", optional=True, label="$x")
        assert node.signature() == "a?=$x"


class TestTreePattern:
    def test_nodes_preorder(self):
        pattern = query1_pattern()
        tests = [node.test for node in pattern.nodes()]
        assert tests == [
            "publication", "@id", "author", "name", "publisher", "@id",
            "year",
        ]

    def test_labelled(self):
        labels = query1_pattern().labelled()
        assert set(labels) == {"$fact", "$n", "$p", "$y"}

    def test_duplicate_labels_rejected(self):
        root = PatternNode("a", label="$x")
        root.add(PatternNode("b", label="$x"))
        with pytest.raises(PatternError):
            TreePattern(root).labelled()

    def test_by_label_missing(self):
        with pytest.raises(PatternError):
            query1_pattern().by_label("$zz")

    def test_size_and_depth(self):
        pattern = query1_pattern()
        assert pattern.size() == 7
        assert pattern.depth() == 3

    def test_clone_equality(self):
        pattern = query1_pattern()
        assert pattern.clone() == pattern
        assert hash(pattern.clone()) == hash(pattern)

    def test_find(self):
        pattern = query1_pattern()
        attrs = pattern.find(lambda node: node.is_attribute)
        assert len(attrs) == 2

    def test_validate_passes(self):
        query1_pattern().validate()
