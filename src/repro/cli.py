"""The ``x3-cube`` command line tool: run an X^3 query over XML files.

Usage::

    x3-cube --query query.xq data1.xml data2.xml
    x3-cube --query query.xq data.xml --algorithm BUC --cuboid '$n:LND, $y:rigid'
    x3-cube --query query.xq data.xml --list-cuboids
    x3-cube --query query.xq data.xml --min-support 5 --top 20

The query file holds the paper's augmented FLWOR syntax (see Query 1 in
the README).  Without ``--cuboid``, the tool prints a summary plus the
finest and coarsest cuboids.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.cube import ENGINE_CHOICES, ExecutionOptions, compute_cube
from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.core.xq_parser import parse_x3_query
from repro.errors import X3Error
from repro.xmlmodel.parser import parse_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-cube",
        description="Compute an X^3 cube (ICDE 2007) over XML files.",
    )
    parser.add_argument("files", nargs="+", help="XML input files")
    parser.add_argument(
        "--query", required=True, help="file holding the X^3 FLWOR text"
    )
    parser.add_argument(
        "--algorithm",
        default="BUC",
        help="cube algorithm (default BUC; see x3-bench for the line-up)",
    )
    parser.add_argument(
        "--cuboid",
        action="append",
        metavar="DESC",
        help=(
            "print a specific cuboid, e.g. '$n:LND, $p:rigid, $y:rigid'; "
            "repeatable"
        ),
    )
    parser.add_argument(
        "--list-cuboids",
        action="store_true",
        help="list every lattice point and its group count",
    )
    parser.add_argument(
        "--min-support",
        type=float,
        default=0.0,
        help="iceberg threshold (COUNT cubes only)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows shown per printed cuboid (default 10)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker pool size for the parallel engine (default 1:"
        " serial execution)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="execution engine (default auto: serial for 1 worker,"
        " thread pool otherwise)",
    )
    parser.add_argument(
        "--properties",
        action="store_true",
        help="report observed summarizability per axis",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the run (parse, storage, algorithm, engine spans) and"
        " print a span summary plus metric totals",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="with --profile: also write a Chrome trace_event JSON file"
        " (load it in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        help="also write the full cube as an XML document",
    )
    return parser


def _print_cuboid(lattice, cube, description: str, top: int) -> None:
    point = lattice.point_by_description(description)
    cuboid = cube.cuboid(point)
    print(f"-- {lattice.describe(point)} ({len(cuboid)} groups)")
    rows = sorted(cuboid.items(), key=lambda item: (-item[1], item[0]))
    for key, value in rows[:top]:
        label = ", ".join(part if part is not None else "-" for part in key)
        print(f"   ({label}): {value:g}")
    if len(rows) > top:
        print(f"   ... {len(rows) - top} more")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro import obs

    session = obs.trace() if args.profile else None
    tracer = session.__enter__() if session is not None else None
    try:
        with open(args.query, "r", encoding="utf-8") as handle:
            query = parse_x3_query(handle.read())
        docs = [parse_file(path) for path in args.files]
        table = extract_fact_table(docs, query)
    except (OSError, X3Error) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    lattice = table.lattice
    try:
        options = ExecutionOptions(
            algorithm=args.algorithm,
            min_support=args.min_support,
            workers=args.workers,
            engine=args.engine,
        )
        cube = compute_cube(table, options)
    except X3Error as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if session is not None:
            session.__exit__(None, None, None)

    print(
        f"{len(table)} facts, {lattice.size()} cuboids, "
        f"{cube.total_cells()} cells "
        f"[{cube.algorithm}, {cube.simulated_seconds:.3f} sim-s]"
    )
    if cube.metrics is not None and cube.metrics.engine != "serial":
        print(f"   {cube.metrics.summary()}")
        print(
            f"   modeled speedup {cube.cost.speedup_estimate:.2f}x "
            f"({cube.cost.simulated_seconds:.3f} sim-s total work, "
            f"{cube.cost.parallel_simulated_seconds:.3f} sim-s critical"
            f" path)"
        )

    if tracer is not None:
        report = tracer.trace()
        print("profile (top spans by wall time):")
        for line in report.summary(top=args.top).splitlines():
            print(f"   {line}")
        totals = [
            ("cpu ops", report.metrics.total("x3_cost_cpu_ops_total")),
            ("page reads", report.metrics.total("x3_cost_page_reads_total")),
            ("page writes", report.metrics.total("x3_cost_page_writes_total")),
            ("sorts", report.metrics.total("x3_sorts_total")),
        ]
        print(
            "profile totals: "
            + ", ".join(f"{label} {value:g}" for label, value in totals)
        )
        if args.trace_out:
            report.write_chrome(args.trace_out)
            print(f"wrote Chrome trace to {args.trace_out}")
    elif args.trace_out:
        print("error: --trace-out requires --profile", file=sys.stderr)
        return 1

    if args.properties:
        oracle = PropertyOracle.from_data(table)
        print("observed summarizability per axis (rigid state):")
        for position, states in enumerate(lattice.axis_states):
            print(
                f"   {states.axis.name}: "
                f"disjoint={oracle.axis_disjoint(position, states.rigid_index)} "
                f"covered={oracle.axis_covered(position, states.rigid_index)}"
            )

    if args.export:
        from repro.core.export import cube_to_xml

        with open(args.export, "w", encoding="utf-8") as handle:
            handle.write(cube_to_xml(cube, query=query))
        print(f"wrote cube to {args.export}")

    if args.list_cuboids:
        for point in lattice.topo_finer_first():
            print(
                f"   {lattice.describe(point)}: "
                f"{len(cube.cuboids[point])} groups"
            )
        return 0

    descriptions = args.cuboid or [
        lattice.describe(lattice.top),
        lattice.describe(lattice.bottom),
    ]
    for description in descriptions:
        try:
            _print_cuboid(lattice, cube, description, args.top)
        except KeyError as error:
            print(f"error: unknown cuboid {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
