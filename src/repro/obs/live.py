"""Live serving telemetry: sliding windows, SLO burn, hottest points.

The batch side of ``repro.obs`` aggregates counters after a run; this
module watches a *serving* session while it runs.  One
:class:`LiveTelemetry` instance absorbs every
:class:`~repro.obs.events.RequestEvent` and cache audit record the
server emits and maintains, per configured sliding window:

- streaming latency quantiles (p50/p95/p99) on both time bases —
  modeled simulated seconds (host-independent, the same scale the
  bench figures use) and wall seconds;
- the hit ratio (requests answered above the recompute rung);
- eviction churn (cache-state changes inside the window);
- SLO burn: the fraction of requests over the latency threshold,
  scaled by the error budget ``1 - slo_target`` (a burn rate of 1.0
  spends the budget exactly; above 1.0 the SLO is burning down).

Everything is mirrored into a :class:`~repro.obs.metrics.MetricsRegistry`
— cumulative histograms per ladder rung plus per-window gauges — so the
existing Prometheus exporter (:func:`repro.obs.export.prometheus_text`)
serves the numbers without new plumbing.  The clock is injectable, so
tests drive the windows deterministically.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import EvictionRecord, RequestEvent
from repro.obs.metrics import MetricsRegistry

#: Histogram bounds tuned to modeled serve latencies (cache touches sit
#: around 1e-5 simulated seconds; cold recomputes around 1e-2..1e0).
SERVE_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    float("inf"),
)

#: The quantiles every window reports.
WINDOW_QUANTILES: Tuple[float, ...] = (0.50, 0.95, 0.99)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    ordered = sorted(values)
    rank = math.ceil(q * len(ordered))
    return ordered[min(len(ordered), max(1, rank)) - 1]


@dataclass(frozen=True)
class Exemplar:
    """One trace exemplifying a latency-histogram bucket.

    The newest sampled request landing in each
    ``(tier, bucket bound)`` cell of the modeled-latency histogram is
    remembered by trace id, so a dashboard can jump from "the p99
    bucket is filling" straight to a concrete trace that landed there.
    """

    tier: str
    bucket_le: float  #: upper bound of the histogram bucket
    trace_id: str  #: 32-hex trace id
    modeled_seconds: float  #: the observed value


@dataclass(frozen=True)
class _Sample:
    """One request, reduced to what the windows need."""

    at: float  #: clock timestamp
    tier: str
    point: str
    modeled: float
    wall: float
    hit: bool  #: answered above the recompute rung


@dataclass(frozen=True)
class WindowSnapshot:
    """Everything one sliding window knows, frozen at a point in time."""

    window_seconds: float
    requests: int
    hit_ratio: float
    modeled_quantiles: Dict[float, float]  #: q -> modeled seconds
    wall_quantiles: Dict[float, float]  #: q -> wall seconds
    tiers: Dict[str, int]
    evictions: int  #: cache-state churn events inside the window
    slo_violations: int
    slo_burn_rate: float
    top_points: Tuple[Tuple[str, int], ...]  #: hottest points, desc.

    def quantile_label(self, q: float) -> str:
        return f"p{int(round(q * 100)):02d}"


class LiveTelemetry:
    """Streaming serving telemetry over configurable sliding windows.

    Args:
        windows: window lengths in clock seconds, shortest first.
        slo_modeled_seconds: per-request modeled-latency threshold the
            SLO promises to stay under.
        slo_target: fraction of requests that must meet the threshold
            (0.99 leaves a 1% error budget).
        registry: the metrics registry to mirror into; a private one is
            created when omitted.
        clock: monotonic time source (injectable for tests).
        top_k: hottest lattice points reported per window.
        max_samples: hard cap on retained samples, bounding memory even
            under traffic far faster than the longest window.
    """

    def __init__(
        self,
        windows: Sequence[float] = (60.0, 300.0),
        *,
        slo_modeled_seconds: float = 0.01,
        slo_target: float = 0.99,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        top_k: int = 5,
        max_samples: int = 65536,
    ) -> None:
        if not windows:
            raise ValueError("at least one window is required")
        if any(w <= 0 for w in windows):
            raise ValueError(f"window lengths must be positive: {windows}")
        if not 0.0 < slo_target < 1.0:
            raise ValueError(
                f"slo_target must be in (0, 1), got {slo_target}"
            )
        self.windows = tuple(sorted(windows))
        self.slo_modeled_seconds = slo_modeled_seconds
        self.slo_target = slo_target
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self.top_k = top_k
        self._max_samples = max_samples
        self._lock = threading.Lock()
        self._samples: Deque[_Sample] = deque(maxlen=max_samples)
        self._churn: Deque[Tuple[float, str]] = deque(maxlen=max_samples)
        self._exemplars: Dict[Tuple[str, float], Exemplar] = {}

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def record(self, event: RequestEvent) -> None:
        """Absorb one request event into windows and registry."""
        now = self._clock()
        hit = event.tier != "recompute"
        sample = _Sample(
            at=now,
            tier=event.tier,
            point=event.point,
            modeled=event.modeled_seconds,
            wall=event.wall_seconds,
            hit=hit,
        )
        with self._lock:
            self._samples.append(sample)
            if event.trace_id:
                for bound in SERVE_LATENCY_BUCKETS:
                    if event.modeled_seconds <= bound:
                        self._exemplars[(event.tier, bound)] = Exemplar(
                            tier=event.tier,
                            bucket_le=bound,
                            trace_id=event.trace_id,
                            modeled_seconds=event.modeled_seconds,
                        )
                        break
            self._prune(now)
        registry = self.registry
        registry.counter(
            "x3_serve_requests_total", tier=event.tier
        ).inc()
        registry.histogram(
            "x3_serve_request_modeled_seconds",
            buckets=SERVE_LATENCY_BUCKETS,
            tier=event.tier,
        ).observe(event.modeled_seconds)
        registry.histogram(
            "x3_serve_request_wall_seconds",
            buckets=SERVE_LATENCY_BUCKETS,
            tier=event.tier,
        ).observe(event.wall_seconds)
        if event.modeled_seconds > self.slo_modeled_seconds:
            registry.counter("x3_serve_slo_violations_total").inc()

    def record_eviction(self, record: EvictionRecord) -> None:
        """Absorb one cache audit record (churn gauge + counter)."""
        now = self._clock()
        with self._lock:
            self._churn.append((now, record.kind))
            self._prune(now)
        self.registry.counter(
            "x3_serve_cache_audit_total", kind=record.kind
        ).inc()

    def _prune(self, now: float) -> None:
        """Drop samples older than the longest window (lock held)."""
        horizon = now - self.windows[-1]
        while self._samples and self._samples[0].at < horizon:
            self._samples.popleft()
        while self._churn and self._churn[0][0] < horizon:
            self._churn.popleft()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def snapshot(self, window_seconds: Optional[float] = None) -> WindowSnapshot:
        """Frozen stats for one window (default: the shortest)."""
        window = (
            self.windows[0] if window_seconds is None else window_seconds
        )
        now = self._clock()
        horizon = now - window
        with self._lock:
            samples = [s for s in self._samples if s.at >= horizon]
            churn = sum(1 for at, _ in self._churn if at >= horizon)
        modeled = [s.modeled for s in samples]
        walls = [s.wall for s in samples]
        tiers: Dict[str, int] = dict(Counter(s.tier for s in samples))
        hits = sum(1 for s in samples if s.hit)
        violations = sum(
            1 for m in modeled if m > self.slo_modeled_seconds
        )
        budget = 1.0 - self.slo_target
        burn = (
            (violations / len(samples)) / budget if samples else 0.0
        )
        hottest = Counter(s.point for s in samples).most_common(self.top_k)
        return WindowSnapshot(
            window_seconds=window,
            requests=len(samples),
            hit_ratio=(hits / len(samples)) if samples else 0.0,
            modeled_quantiles={
                q: percentile(modeled, q) for q in WINDOW_QUANTILES
            },
            wall_quantiles={
                q: percentile(walls, q) for q in WINDOW_QUANTILES
            },
            tiers=tiers,
            evictions=churn,
            slo_violations=violations,
            slo_burn_rate=burn,
            top_points=tuple(hottest),
        )

    def snapshots(self) -> List[WindowSnapshot]:
        """One snapshot per configured window, shortest first."""
        return [self.snapshot(window) for window in self.windows]

    def exemplars(self) -> List[Exemplar]:
        """The newest trace exemplar per (tier, latency bucket), in a
        stable (tier, bound) order.  Only sampled requests (those whose
        event carried a trace id) contribute."""
        with self._lock:
            return [
                self._exemplars[key]
                for key in sorted(self._exemplars.keys())
            ]

    # ------------------------------------------------------------------
    # registry export
    # ------------------------------------------------------------------
    def refresh_gauges(self) -> List[WindowSnapshot]:
        """Recompute every window and mirror it into gauge series.

        Called before scraping (``prometheus()``) so the exported
        gauges describe the windows *now*, not at the last request.
        Returns the snapshots so callers can reuse them for rendering.
        """
        snapshots = self.snapshots()
        registry = self.registry
        for snap in snapshots:
            label = f"{snap.window_seconds:g}s"
            for q in WINDOW_QUANTILES:
                registry.gauge(
                    "x3_serve_window_modeled_latency_seconds",
                    window=label,
                    quantile=snap.quantile_label(q),
                ).set(snap.modeled_quantiles[q])
                registry.gauge(
                    "x3_serve_window_wall_latency_seconds",
                    window=label,
                    quantile=snap.quantile_label(q),
                ).set(snap.wall_quantiles[q])
            registry.gauge(
                "x3_serve_window_requests", window=label
            ).set(float(snap.requests))
            registry.gauge(
                "x3_serve_window_hit_ratio", window=label
            ).set(snap.hit_ratio)
            registry.gauge(
                "x3_serve_window_eviction_churn", window=label
            ).set(float(snap.evictions))
            registry.gauge(
                "x3_serve_window_slo_burn_rate", window=label
            ).set(snap.slo_burn_rate)
        return snapshots
