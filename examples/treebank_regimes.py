#!/usr/bin/env python3
"""Summarizability regimes and algorithm choice (paper Sec. 4.6).

Generates controlled Treebank-style workloads for the paper's three
studied regimes, runs the applicable algorithms, and prints the
"which algorithm should I use?" summary the paper closes with:

- counter-based is optimal while the cube fits memory (low axes);
- bottom-up wins for sparse cubes / high dimensionality;
- top-down only pays off on dense cubes when summarizability holds.

Run:  python examples/treebank_regimes.py
"""

from repro.bench.harness import run_config
from repro.datagen.workload import WorkloadConfig

REGIMES = (
    ("coverage fails, disjointness holds", False, True,
     ("COUNTER", "BUC", "BUCOPT", "TD", "TDOPT")),
    ("both properties hold", True, True,
     ("COUNTER", "BUC", "BUCOPT", "TD", "TDOPTALL")),
    ("neither property holds", False, False,
     ("COUNTER", "BUC", "TD")),
)


def main() -> None:
    for density in ("sparse", "dense"):
        print(f"\n=== {density} cubes ===")
        for title, coverage, disjoint, algorithms in REGIMES:
            config = WorkloadConfig(
                kind="treebank",
                n_facts=400,
                n_axes=4,
                density=density,
                coverage=coverage,
                disjoint=disjoint,
            )
            runs = run_config(
                config, algorithms, memory_entries=4000, validate=True
            )
            print(f"\n  {title}:")
            winner = min(runs, key=lambda run: run.simulated_seconds)
            for run in runs:
                marker = "  <- fastest" if run is winner else ""
                wrong = "" if run.correct else "  [incorrect]"
                print(
                    f"    {run.algorithm:<9} {run.simulated_seconds:>8.3f}"
                    f" sim-s{wrong}{marker}"
                )

    print("\nSec. 4.6 take-away: summarizability together with cube")
    print("characteristics determine the choice of algorithm - unlike in")
    print("the relational world, the semantics of the cube dictates it.")


if __name__ == "__main__":
    main()
