"""Property-based tests for the XML substrate (parser round-trips,
region-encoding invariants)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel.nodes import Document, Element, validate_regions
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize

TAGS = st.sampled_from(["a", "b", "item", "x1", "ns:t", "_u"])
TEXTS = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x2FF
    ),
    max_size=8,
)
ATTR_VALUES = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
    max_size=8,
)


@st.composite
def random_element(draw, depth=0):
    element = Element(draw(TAGS))
    for name in draw(
        st.lists(st.sampled_from(["id", "k", "v"]), unique=True, max_size=2)
    ):
        element.attrs[name] = draw(ATTR_VALUES)
    text = draw(TEXTS)
    if text.strip():
        element.append_text(text)
    if depth < 3:
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            element.append(draw(random_element(depth=depth + 1)))
    return element


def shape(element):
    return (
        element.tag,
        tuple(sorted(element.attrs.items())),
        element.text,
        tuple(shape(child) for child in element.children),
    )


@given(random_element())
@settings(max_examples=80, deadline=None)
def test_serialize_parse_round_trip(element):
    doc = Document(element.detach())
    again = parse(serialize(doc))
    assert shape(doc.root) == shape(again.root)


@given(random_element())
@settings(max_examples=80, deadline=None)
def test_region_encoding_invariants(element):
    doc = Document(element.detach())
    validate_regions(doc)
    # start values strictly increase in document order.
    starts = [node.start for node in doc.elements]
    assert starts == sorted(starts)
    assert len(set(starts)) == len(starts)


@given(random_element())
@settings(max_examples=60, deadline=None)
def test_ancestor_test_matches_tree_walk(element):
    doc = Document(element.detach())
    nodes = doc.elements
    for anc in nodes[:8]:
        for desc in nodes[:8]:
            region_says = (
                anc.start < desc.start and desc.end <= anc.end
            )
            walk_says = any(node is anc for node in desc.iter_ancestors())
            assert region_says == walk_says


@given(random_element())
@settings(max_examples=60, deadline=None)
def test_pretty_serialization_reparses(element):
    doc = Document(element.detach())
    again = parse(serialize(doc, pretty=True))
    # Pretty output normalizes whitespace but preserves structure and
    # attribute content.
    def skeleton(node):
        return (
            node.tag,
            tuple(sorted(node.attrs.items())),
            tuple(skeleton(child) for child in node.children),
        )

    assert skeleton(doc.root) == skeleton(again.root)


@given(random_element())
@settings(max_examples=60, deadline=None)
def test_node_store_round_trip(element):
    """Loading into the node store preserves every element field."""
    from repro.timber.database import TimberDB

    doc = Document(element.detach())
    db = TimberDB()
    db.load(doc)
    for node in doc.elements:
        record = db.node(0, node.node_id)
        assert record.tag == node.tag
        assert record.text == node.text
        assert dict(record.attrs) == node.attrs
        assert record.region == (node.start, node.end, node.level)
