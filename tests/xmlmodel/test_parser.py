"""Unit tests for the hand-written XML parser."""

import pytest

from repro.errors import XmlParseError
from repro.xmlmodel.parser import parse


class TestBasics:
    def test_single_empty_element(self):
        doc = parse("<a/>")
        assert doc.root.tag == "a"
        assert doc.root.children == []

    def test_nested_elements(self):
        doc = parse("<a><b><c/></b><d/></a>")
        assert [node.tag for node in doc.root.iter_descendants()] == [
            "b", "c", "d",
        ]

    def test_text_content(self):
        doc = parse("<a>hello</a>")
        assert doc.root.text == "hello"

    def test_mixed_text_chunks(self):
        doc = parse("<a>one<b/>two</a>")
        assert doc.root.text == "onetwo"

    def test_attributes_double_and_single_quotes(self):
        doc = parse("""<a x="1" y='2'/>""")
        assert doc.root.attrs == {"x": "1", "y": "2"}

    def test_whitespace_in_tags(self):
        doc = parse("<a  x = \"1\" ><b /></a >")
        assert doc.root.attrs == {"x": "1"}
        assert doc.root.children[0].tag == "b"

    def test_namespaced_name_is_opaque(self):
        doc = parse("<ns:a><ns:b/></ns:a>")
        assert doc.root.tag == "ns:a"


class TestProlog:
    def test_xml_declaration(self):
        doc = parse('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert doc.root.tag == "a"

    def test_doctype_skipped(self):
        doc = parse('<!DOCTYPE a SYSTEM "a.dtd"><a/>')
        assert doc.root.tag == "a"

    def test_doctype_with_internal_subset(self):
        doc = parse("<!DOCTYPE a [<!ELEMENT a (b)*>]><a><b/></a>")
        assert doc.root.children[0].tag == "b"

    def test_leading_comment_and_pi(self):
        doc = parse("<!-- hi --><?pi data?><a/>")
        assert doc.root.tag == "a"

    def test_trailing_misc(self):
        doc = parse("<a/><!-- done -->")
        assert doc.root.tag == "a"


class TestEntitiesAndCdata:
    def test_predefined_entities(self):
        doc = parse("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert doc.root.text == "<&>\"'"

    def test_numeric_references(self):
        doc = parse("<a>&#65;&#x42;</a>")
        assert doc.root.text == "AB"

    def test_entities_in_attributes(self):
        doc = parse('<a x="&lt;&#33;"/>')
        assert doc.root.attrs["x"] == "<!"

    def test_cdata(self):
        doc = parse("<a><![CDATA[<not/>&parsed;]]></a>")
        assert doc.root.text == "<not/>&parsed;"

    def test_comment_inside_element(self):
        doc = parse("<a>x<!-- ignore -->y</a>")
        assert doc.root.text == "xy"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<a>&nope;</a>")

    def test_bad_char_reference_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<a>&#xZZ;</a>")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=1/>",
            "<a x></a>",
            '<a x="1" x="2"/>',
            "<a/><b/>",
            "<a><!-- unterminated </a>",
            "<a><![CDATA[open</a>",
            "<?xml version='1.0'<a/>",
            "<1tag/>",
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(XmlParseError):
            parse(text)

    def test_error_carries_position(self):
        try:
            parse("<a>\n  <b></c>\n</a>")
        except XmlParseError as error:
            assert error.line == 2
            assert "mismatched" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected XmlParseError")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<a/>junk")


class TestDocumentIntegration:
    def test_regions_assigned(self):
        doc = parse("<a><b/><c><d/></c></a>")
        starts = [node.start for node in doc.elements]
        assert starts == sorted(starts)
        assert doc.root.start == 0

    def test_document_name(self):
        doc = parse("<a/>", name="mine")
        assert doc.name == "mine"
