"""Unit tests for the x3-bench CLI."""

from repro.bench.runner import build_parser, main


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["--figure", "fig4"])
        assert args.figure == "fig4"

    def test_defaults(self):
        args = build_parser().parse_args(["--all"])
        assert args.scale == 1.0
        assert args.memory is None
        assert not args.validate


class TestMain:
    def test_no_selection_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_single_figure_runs(self, capsys):
        code = main(["--figure", "fig4", "--scale", "0.25", "--axes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "BUC" in out

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "runs.csv"
        code = main(
            [
                "--figure", "fig4", "--scale", "0.25", "--axes", "2",
                "--csv", str(target),
            ]
        )
        assert code == 0
        content = target.read_text()
        assert content.startswith("workload,algorithm")
        assert "BUC" in content


class TestScalingFlag:
    def test_scaling_runs(self, capsys, monkeypatch):
        from repro.bench import scaling as scaling_module

        original = scaling_module.run_scaling

        def tiny_scaling(**kwargs):
            return original(
                scales=(40, 80), n_axes=2,
                algorithms=("BUC",), memory_entries=2000,
            )

        monkeypatch.setattr(scaling_module, "run_scaling", tiny_scaling)
        assert main(["--scaling"]) == 0
        out = capsys.readouterr().out
        assert "scaling" in out
        assert "BUC" in out


class TestTraceOut:
    def test_figure_run_writes_chrome_trace(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.json"
        code = main(
            [
                "--figure", "fig4", "--scale", "0.25", "--axes", "2",
                "--trace-out", str(target),
            ]
        )
        assert code == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        document = json.loads(target.read_text())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert events
        categories = {e["cat"] for e in events}
        assert "algorithm" in categories and "engine" in categories
