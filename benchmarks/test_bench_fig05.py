"""Fig. 5 — sparse cubes, 10^5 input trees, coverage fails / disjointness
holds: the same setting as Fig. 4 at a larger scale.  Also covers
Sec. 4.4's scaling observation: optimized variants gain more at larger
scale.
"""

import pytest

from benchmarks.conftest import bench_once

ALGORITHMS = ["COUNTER", "BUC", "BUCOPT", "TD", "TDOPT"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_algorithm(benchmark, sparse_nocov_disj, algorithm):
    result = bench_once(benchmark, lambda: sparse_nocov_disj.run(algorithm))
    benchmark.extra_info["simulated_seconds"] = result.simulated_seconds
    assert result.total_cells() > 0


def test_fig5_shape(sparse_nocov_disj):
    sim = {name: sparse_nocov_disj.simulated(name) for name in ALGORITHMS}
    assert sim["BUC"] < sim["TD"]
    assert sim["BUCOPT"] <= sim["BUC"]
    assert sim["TDOPT"] < sim["TD"]


def test_scaling_fig4_vs_fig5(sparse_nocov_disj_small, sparse_nocov_disj):
    """Sec. 4.4: larger data sizes take proportionately longer, and the
    optimized variants' benefit grows with scale."""
    small_buc = sparse_nocov_disj_small.simulated("BUC")
    large_buc = sparse_nocov_disj.simulated("BUC")
    assert large_buc > small_buc

    small_gain = (
        sparse_nocov_disj_small.simulated("TD")
        - sparse_nocov_disj_small.simulated("TDOPT")
    )
    large_gain = (
        sparse_nocov_disj.simulated("TD")
        - sparse_nocov_disj.simulated("TDOPT")
    )
    assert large_gain > small_gain
