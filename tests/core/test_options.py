"""Unit tests for ExecutionOptions, the deprecation shim, CostSnapshot
dict-compat, and the CubeResult.diff union fix."""

import warnings

import pytest

from repro.core.cube import (
    CostSnapshot,
    ExecutionOptions,
    compute_cube,
)
from repro.errors import CubeError


class TestExecutionOptions:
    def test_frozen(self):
        opts = ExecutionOptions()
        with pytest.raises(Exception):
            opts.algorithm = "BUC"

    def test_points_normalized_to_tuple(self, fig1_table):
        opts = ExecutionOptions(points=[fig1_table.lattice.top])
        assert isinstance(opts.points, tuple)

    def test_replace(self):
        opts = ExecutionOptions(algorithm="BUC").replace(workers=4)
        assert opts.algorithm == "BUC"
        assert opts.workers == 4

    def test_validation(self):
        with pytest.raises(CubeError):
            ExecutionOptions(workers=0)
        with pytest.raises(CubeError):
            ExecutionOptions(engine="warp")
        with pytest.raises(CubeError):
            ExecutionOptions(partition_strategy="magic")


class TestComputeCubeShim:
    def test_options_positional_no_warning(self, fig1_table):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = compute_cube(
                fig1_table, ExecutionOptions(algorithm="NAIVE")
            )
        assert result.algorithm == "NAIVE"

    def test_options_keyword_no_warning(self, fig1_table):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = compute_cube(
                fig1_table, options=ExecutionOptions(algorithm="COUNTER")
            )
        assert result.algorithm == "COUNTER"

    def test_legacy_kwargs_warn_and_match(self, fig1_table):
        with pytest.warns(DeprecationWarning):
            legacy = compute_cube(
                fig1_table, "BUC", points=[fig1_table.lattice.top]
            )
        modern = compute_cube(
            fig1_table,
            ExecutionOptions(
                algorithm="BUC", points=(fig1_table.lattice.top,)
            ),
        )
        assert legacy.same_contents(modern)
        assert legacy.algorithm == modern.algorithm == "BUC"

    def test_legacy_min_support_preserved(self, fig1_table):
        with pytest.warns(DeprecationWarning):
            legacy = compute_cube(fig1_table, "NAIVE", min_support=2.0)
        modern = compute_cube(
            fig1_table, ExecutionOptions(min_support=2.0)
        )
        assert legacy.same_contents(modern)

    def test_bare_call_warns_but_defaults_to_naive(self, fig1_table):
        with pytest.warns(DeprecationWarning):
            result = compute_cube(fig1_table, "NAIVE")
        assert result.algorithm == "NAIVE"

    def test_legacy_call_warns_exactly_once_with_identical_results(
        self, fig1_table
    ):
        """One legacy call → exactly one DeprecationWarning, and the
        shim's result is indistinguishable from the options path."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = compute_cube(fig1_table, "BUC", min_support=1.0)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "ExecutionOptions" in str(deprecations[0].message)

        modern = compute_cube(
            fig1_table,
            ExecutionOptions(algorithm="BUC", min_support=1.0),
        )
        assert legacy.same_contents(modern)
        assert legacy.algorithm == modern.algorithm
        assert legacy.aggregate == modern.aggregate

    def test_mixing_options_and_legacy_rejected(self, fig1_table):
        with pytest.raises(CubeError):
            compute_cube(
                fig1_table,
                "BUC",
                options=ExecutionOptions(),
            )
        with pytest.raises(CubeError):
            compute_cube(
                fig1_table,
                ExecutionOptions(),
                min_support=1.0,
            )
        with pytest.raises(CubeError):
            compute_cube(
                fig1_table,
                ExecutionOptions(),
                options=ExecutionOptions(),
            )


class TestCostSnapshot:
    def test_attributes_primary(self, fig1_table):
        result = compute_cube(fig1_table, ExecutionOptions(algorithm="BUC"))
        assert isinstance(result.cost, CostSnapshot)
        assert result.cost.cpu_ops > 0
        assert result.cost.simulated_seconds > 0
        assert result.cost.wall_seconds > 0
        assert result.simulated_seconds == result.cost.simulated_seconds

    def test_dict_style_reads_warn_but_work(self, fig1_table):
        result = compute_cube(fig1_table, ExecutionOptions(algorithm="BUC"))
        with pytest.warns(DeprecationWarning):
            value = result.cost["simulated_seconds"]
        assert value == result.cost.simulated_seconds
        with pytest.warns(DeprecationWarning):
            assert result.cost.get("missing", 7.0) == 7.0
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                result.cost["no_such_counter"]

    def test_as_dict_for_csv(self):
        snapshot = CostSnapshot(cpu_ops=5, page_reads=2, simulated_seconds=0.5)
        flat = snapshot.as_dict()
        assert flat["cpu_ops"] == 5
        assert flat["page_reads"] == 2
        assert flat["simulated_seconds"] == 0.5
        assert "parallel_simulated_seconds" in flat

    def test_from_mapping_roundtrip(self):
        snapshot = CostSnapshot.from_mapping(
            {"cpu_ops": 3.0, "page_reads": 1.0, "simulated_seconds": 0.25},
            wall_seconds=0.1,
        )
        assert snapshot.cpu_ops == 3
        assert snapshot.wall_seconds == 0.1
        # Serial snapshots default the critical path to the total.
        assert snapshot.parallel_simulated_seconds == 0.25

    def test_dict_cost_coerced_on_cube_result(self, fig1_table):
        from repro.core.cube import CubeResult

        result = CubeResult(
            lattice=fig1_table.lattice,
            cuboids={},
            cost={"cpu_ops": 2.0, "simulated_seconds": 0.125},
        )
        assert isinstance(result.cost, CostSnapshot)
        assert result.cost.cpu_ops == 2


class TestDiffUnion:
    def test_diff_sees_points_only_in_other(self, fig1_table):
        full = compute_cube(fig1_table, ExecutionOptions())
        partial = compute_cube(
            fig1_table,
            ExecutionOptions(points=(fig1_table.lattice.top,)),
        )
        # partial -> full: the missing points exist only in `other`, which
        # the old implementation silently skipped.
        assert partial.diff(full)
        assert full.diff(partial)

    def test_diff_empty_for_identical(self, fig1_table):
        one = compute_cube(fig1_table, ExecutionOptions())
        two = compute_cube(fig1_table, ExecutionOptions(algorithm="BUC"))
        assert one.diff(two) == []
