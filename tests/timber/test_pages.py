"""Unit tests for the simulated disk pages."""

import pytest

from repro.errors import PageError
from repro.timber.pages import DEFAULT_PAGE_CAPACITY, Disk, Page


class TestPage:
    def test_capacity_positive(self):
        with pytest.raises(PageError):
            Page(0, capacity=0)

    def test_append_and_get(self):
        page = Page(0, capacity=2)
        assert page.append("a") == 0
        assert page.append("b") == 1
        assert page.get(0) == "a"
        assert len(page) == 2
        assert page.dirty

    def test_overflow(self):
        page = Page(0, capacity=1)
        page.append("a")
        assert page.full
        with pytest.raises(PageError):
            page.append("b")

    def test_bad_slot(self):
        page = Page(0)
        with pytest.raises(PageError):
            page.get(0)


class TestDisk:
    def test_allocate_sequential_ids(self):
        disk = Disk()
        first = disk.allocate()
        second = disk.allocate()
        assert (first.page_id, second.page_id) == (0, 1)
        assert len(disk) == 2

    def test_page_lookup(self):
        disk = Disk()
        page = disk.allocate()
        assert disk.page(0) is page
        with pytest.raises(PageError):
            disk.page(5)

    def test_last_page(self):
        disk = Disk()
        assert disk.last_page() is None
        page = disk.allocate()
        assert disk.last_page() is page

    def test_default_capacity(self):
        assert Disk().allocate().capacity == DEFAULT_PAGE_CAPACITY
