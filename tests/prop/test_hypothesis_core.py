"""Property-based tests on the cube core: random annotated fact tables
-> all correct algorithms agree; optimized algorithms agree exactly when
their property holds; extraction invariants hold on random documents."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axes import AxisSpec
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.cube import compute_cube
from repro.core.extract import extract_fact_table
from repro.core.lattice import CubeLattice
from repro.core.properties import PropertyOracle
from repro.core.query import X3Query
from repro.patterns.relaxation import Relaxation
from repro.xmlmodel.nodes import Document, Element

VALUES = ["v0", "v1", "v2"]


@st.composite
def random_fact_table(draw):
    """A random annotated fact table over 2 axes, one of which permits
    PC-AD (so masks matter)."""
    axes = [
        AxisSpec.from_path(
            "$a", "a", frozenset({Relaxation.LND, Relaxation.PC_AD})
        ),
        AxisSpec.from_path("$b", "b", frozenset({Relaxation.LND})),
    ]
    lattice = CubeLattice(axes)
    n_rows = draw(st.integers(min_value=0, max_value=12))
    rows = []
    for number in range(n_rows):
        # Axis $a has structural states [rigid, PC-AD]; a value's mask
        # must be upward-closed: rigid implies PC-AD.
        a_values = []
        for value in draw(
            st.lists(st.sampled_from(VALUES), unique=True, max_size=2)
        ):
            rigid = draw(st.booleans())
            mask = 0b11 if rigid else 0b10
            a_values.append(AnnotatedValue(value, mask))
        b_values = [
            AnnotatedValue(value, 0b1)
            for value in draw(
                st.lists(st.sampled_from(VALUES), unique=True, max_size=2)
            )
        ]
        rows.append(
            FactRow(
                fact_id=(0, number),
                measure=float(draw(st.integers(0, 5))),
                axes=(tuple(a_values), tuple(b_values)),
            )
        )
    return FactTable(lattice, rows)


@given(random_fact_table())
@settings(max_examples=50, deadline=None)
def test_always_correct_algorithms_agree(table):
    reference = compute_cube(table, "NAIVE")
    oracle = PropertyOracle.from_data(table)
    for name in ("COUNTER", "BUC", "TD", "BUCCUST", "TDCUST"):
        result = compute_cube(table, name, oracle=oracle)
        assert result.same_contents(reference), (
            name, result.diff(reference)[:3],
        )


@given(random_fact_table())
@settings(max_examples=50, deadline=None)
def test_optimized_agree_exactly_when_property_holds(table):
    reference = compute_cube(table, "NAIVE")
    oracle = PropertyOracle.from_data(table)
    if oracle.globally_disjoint():
        for name in ("BUCOPT", "TDOPT"):
            assert compute_cube(table, name).same_contents(reference), name
    if oracle.globally_disjoint() and oracle.globally_covered():
        # All-rigid masks only: structural twin assumption also safe when
        # every value binds rigidly.
        all_rigid = all(
            value.matches(0)
            for row in table.rows
            for value in row.axes[0]
        )
        if all_rigid:
            assert compute_cube(table, "TDOPTALL").same_contents(reference)


@given(random_fact_table())
@settings(max_examples=50, deadline=None)
def test_bottom_cuboid_counts_all_facts(table):
    cube = compute_cube(table, "NAIVE")
    bottom = cube.cuboids[table.lattice.bottom]
    if table.rows:
        fn = table.aggregate.fn
        state = fn.new()
        for row in table.rows:
            state = fn.add(state, row.measure)
        assert bottom == {(): fn.finalize(state)}
    else:
        assert bottom == {}


@given(random_fact_table())
@settings(max_examples=50, deadline=None)
def test_cuboid_totals_monotone_under_relaxation(table):
    """Relaxing (coarsening) never loses facts: the set of facts that
    participate grows along lattice edges."""
    for point in table.lattice.points():
        for succ in table.lattice.successors(point):
            for row in table.rows:
                if table.participates(row, point):
                    assert table.participates(row, succ)


# ----------------------------------------------------------------------
# extraction invariants on random documents
# ----------------------------------------------------------------------

@st.composite
def random_warehouse(draw):
    root = Element("w")
    for number in range(draw(st.integers(min_value=1, max_value=8))):
        fact = root.make_child("f", attrs={"id": str(number)})
        for tag in ("a", "b"):
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                holder = fact
                if draw(st.booleans()):
                    holder = fact.make_child("wrap")
                holder.make_child(tag, text=draw(st.sampled_from(VALUES)))
    return Document(root)


WAREHOUSE_QUERY = X3Query(
    fact_tag="f",
    axes=(
        AxisSpec.from_path(
            "$a", "a", frozenset({Relaxation.LND, Relaxation.PC_AD})
        ),
        AxisSpec.from_path("$b", "b", frozenset({Relaxation.LND})),
    ),
    fact_id_path="@id",
)


@given(random_warehouse())
@settings(max_examples=50, deadline=None)
def test_extraction_masks_upward_closed(doc):
    table = extract_fact_table(doc, WAREHOUSE_QUERY)
    for row in table.rows:
        for position, states in enumerate(table.lattice.axis_states):
            for value in row.axes[position]:
                for i, si in enumerate(states.states):
                    for j, sj in enumerate(states.states):
                        if si <= sj and value.matches(i):
                            assert value.matches(j)


@given(random_warehouse())
@settings(max_examples=50, deadline=None)
def test_extraction_rigid_values_subset_of_relaxed(doc):
    table = extract_fact_table(doc, WAREHOUSE_QUERY)
    for row in table.rows:
        rigid = set(row.values_under(0, 0))
        relaxed = set(row.values_under(0, 1))
        assert rigid <= relaxed
