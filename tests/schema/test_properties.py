"""Unit tests for Sec. 3.7 schema-based property reasoning."""

from repro.datagen.dblp import dblp_dtd
from repro.schema.dtd import Cardinality, Dtd
from repro.schema.properties import (
    PropertyVerdict,
    axis_coverage,
    axis_disjointness,
    path_cardinality,
    sp_equivalent,
)
from repro.xmlmodel.navigation import parse_path


def pub_dtd() -> Dtd:
    dtd = Dtd()
    dtd.declare_element(
        "publication",
        children=[
            ("author", Cardinality.STAR),
            ("publisher", Cardinality.OPTIONAL),
            ("year", Cardinality.ONE),
        ],
        attributes=["id"],
    )
    dtd.declare_element("author", children=[("name", Cardinality.ONE)])
    dtd.declare_element("name", has_text=True)
    dtd.declare_element("publisher")
    dtd.declare_element("year", has_text=True)
    dtd.get("publisher").attributes["id"] = type(
        dtd.get("publication").attributes["id"]
    )("id", required=True)
    return dtd


class TestPathCardinality:
    def test_mandatory_unique_child(self):
        card = path_cardinality(pub_dtd(), "publication", parse_path("year"))
        assert card is Cardinality.ONE

    def test_optional_child(self):
        card = path_cardinality(
            pub_dtd(), "publication", parse_path("publisher")
        )
        assert card is Cardinality.OPTIONAL

    def test_star_chain(self):
        card = path_cardinality(
            pub_dtd(), "publication", parse_path("author/name")
        )
        assert card is Cardinality.STAR

    def test_required_attribute(self):
        card = path_cardinality(
            pub_dtd(), "publication", parse_path("publisher/@id")
        )
        # publisher optional, @id required: whole path optional.
        assert card is Cardinality.OPTIONAL

    def test_undeclared_tag_unknown(self):
        assert (
            path_cardinality(pub_dtd(), "mystery", parse_path("x")) is None
        )

    def test_dead_path_optional(self):
        card = path_cardinality(pub_dtd(), "publication", parse_path("name"))
        assert card is Cardinality.OPTIONAL


class TestVerdicts:
    def test_disjointness_holds_for_year(self):
        verdict = axis_disjointness(
            pub_dtd(), "publication", parse_path("year")
        )
        assert verdict is PropertyVerdict.HOLDS

    def test_disjointness_fails_for_author(self):
        verdict = axis_disjointness(
            pub_dtd(), "publication", parse_path("author/name")
        )
        assert verdict is PropertyVerdict.FAILS

    def test_coverage_fails_for_publisher(self):
        verdict = axis_coverage(
            pub_dtd(), "publication", parse_path("publisher")
        )
        assert verdict is PropertyVerdict.FAILS

    def test_coverage_holds_for_year(self):
        verdict = axis_coverage(pub_dtd(), "publication", parse_path("year"))
        assert verdict is PropertyVerdict.HOLDS

    def test_unknown_for_undeclared(self):
        verdict = axis_coverage(pub_dtd(), "alien", parse_path("x"))
        assert verdict is PropertyVerdict.UNKNOWN


class TestSpEquivalence:
    def test_every_name_goes_through_author(self):
        # Sec. 3.7's example: //publication/author/name has the same
        # coverage as //publication//name when all paths go via author.
        assert sp_equivalent(pub_dtd(), "publication", "author", "name")

    def test_not_equivalent_with_second_route(self):
        dtd = pub_dtd()
        dtd.get("publisher").children["name"] = Cardinality.ONE
        assert not sp_equivalent(dtd, "publication", "author", "name")


class TestDblpVerdicts:
    def test_paper_facts(self):
        dtd = dblp_dtd()
        checks = {
            "author": (PropertyVerdict.FAILS, PropertyVerdict.FAILS),
            "month": (PropertyVerdict.HOLDS, PropertyVerdict.FAILS),
            "year": (PropertyVerdict.HOLDS, PropertyVerdict.HOLDS),
            "journal": (PropertyVerdict.HOLDS, PropertyVerdict.HOLDS),
        }
        for tag, (disjoint, coverage) in checks.items():
            steps = parse_path(tag)
            assert axis_disjointness(dtd, "article", steps) is disjoint
            assert axis_coverage(dtd, "article", steps) is coverage
