"""XML data model: nodes, parsing, serialization, navigation.

This subpackage is the base substrate for everything else.  It provides a
small, self-contained XML tree model with the *region encoding*
``(start, end, level)`` used by native XML databases (TIMBER-style) to
support structural joins, plus a hand-written parser for the XML subset we
need and a serializer that round-trips with it.

The public surface:

- :class:`~repro.xmlmodel.nodes.Element`, :class:`~repro.xmlmodel.nodes.Document`
- :func:`~repro.xmlmodel.parser.parse` / :func:`~repro.xmlmodel.parser.parse_file`
- :func:`~repro.xmlmodel.serializer.serialize`
- navigation helpers in :mod:`repro.xmlmodel.navigation`
"""

from repro.xmlmodel.nodes import Document, Element
from repro.xmlmodel.parser import parse, parse_file
from repro.xmlmodel.serializer import serialize

__all__ = ["Document", "Element", "parse", "parse_file", "serialize"]
