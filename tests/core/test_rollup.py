"""Unit tests for query-time roll-up and summarizability checking."""

import pytest

from repro.core.cube import compute_cube
from repro.core.properties import PropertyOracle
from repro.core.rollup import (
    best_source_for,
    derivable,
    dice_cuboid,
    point_query,
    rollup,
    slice_cuboid,
    structural_drop_only,
)
from repro.errors import CubeError
from tests.conftest import small_workload


@pytest.fixture(scope="module")
def clean():
    workload = small_workload(n_facts=80, coverage=True, disjoint=True)
    table = workload.fact_table()
    oracle = PropertyOracle.from_flags(table.lattice, True, True)
    cube = compute_cube(table, "NAIVE")
    return table, oracle, cube


class TestDerivable:
    def test_drop_only_moves(self, fig1_table):
        lattice = fig1_table.lattice
        top = lattice.top
        year_only = lattice.point_by_description("$n:LND, $p:LND, $y:rigid")
        pcad = lattice.point_by_description("$n:PC-AD, $p:rigid, $y:rigid")
        assert structural_drop_only(lattice, top, year_only)
        assert not structural_drop_only(lattice, top, pcad)

    def test_structural_move_refused(self, fig1_table):
        lattice = fig1_table.lattice
        oracle = PropertyOracle.from_flags(lattice, True, True)
        top = lattice.top
        pcad = lattice.point_by_description("$n:PC-AD, $p:rigid, $y:rigid")
        ok, reason = derivable(lattice, top, pcad, oracle)
        assert not ok and "relaxes structure" in reason

    def test_nondisjoint_source_refused(self, fig1_table):
        lattice = fig1_table.lattice
        oracle = PropertyOracle.from_data(fig1_table)
        top = lattice.top
        target = lattice.point_by_description("$n:LND, $p:rigid, $y:rigid")
        ok, reason = derivable(lattice, top, target, oracle)
        assert not ok and "disjoint" in reason

    def test_clean_data_derivable(self, clean):
        table, oracle, _ = clean
        lattice = table.lattice
        target = list(lattice.successors(lattice.top))[0]
        ok, _ = derivable(lattice, lattice.top, target, oracle)
        assert ok

    def test_identity(self, clean):
        table, oracle, _ = clean
        top = table.lattice.top
        assert derivable(table.lattice, top, top, oracle)[0]


class TestRollup:
    def test_safe_rollup_matches_direct(self, clean):
        table, oracle, cube = clean
        lattice = table.lattice
        for target in lattice.points():
            if target == lattice.top:
                continue
            rolled = rollup(cube, lattice.top, target, oracle)
            assert rolled == cube.cuboids[target], lattice.describe(target)

    def test_unsafe_rollup_reproduces_paper_wrong_answer(self, fig1_table):
        cube = compute_cube(fig1_table, "NAIVE")
        oracle = PropertyOracle.from_data(fig1_table)
        lattice = fig1_table.lattice
        source = lattice.point_by_description("$n:rigid, $p:rigid, $y:rigid")
        target = lattice.point_by_description("$n:LND, $p:rigid, $y:rigid")
        with pytest.raises(CubeError):
            rollup(cube, source, target, oracle)
        wrong = rollup(cube, source, target, oracle, unsafe=True)
        # The paper: "added up, the result is two, which is wrong."
        assert wrong[("p1", "2003")] == 2.0
        assert cube.cuboids[target][("p1", "2003")] == 1.0

    def test_non_distributive_rejected(self, clean):
        table, oracle, cube = clean
        cube.aggregate = "AVG"
        try:
            with pytest.raises(CubeError):
                rollup(cube, table.lattice.top, table.lattice.bottom, oracle)
        finally:
            cube.aggregate = "COUNT"


class TestSliceDice:
    def test_slice(self):
        cuboid = {("a", "x"): 1.0, ("a", "y"): 2.0, ("b", "x"): 3.0}
        assert slice_cuboid(cuboid, 0, "a") == {("x",): 1.0, ("y",): 2.0}
        assert slice_cuboid(cuboid, 1, "x") == {("a",): 1.0, ("b",): 3.0}

    def test_slice_bad_index(self):
        with pytest.raises(CubeError):
            slice_cuboid({("a",): 1.0}, 3, "a")

    def test_dice(self):
        cuboid = {("a", "x"): 1.0, ("a", "y"): 2.0, ("b", "x"): 3.0}
        assert dice_cuboid(cuboid, {0: ["a"], 1: ["x", "y"]}) == {
            ("a", "x"): 1.0, ("a", "y"): 2.0,
        }

    def test_dice_empty_result(self):
        assert dice_cuboid({("a",): 1.0}, {0: ["z"]}) == {}


class TestHelpers:
    def test_point_query(self, fig1_table):
        cube = compute_cube(fig1_table, "NAIVE")
        point = fig1_table.lattice.point_by_description(
            "$n:LND, $p:LND, $y:rigid"
        )
        assert point_query(cube, point, ("2003",)) == 2.0
        assert point_query(cube, point, ("1888",)) is None

    def test_best_source_prefers_small(self, clean):
        table, oracle, cube = clean
        lattice = table.lattice
        source = best_source_for(cube, lattice.bottom, oracle)
        assert source is not None
        # The smallest derivation source for the grand total is the
        # smallest cuboid overall (everything is derivable on clean data).
        smallest = min(cube.cuboids, key=lambda p: len(cube.cuboids[p]))
        assert len(cube.cuboids[source]) == len(cube.cuboids[smallest])
