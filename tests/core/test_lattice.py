"""Unit + property tests for the cube lattice (paper Fig. 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axes import AxisSpec
from repro.core.lattice import CubeLattice
from repro.datagen.publications import query1
from repro.patterns.relaxation import Relaxation


def lnd_axes(k):
    return [
        AxisSpec.from_path(f"$a{i}", f"d{i}", frozenset({Relaxation.LND}))
        for i in range(k)
    ]


class TestQuery1Lattice:
    """The running example: 5 x 3 x 2 = 30 lattice points."""

    def test_size(self):
        assert query1().lattice().size() == 30

    def test_top_is_all_rigid(self):
        lattice = query1().lattice()
        assert lattice.describe(lattice.top) == (
            "$n:rigid, $p:rigid, $y:rigid"
        )

    def test_bottom_is_all_dropped(self):
        lattice = query1().lattice()
        assert lattice.describe(lattice.bottom) == "$n:LND, $p:LND, $y:LND"
        assert lattice.kept_axes(lattice.bottom) == []

    def test_points_enumeration_complete(self):
        lattice = query1().lattice()
        assert len(list(lattice.points())) == 30

    def test_top_has_max_successor_fanout(self):
        lattice = query1().lattice()
        # From all-rigid: $n can add SP or PC-AD or drop (3), $p can add
        # PC-AD or drop (2), $y can drop (1) -> 6 one-step relaxations.
        assert len(lattice.successors(lattice.top)) == 6

    def test_bottom_has_no_successors(self):
        lattice = query1().lattice()
        assert lattice.successors(lattice.bottom) == []

    def test_predecessor_successor_duality(self):
        lattice = query1().lattice()
        for point in lattice.points():
            for succ in lattice.successors(point):
                assert point in lattice.predecessors(succ)

    def test_lnd_parents(self):
        lattice = query1().lattice()
        parents = lattice.lnd_parents(lattice.bottom)
        # restoring any of 3 axes: $n has 4 structural states, $p 2, $y 1.
        assert len(parents) == 4 + 2 + 1

    def test_describe_round_trip(self):
        lattice = query1().lattice()
        for point in lattice.points():
            assert lattice.point_by_description(
                lattice.describe(point)
            ) == point

    def test_point_by_description_defaults_rigid(self):
        lattice = query1().lattice()
        assert lattice.point_by_description("") == lattice.top

    def test_point_by_description_unknown_state(self):
        lattice = query1().lattice()
        with pytest.raises(KeyError):
            lattice.point_by_description("$n:warp")


class TestClassicCube:
    """LND-only lattices are the classic 2^k cube."""

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_size_2k(self, k):
        assert CubeLattice(lnd_axes(k)).size() == 2 ** k

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            CubeLattice([])

    def test_topo_order_finest_first(self):
        lattice = CubeLattice(lnd_axes(3))
        order = lattice.topo_finer_first()
        assert order[0] == lattice.top
        assert order[-1] == lattice.bottom
        positions = {point: i for i, point in enumerate(order)}
        for point in lattice.points():
            for succ in lattice.successors(point):
                assert positions[point] < positions[succ]

    def test_topo_coarser_first_reverses(self):
        lattice = CubeLattice(lnd_axes(2))
        assert lattice.topo_coarser_first()[0] == lattice.bottom


# ----------------------------------------------------------------------
# lattice laws (property-based over random axis shapes)
# ----------------------------------------------------------------------

@st.composite
def random_lattice(draw):
    k = draw(st.integers(min_value=1, max_value=3))
    axes = []
    for index in range(k):
        relaxations = {Relaxation.LND}
        if draw(st.booleans()):
            relaxations.add(Relaxation.PC_AD)
        if draw(st.booleans()):
            relaxations.add(Relaxation.SP)
        path = "a/b" if Relaxation.SP in relaxations else "a"
        axes.append(
            AxisSpec.from_path(f"$x{index}", path, frozenset(relaxations))
        )
    return CubeLattice(axes)


@given(random_lattice())
@settings(max_examples=40, deadline=None)
def test_leq_is_partial_order(lattice):
    points = list(lattice.points())
    for point in points:
        assert lattice.leq(point, point)
    for first in points[:10]:
        for second in points[:10]:
            if lattice.leq(first, second) and lattice.leq(second, first):
                assert first == second


@given(random_lattice())
@settings(max_examples=40, deadline=None)
def test_top_bottom_are_extremes(lattice):
    for point in lattice.points():
        assert lattice.leq(lattice.top, point)
        assert lattice.leq(point, lattice.bottom)


@given(random_lattice())
@settings(max_examples=40, deadline=None)
def test_successors_are_strictly_coarser(lattice):
    for point in lattice.points():
        for succ in lattice.successors(point):
            assert lattice.leq(point, succ)
            assert point != succ
