"""Tests validating the lattice against networkx as an independent
graph library, plus the GraphViz export."""

import networkx as nx

from repro.core.lattice_graph import (
    edge_label,
    level_census,
    to_dot,
    to_networkx,
)
from repro.datagen.publications import query1


def graph_and_lattice():
    lattice = query1().lattice()
    return to_networkx(lattice), lattice


class TestGraphStructure:
    def test_is_dag(self):
        graph, _ = graph_and_lattice()
        assert nx.is_directed_acyclic_graph(graph)

    def test_node_and_point_counts(self):
        graph, lattice = graph_and_lattice()
        assert graph.number_of_nodes() == lattice.size() == 30

    def test_single_source_and_sink(self):
        graph, lattice = graph_and_lattice()
        sources = [n for n in graph if graph.in_degree(n) == 0]
        sinks = [n for n in graph if graph.out_degree(n) == 0]
        assert sources == [lattice.top]
        assert sinks == [lattice.bottom]

    def test_everything_reachable_from_top(self):
        graph, lattice = graph_and_lattice()
        reachable = nx.descendants(graph, lattice.top)
        assert len(reachable) == lattice.size() - 1

    def test_topological_order_agrees(self):
        graph, lattice = graph_and_lattice()
        order = lattice.topo_finer_first()
        position = {point: i for i, point in enumerate(order)}
        for finer, coarser in graph.edges:
            assert position[finer] < position[coarser]

    def test_transitive_reduction_within_edges(self):
        # Every edge is a single relaxation step, so the graph's
        # reachability must equal the lattice's leq relation.
        graph, lattice = graph_and_lattice()
        closure = nx.transitive_closure(graph)
        points = list(lattice.points())
        for first in points[:12]:
            for second in points[:12]:
                if first == second:
                    continue
                assert closure.has_edge(first, second) == (
                    lattice.leq(first, second)
                ), (first, second)


class TestLabels:
    def test_edge_labels_name_the_relaxation(self):
        graph, lattice = graph_and_lattice()
        labels = {
            data["relaxation"] for _, _, data in graph.edges(data=True)
        }
        assert "$y:LND" in labels
        assert "$n:PC-AD" in labels
        assert "$n:SP" in labels

    def test_edge_label_direct(self):
        lattice = query1().lattice()
        top = lattice.top
        succ = lattice.point_by_description(
            "$n:rigid, $p:rigid, $y:LND"
        )
        assert edge_label(lattice, top, succ) == "$y:LND"


class TestDot:
    def test_dot_structure(self):
        lattice = query1().lattice()
        dot = to_dot(lattice)
        assert dot.startswith("digraph x3_lattice {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == sum(
            len(lattice.successors(point)) for point in lattice.points()
        )
        assert "$n:rigid, $p:rigid, $y:rigid" in dot


class TestCensus:
    def test_levels_sum_to_size(self):
        lattice = query1().lattice()
        census = level_census(lattice)
        assert sum(count for _, count in census) == 30
        assert census[0] == (0, 1)   # single top
        assert census[-1][1] == 1    # single bottom
