"""Cube computation algorithms (paper Sec. 3 / Sec. 4).

====================  ==========  ==========================  =========
Name                  Family      Requires for correctness     Module
====================  ==========  ==========================  =========
``NAIVE``             oracle      nothing                      naive
``COUNTER``           counter     nothing                      counter
``COLUMNAR``          counter     nothing                      columnar_sweep
``BUC``               bottom-up   nothing                      buc
``BUCOPT``            bottom-up   disjointness                 buc
``BUCCUST``           bottom-up   nothing (schema-guided)      custom
``TD``                top-down    nothing                      topdown
``TDOPT``             top-down    disjointness                 topdown
``TDOPTALL``          top-down    disjointness + coverage      topdown
``TDCUST``            top-down    nothing (schema-guided)      custom
====================  ==========  ==========================  =========

All are registered in :mod:`repro.core.algorithms.registry` and run
through :func:`repro.core.cube.compute_cube`.
"""

from repro.core.algorithms.registry import available, get_algorithm

__all__ = ["available", "get_algorithm"]
