"""A thread-safe, cache-backed query server over one fact table.

:class:`CubeServer` is the runtime counterpart of the one-shot
materialization advisor (paper Sec. 3.6): where
:class:`repro.core.materialize.MaterializedCube` freezes a view
selection once, the server keeps answering ``cuboid``/``cell``/
``slice``/``dice`` queries across time, caching what traffic proves
hot and staying correct under concurrent incremental updates.

Every request resolves through the **sound-source ladder**, cheapest
first, each rung guarded by the summarizability rules of Sec. 2/3:

1. **cache** — the cuboid is resident in the cost-aware
   :class:`~repro.serve.cache.CuboidCache`;
2. **view** — the cuboid is one of the materialized views chosen by
   :func:`repro.core.materialize.select_views`;
3. **rollup** — some cached/materialized *finer* cuboid soundly derives
   it: the move is drop-only and the
   :class:`~repro.core.properties.PropertyOracle` proves the source
   disjoint (no double counting) and covering (no lost facts);
4. **incremental** — when the server wraps an
   :class:`~repro.core.incremental.IncrementalCube`, its maintained
   cells answer directly;
5. **recompute** — the parallel engine computes the cuboid from a row
   snapshot (identical concurrent misses are deduplicated single-flight
   so a stampede computes once).

Writes go through the same delta machinery as
:class:`~repro.core.incremental.IncrementalCube`: deltas patch cached
cuboids in place when the aggregate allows it exactly (the patch is a
continuation of the same left fold the algorithms run, so answers stay
bit-identical to recomputation), otherwise exactly the affected lattice
points are evicted.

Reads are versioned: the returned cuboid is correct for the table
version reported alongside it, and an in-flight recompute whose version
was overtaken by a write is served to its waiters (still correct at
*their* snapshot) but never admitted to the cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.core.bindings import FactRow, FactTable, GroupKey
from repro.core.cube import CubeResult, ExecutionOptions, compute_cube
from repro.core.groupby import Cuboid
from repro.core.incremental import (
    IncrementalCube,
    affected_points,
    ingest_rows,
    retract_rows,
)
from repro.core.lattice import LatticePoint
from repro.core.materialize import ViewSelection, cuboid_sizes, select_views
from repro.core.properties import PropertyOracle
from repro.core.rollup import (
    ROLLUP_AGGREGATES,
    derivable,
    dice_cuboid,
    rollup_cuboid,
    slice_cuboid,
)
from repro.errors import CubeError
from repro.serve.cache import CuboidCache
from repro.serve.singleflight import SingleFlight
from repro.timber.stats import CostModel

#: Tier names, in ladder order.
TIERS = ("cache", "view", "rollup", "incremental", "recompute")

#: Aggregates whose finalized cells can absorb an inserted fact exactly
#: (finalize-then-fold equals fold-then-finalize for them).
_PATCH_INSERT = {"COUNT", "SUM", "MIN", "MAX"}

#: Aggregates whose finalized cells can absorb a deletion exactly.  Only
#: COUNT qualifies: its value *is* the group's support, so fully
#: retracted groups are detectable and removed.  SUM could subtract the
#: measure but cannot tell a zero-sum group from a retracted one.
_PATCH_DELETE = {"COUNT"}

# Modeled serve-side costs, on the cost model's simulated-seconds scale.
_CPU_OP_SECONDS = CostModel.cpu_op_cost

PointSpec = Union[LatticePoint, str]


@dataclass(frozen=True)
class ServeStats:
    """A consistent snapshot of the server's counters."""

    requests: int
    tiers: Dict[str, int]
    modeled_cost_seconds: float
    cold_cost_seconds: float
    cache: Dict[str, int]
    cache_used_cells: int
    cache_budget_cells: int
    view_points: int
    stale_views: int
    singleflight_led: int
    singleflight_shared: int
    writes: int
    patched_points: int
    evicted_points: int
    version: int

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered without touching base data
        (anything above the recompute tier)."""
        if not self.requests:
            return 0.0
        return 1.0 - self.tiers.get("recompute", 0) / self.requests

    @property
    def modeled_speedup(self) -> float:
        """Cold recompute cost over the cost actually paid."""
        if self.modeled_cost_seconds <= 0.0:
            return 1.0
        return self.cold_cost_seconds / self.modeled_cost_seconds

    def summary(self) -> str:
        tier_text = ", ".join(
            f"{tier}={self.tiers.get(tier, 0)}"
            for tier in TIERS
            if self.tiers.get(tier, 0)
        )
        return (
            f"{self.requests} requests ({tier_text}); "
            f"hit rate {self.hit_rate:.0%}; modeled "
            f"{self.modeled_cost_seconds:.4f}s vs cold "
            f"{self.cold_cost_seconds:.4f}s "
            f"({self.modeled_speedup:.1f}x)"
        )


@dataclass
class _Counters:
    requests: int = 0
    tiers: Dict[str, int] = field(
        default_factory=lambda: {tier: 0 for tier in TIERS}
    )
    modeled_cost_seconds: float = 0.0
    cold_cost_seconds: float = 0.0
    writes: int = 0
    patched_points: int = 0
    evicted_points: int = 0


class CubeServer:
    """Concurrent cube serving over one :class:`FactTable`.

    Args:
        table: the fact table to serve (shared with ``incremental`` when
            one is given).
        oracle: property oracle proving disjointness/coverage for the
            rollup tier and the view advisor; ``None`` is the pessimistic
            oracle, which disables rollups (never unsound, never fast).
        options: engine configuration for recomputes and view
            materialization (algorithm, workers, engine, ...).  The
            ``points`` field is managed by the server and must be unset.
        cache_cells: budget of the cuboid cache, in cells.
        view_cells: when > 0 (and no explicit ``selection``), run the
            Sec. 3.6 advisor with this space budget and materialize its
            chosen views at startup.
        selection: an explicit advisor outcome to materialize.
        incremental: serve reads from this maintained cube as the tier
            before recompute, and route writes through it.  Its table
            must be the served table.
    """

    def __init__(
        self,
        table: FactTable,
        oracle: Optional[PropertyOracle] = None,
        *,
        options: Optional[ExecutionOptions] = None,
        cache_cells: int = 4096,
        view_cells: int = 0,
        selection: Optional[ViewSelection] = None,
        incremental: Optional[IncrementalCube] = None,
    ) -> None:
        self.table = table
        self.lattice = table.lattice
        self.oracle = oracle or PropertyOracle.from_flags(
            table.lattice, False, False
        )
        if options is not None and options.points is not None:
            raise CubeError(
                "ExecutionOptions.points is managed by CubeServer; "
                "leave it unset"
            )
        self.options = options or ExecutionOptions()
        if incremental is not None and incremental.table is not table:
            raise CubeError(
                "the IncrementalCube must maintain the served table"
            )
        self._incremental = incremental
        self._aggregate = table.aggregate.function.upper()
        self._point_set = frozenset(table.lattice.points())
        self._lock = threading.RLock()
        self._version = 0
        self._counters = _Counters()
        self.cache = CuboidCache(cache_cells)
        self._flight = SingleFlight()
        # modeled recompute cost per point, measured on first recompute
        self._measured_cost: Dict[LatticePoint, float] = {}
        self._sizes: Optional[Dict[LatticePoint, int]] = None
        self._views: Dict[LatticePoint, Cuboid] = {}
        self._stale_views: Set[LatticePoint] = set()
        self.selection = selection
        if selection is None and view_cells > 0:
            self.selection = select_views(table, self.oracle, view_cells)
        if self.selection is not None and self.selection.chosen:
            self._materialize_views(self.selection.chosen)

    # ------------------------------------------------------------------
    # point resolution helpers
    # ------------------------------------------------------------------
    def resolve_point(self, spec: PointSpec) -> LatticePoint:
        """Accept a lattice point or its description string."""
        if isinstance(spec, str):
            return self.lattice.point_by_description(spec)
        return spec

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def snapshot(self) -> Tuple[int, Tuple[FactRow, ...]]:
        """The current (version, rows) pair, atomically."""
        with self._lock:
            return self._version, tuple(self.table.rows)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def cuboid(self, spec: PointSpec) -> Cuboid:
        return self.cuboid_versioned(spec)[0]

    def cuboid_versioned(self, spec: PointSpec) -> Tuple[Cuboid, int]:
        """One cuboid plus the table version it is exact for."""
        point = self.resolve_point(spec)
        if point not in self._point_set:
            raise CubeError(
                f"point {point!r} is not in this cube's lattice"
            )
        with obs.span(
            "serve.request",
            category="serve",
            point=self.lattice.describe(point),
        ) as span:
            cuboid, version, tier, cost = self._resolve(point)
            span.annotate(tier=tier, cells=len(cuboid))
        obs.count("x3_serve_requests_total", tier=tier)
        with self._lock:
            self._counters.requests += 1
            self._counters.tiers[tier] += 1
            self._counters.modeled_cost_seconds += cost
            self._counters.cold_cost_seconds += self._cold_cost(point)
        return cuboid, version

    def cell(self, spec: PointSpec, key: GroupKey) -> Optional[float]:
        return self.cuboid(spec).get(key)

    def slice(self, spec: PointSpec, axis_index: int, value: str) -> Cuboid:
        """Classic OLAP slice over the resolved cuboid (``axis_index``
        counts the point's *kept* axes)."""
        return slice_cuboid(self.cuboid(spec), axis_index, value)

    def dice(
        self, spec: PointSpec, predicates: Dict[int, Sequence[str]]
    ) -> Cuboid:
        return dice_cuboid(self.cuboid(spec), predicates)

    # ------------------------------------------------------------------
    # the sound-source ladder
    # ------------------------------------------------------------------
    def _resolve(
        self, point: LatticePoint
    ) -> Tuple[Cuboid, int, str, float]:
        with self._lock:
            version = self._version
            hit = self.cache.get(point)
            if hit is not None:
                obs.count("x3_serve_cache_hits_total")
                return dict(hit), version, "cache", self._touch_cost(hit)
            obs.count("x3_serve_cache_misses_total")
            view = self._fresh_view(point)
            if view is not None:
                return dict(view), version, "view", self._touch_cost(view)
            source = self._rollup_source(point)
            if source is None:
                if self._incremental is not None:
                    # Fresh dict from the maintained cells; the cache
                    # gets its own private copy so later in-place
                    # patches never reach the caller's object.
                    cuboid = self._incremental.cuboid(point)
                    cost = self._touch_cost(cuboid)
                    self.cache.put(point, dict(cuboid), cost)
                    return cuboid, version, "incremental", cost
                snapshot_rows = list(self.table.rows)
        if source is not None:
            # Rollup arithmetic runs outside the lock on a source copied
            # under it; admit only if no write overtook the derivation.
            source_point, source_cuboid = source
            cuboid, cost = self._rollup_from(
                source_point, source_cuboid, point
            )
            with self._lock:
                if self._version == version:
                    self.cache.put(point, dict(cuboid), cost)
            return cuboid, version, "rollup", cost
        # Recompute outside the lock, deduplicated per (point, version).
        (cuboid, cost), shared = self._flight.do(
            (point, version),
            lambda: self._recompute(snapshot_rows, point),
        )
        if shared:
            obs.count("x3_serve_singleflight_shared_total")
        else:
            # Only the flight leader admits, and the cache receives a
            # private copy: the flight result itself stays immutable, so
            # every waiter's dict() copy below is race-free even after
            # a concurrent write starts patching the cached copy.
            with self._lock:
                if self._version == version:
                    self.cache.put(point, dict(cuboid), cost)
                    if point in self._stale_views:
                        self._views[point] = dict(cuboid)
                        self._stale_views.discard(point)
        return dict(cuboid), version, "recompute", cost

    def _fresh_view(self, point: LatticePoint) -> Optional[Cuboid]:
        if point in self._stale_views:
            return None
        return self._views.get(point)

    def _rollup_source(
        self, point: LatticePoint
    ) -> Optional[Tuple[LatticePoint, Cuboid]]:
        """Pick the smallest sound cached/view source for ``point`` and
        return a private copy of it.  Call with the server lock held;
        the copy lets the rollup arithmetic itself run outside it."""
        if self._aggregate not in ROLLUP_AGGREGATES:
            return None
        best: Optional[Tuple[int, Cuboid, LatticePoint]] = None
        candidates: List[Tuple[LatticePoint, Cuboid]] = [
            (source, cuboid)
            for source, cuboid in self._views.items()
            if source not in self._stale_views
        ]
        for source in self.cache.points():
            cuboid = self.cache.peek(source)
            if cuboid is not None:
                candidates.append((source, cuboid))
        for source, cuboid in candidates:
            if source == point:
                continue
            ok, _ = derivable(self.lattice, source, point, self.oracle)
            if not ok:
                continue
            if best is None or len(cuboid) < best[0]:
                best = (len(cuboid), cuboid, source)
        if best is None:
            return None
        _, source_cuboid, source = best
        return source, dict(source_cuboid)

    def _rollup_from(
        self,
        source: LatticePoint,
        source_cuboid: Cuboid,
        point: LatticePoint,
    ) -> Tuple[Cuboid, float]:
        """Derive ``point`` from an already-copied source cuboid."""
        with obs.span(
            "serve.rollup",
            category="serve",
            source=self.lattice.describe(source),
            target=self.lattice.describe(point),
        ):
            out = rollup_cuboid(
                self.lattice, source_cuboid, source, point
            )
        obs.count("x3_serve_rollups_total")
        cost = (len(source_cuboid) + len(out)) * _CPU_OP_SECONDS
        return out, cost

    def _recompute(
        self, rows: List[FactRow], point: LatticePoint
    ) -> Tuple[Cuboid, float]:
        snapshot = FactTable(self.lattice, rows, self.table.aggregate)
        with obs.span(
            "serve.recompute",
            category="serve",
            point=self.lattice.describe(point),
            rows=len(rows),
        ):
            result: CubeResult = compute_cube(
                snapshot, self.options.replace(points=(point,))
            )
        cost = result.cost.simulated_seconds
        with self._lock:
            self._measured_cost[point] = cost
        return result.cuboids[point], cost

    # ------------------------------------------------------------------
    # modeled costs
    # ------------------------------------------------------------------
    @staticmethod
    def _touch_cost(cuboid: Cuboid) -> float:
        return max(1, len(cuboid)) * _CPU_OP_SECONDS

    def _cold_cost(self, point: LatticePoint) -> float:
        """What answering from base would have cost (modeled)."""
        measured = self._measured_cost.get(point)
        if measured is not None:
            return measured
        # Deterministic estimate before any measurement exists: one scan
        # of the fact table charging one op per row-axis touch.
        kept = len(self.lattice.kept_axes(point))
        return len(self.table.rows) * (kept + 1) * _CPU_OP_SECONDS

    # ------------------------------------------------------------------
    # views and warmup
    # ------------------------------------------------------------------
    def _materialize_views(
        self, points: Sequence[LatticePoint]
    ) -> None:
        with obs.span(
            "serve.materialize_views",
            category="serve",
            views=len(points),
        ):
            result = compute_cube(
                self.table, self.options.replace(points=tuple(points))
            )
        share = result.cost.simulated_seconds / max(1, len(points))
        for view_point in points:
            self._views[view_point] = dict(result.cuboids[view_point])
            self._measured_cost.setdefault(view_point, share)

    def sizes(self) -> Dict[LatticePoint, int]:
        """Exact per-point cell counts (cached; recomputed after writes
        only when asked again)."""
        with self._lock:
            if self._sizes is None:
                self._sizes = cuboid_sizes(self.table, self.lattice)
            return dict(self._sizes)

    def warm(
        self,
        points: Optional[Sequence[PointSpec]] = None,
        budget_cells: Optional[int] = None,
    ) -> List[LatticePoint]:
        """Pre-fill the cache with the best cuboids that fit.

        Candidates (default: the whole lattice) are ranked by modeled
        benefit density — recompute cost saved per cell — and admitted
        greedily within ``budget_cells`` (default: the cache budget).
        The chosen cuboids are computed in one engine run, so a parallel
        configuration warms in parallel.  Returns the warmed points.
        """
        budget = (
            self.cache.budget_cells if budget_cells is None else budget_cells
        )
        candidates = (
            [self.resolve_point(spec) for spec in points]
            if points is not None
            else list(self.lattice.points())
        )
        sizes = self.sizes()
        with self._lock:
            # Rank against one consistent snapshot of view/cost state;
            # the version check before admission below bounds staleness.
            fresh_views = frozenset(
                view
                for view in self._views
                if view not in self._stale_views
            )
            cold_costs = {p: self._cold_cost(p) for p in candidates}
        ranked = sorted(
            candidates,
            key=lambda p: (
                -cold_costs[p] / max(1, sizes[p]),
                p,
            ),
        )
        chosen: List[LatticePoint] = []
        space = 0
        for candidate in ranked:
            size = max(1, sizes[candidate])
            if space + size > budget:
                continue
            if candidate in fresh_views:
                continue  # already served above the cache tier
            chosen.append(candidate)
            space += size
        if not chosen:
            return []
        with self._lock:
            version = self._version
            snapshot_rows = list(self.table.rows)
        snapshot = FactTable(self.lattice, snapshot_rows, self.table.aggregate)
        with obs.span(
            "serve.warm", category="serve", points=len(chosen)
        ):
            result = compute_cube(
                snapshot, self.options.replace(points=tuple(chosen))
            )
        share = result.cost.simulated_seconds / len(chosen)
        warmed: List[LatticePoint] = []
        with self._lock:
            if self._version != version:
                return []  # a write overtook the warmup; stay cold
            for point in chosen:
                self._measured_cost.setdefault(point, share)
                if self.cache.put(
                    point,
                    dict(result.cuboids[point]),
                    self._measured_cost[point],
                ):
                    warmed.append(point)
        return warmed

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, rows: Sequence[FactRow]) -> int:
        """Ingest delta facts; returns the new table version."""
        rows = list(rows)
        with self._lock, obs.span(
            "serve.insert", category="serve", rows=len(rows)
        ):
            if self._incremental is not None:
                self._incremental.insert(rows)
            else:
                ingest_rows(self.table, rows)
            if self._aggregate in _PATCH_INSERT:
                self._patch_cached(rows, op="insert")
            else:
                self._evict_affected(rows)
            return self._finish_write()

    def delete(self, rows: Sequence[FactRow]) -> int:
        """Retract delta facts; returns the new table version.

        With an attached :class:`IncrementalCube` the aggregate must be
        invertible (its rule); without one, any aggregate works — the
        affected cuboids are evicted and recomputed on demand.
        """
        rows = list(rows)
        with self._lock, obs.span(
            "serve.delete", category="serve", rows=len(rows)
        ):
            if self._incremental is not None:
                self._incremental.delete(rows)
            else:
                retract_rows(self.table, rows)
            if self._aggregate in _PATCH_DELETE:
                self._patch_cached(rows, op="delete")
            else:
                self._evict_affected(rows)
            return self._finish_write()

    def _finish_write(self) -> int:
        self._version += 1
        self._counters.writes += 1
        self._sizes = None  # size census is stale now
        obs.count("x3_serve_writes_total")
        return self._version

    def _cached_points(self) -> List[LatticePoint]:
        return self.cache.points() + [
            point
            for point in self._views
            if point not in self._stale_views
        ]

    def _patch_cached(self, rows: List[FactRow], op: str) -> None:
        """Fold/unfold a delta batch into every resident cuboid."""
        affected = affected_points(self.table, rows, self._cached_points())
        for point in affected:
            self.cache.mutate(
                point, lambda cuboid, p=point: self._apply_delta(
                    cuboid, rows, p, op
                )
            )
            if point in self._views and point not in self._stale_views:
                self._apply_delta(self._views[point], rows, point, op)
            self._counters.patched_points += 1
        obs.count(
            "x3_serve_patched_points_total", len(affected), op=op
        )

    def _apply_delta(
        self,
        cuboid: Cuboid,
        rows: List[FactRow],
        point: LatticePoint,
        op: str,
    ) -> None:
        name = self._aggregate
        for row in rows:
            for key in self.table.key_combinations(row, point):
                if op == "insert":
                    if key not in cuboid:
                        cuboid[key] = self._first_value(row.measure)
                    elif name == "COUNT":
                        cuboid[key] += 1.0
                    elif name == "SUM":
                        cuboid[key] += row.measure
                    elif name == "MIN":
                        cuboid[key] = min(cuboid[key], row.measure)
                    else:  # MAX
                        cuboid[key] = max(cuboid[key], row.measure)
                else:  # delete — only COUNT reaches here
                    remaining = cuboid.get(key, 0.0) - 1.0
                    if remaining <= 0.0:
                        cuboid.pop(key, None)
                    else:
                        cuboid[key] = remaining

    def _first_value(self, measure: float) -> float:
        if self._aggregate == "COUNT":
            return 1.0
        return measure  # SUM/MIN/MAX of a single fact

    def _evict_affected(self, rows: List[FactRow]) -> None:
        """Evict exactly the lattice points the delta touches."""
        affected = affected_points(
            self.table,
            rows,
            self.cache.points() + list(self._views),
        )
        for point in affected:
            if self.cache.invalidate(point):
                self._counters.evicted_points += 1
            if point in self._views:
                self._stale_views.add(point)
        obs.count("x3_serve_invalidated_points_total", len(affected))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServeStats:
        with self._lock:
            return ServeStats(
                requests=self._counters.requests,
                tiers=dict(self._counters.tiers),
                modeled_cost_seconds=self._counters.modeled_cost_seconds,
                cold_cost_seconds=self._counters.cold_cost_seconds,
                cache=self.cache.stats.as_dict(),
                cache_used_cells=self.cache.used_cells,
                cache_budget_cells=self.cache.budget_cells,
                view_points=len(self._views),
                stale_views=len(self._stale_views),
                singleflight_led=self._flight.led_total,
                singleflight_shared=self._flight.shared_total,
                writes=self._counters.writes,
                patched_points=self._counters.patched_points,
                evicted_points=self._counters.evicted_points,
                version=self._version,
            )
