"""Unit tests for the logical cube model (repro.server.model)."""

import pytest

from repro.errors import InvalidQuery, UnknownCube
from repro.serve import CubeServer
from repro.server import (
    BoundCube,
    CubeCatalog,
    LogicalCube,
    LogicalDimension,
)
from repro.testing import small_workload


@pytest.fixture()
def backend():
    workload = small_workload()
    table = workload.fact_table()
    return CubeServer(table, workload.oracle(table))


def default_cube():
    return LogicalCube(
        name="sales",
        dimensions=(
            LogicalDimension(name="m1", axis="$m1"),
            LogicalDimension(name="m2", axis="$m2"),
            LogicalDimension(name="m3", axis="$m3"),
        ),
        measure="COUNT",
    )


class TestLogicalDimension:
    def test_aliases_resolve(self):
        dim = LogicalDimension(name="year", axis="$y")
        assert dim.resolve_level("detail") == "rigid"
        assert dim.resolve_level("all") == "LND"

    def test_custom_levels_win_over_aliases(self):
        dim = LogicalDimension(
            name="year", axis="$y", levels=(("detail", "SP"),)
        )
        assert dim.resolve_level("detail") == "SP"

    def test_raw_state_labels_pass_through(self):
        dim = LogicalDimension(name="n", axis="$n")
        assert dim.resolve_level("SP+PC-AD") == "SP+PC-AD"

    def test_needs_name_and_axis(self):
        with pytest.raises(InvalidQuery):
            LogicalDimension(name="", axis="$y")
        with pytest.raises(InvalidQuery):
            LogicalDimension(name="year", axis="")

    def test_round_trips_through_dict(self):
        dim = LogicalDimension(
            name="year",
            axis="$y",
            levels=(("fine", "rigid"),),
            description="publication year",
        )
        assert LogicalDimension.from_dict(dim.to_dict()) == dim


class TestLogicalCube:
    def test_round_trips_through_dict(self):
        cube = default_cube()
        assert LogicalCube.from_dict(cube.to_dict()) == cube

    def test_rejects_duplicate_dimension_names(self):
        with pytest.raises(InvalidQuery):
            LogicalCube(
                name="bad",
                dimensions=(
                    LogicalDimension(name="m", axis="$m1"),
                    LogicalDimension(name="m", axis="$m2"),
                ),
            )

    def test_rejects_empty(self):
        with pytest.raises(InvalidQuery):
            LogicalCube(name="", dimensions=())
        with pytest.raises(InvalidQuery):
            LogicalCube(name="empty", dimensions=())

    def test_from_lattice_strips_dollar(self, backend):
        cube = LogicalCube.from_lattice("auto", backend.lattice)
        assert [dim.name for dim in cube.dimensions] == [
            "m1", "m2", "m3",
        ]
        assert [dim.axis for dim in cube.dimensions] == [
            "$m1", "$m2", "$m3",
        ]

    def test_dimension_lookup(self):
        cube = default_cube()
        assert cube.dimension("m2").axis == "$m2"
        with pytest.raises(InvalidQuery):
            cube.dimension("nope")


class TestBoundCube:
    def test_point_for_defaults_to_apex(self, backend):
        bound = BoundCube(default_cube(), backend)
        assert bound.point_for({}) == "$m1:LND, $m2:LND, $m3:LND"

    def test_point_for_mixes_levels(self, backend):
        bound = BoundCube(default_cube(), backend)
        assert (
            bound.point_for({"m1": "detail"})
            == "$m1:rigid, $m2:LND, $m3:LND"
        )
        # Raw state labels work alongside level aliases.
        assert (
            bound.point_for({"m1": "rigid", "m3": "detail"})
            == "$m1:rigid, $m2:LND, $m3:rigid"
        )

    def test_point_for_rejects_unknown_dimension(self, backend):
        bound = BoundCube(default_cube(), backend)
        with pytest.raises(InvalidQuery, match="no dimension"):
            bound.point_for({"warp": "detail"})

    def test_point_for_rejects_unknown_level(self, backend):
        bound = BoundCube(default_cube(), backend)
        with pytest.raises(InvalidQuery, match="no level"):
            bound.point_for({"m1": "continent"})

    def test_axis_for_accepts_name_or_axis(self, backend):
        bound = BoundCube(default_cube(), backend)
        assert bound.axis_for("m2") == "$m2"
        assert bound.axis_for("$m2") == "$m2"
        with pytest.raises(InvalidQuery):
            bound.axis_for("nope")

    def test_bind_rejects_unknown_axis(self, backend):
        cube = LogicalCube(
            name="bad",
            dimensions=(LogicalDimension(name="x", axis="$warp"),),
        )
        with pytest.raises(InvalidQuery, match="unknown axis"):
            BoundCube(cube, backend)

    def test_bind_rejects_unknown_level_label(self, backend):
        cube = LogicalCube(
            name="bad",
            dimensions=(
                LogicalDimension(
                    name="m1",
                    axis="$m1",
                    levels=(("middle", "NOT-A-STATE"),),
                ),
            ),
        )
        with pytest.raises(InvalidQuery, match="unknown state"):
            BoundCube(cube, backend)

    def test_describe_reports_live_backend_facts(self, backend):
        bound = BoundCube(default_cube(), backend)
        described = bound.describe()
        assert described["name"] == "sales"
        assert described["lattice_points"] == backend.lattice.size()
        assert described["version"] == [0]


class TestCubeCatalog:
    def test_register_and_get(self, backend):
        catalog = CubeCatalog()
        bound = catalog.register(default_cube(), backend)
        assert catalog.get("sales") is bound
        assert catalog.names() == ["sales"]

    def test_unknown_cube_raises(self, backend):
        catalog = CubeCatalog()
        catalog.register(default_cube(), backend)
        with pytest.raises(UnknownCube) as excinfo:
            catalog.get("warp")
        assert "sales" in str(excinfo.value)

    def test_register_replaces_same_name(self, backend):
        catalog = CubeCatalog()
        catalog.register(default_cube(), backend)
        replacement = catalog.register(default_cube(), backend)
        assert catalog.get("sales") is replacement
        assert catalog.names() == ["sales"]
