"""Unit tests for the x3-cube CLI."""

import pytest

from repro.cli import main
from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.xmlmodel.serializer import serialize


@pytest.fixture()
def inputs(tmp_path):
    query_path = tmp_path / "query.xq"
    query_path.write_text(QUERY1_TEXT)
    data_path = tmp_path / "data.xml"
    data_path.write_text(serialize(figure1_document()))
    return str(query_path), str(data_path)


class TestHappyPath:
    def test_default_output(self, inputs, capsys):
        query, data = inputs
        assert main(["--query", query, data]) == 0
        out = capsys.readouterr().out
        assert "4 facts, 30 cuboids" in out
        assert "$n:rigid, $p:rigid, $y:rigid" in out
        assert "$n:LND, $p:LND, $y:LND" in out

    def test_specific_cuboid(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data,
                "--cuboid", "$n:LND, $p:LND, $y:rigid",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(2003): 2" in out

    def test_list_cuboids(self, inputs, capsys):
        query, data = inputs
        assert main(["--query", query, data, "--list-cuboids"]) == 0
        out = capsys.readouterr().out
        assert out.count("groups") == 30

    def test_properties_report(self, inputs, capsys):
        query, data = inputs
        assert main(["--query", query, data, "--properties"]) == 0
        out = capsys.readouterr().out
        assert "disjoint=False" in out

    def test_min_support(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data, "--min-support", "2",
                "--cuboid", "$n:LND, $p:LND, $y:rigid",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(2003): 2" in out
        assert "(2004)" not in out  # below support, pruned

    def test_multiple_files(self, inputs, capsys):
        query, data = inputs
        assert main(["--query", query, data, data]) == 0
        assert "8 facts" in capsys.readouterr().out


class TestErrors:
    def test_missing_query_file(self, inputs, capsys):
        _, data = inputs
        assert main(["--query", "/nope/query.xq", data]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_query_text(self, tmp_path, inputs, capsys):
        _, data = inputs
        bad = tmp_path / "bad.xq"
        bad.write_text("this is not a query")
        assert main(["--query", str(bad), data]) == 1

    def test_bad_xml(self, tmp_path, inputs, capsys):
        query, _ = inputs
        broken = tmp_path / "broken.xml"
        broken.write_text("<a><b></a>")
        assert main(["--query", query, str(broken)]) == 1

    def test_unknown_algorithm(self, inputs, capsys):
        query, data = inputs
        assert main(["--query", query, data, "--algorithm", "WARP"]) == 1

    def test_unknown_cuboid(self, inputs, capsys):
        query, data = inputs
        assert (
            main(["--query", query, data, "--cuboid", "$n:warp"]) == 1
        )


class TestExport:
    def test_export_round_trips(self, inputs, tmp_path, capsys):
        from repro.core.export import cube_from_xml
        from repro.datagen.publications import query1

        query, data = inputs
        target = tmp_path / "cube.xml"
        assert main(["--query", query, data, "--export", str(target)]) == 0
        text = target.read_text()
        lattice = query1().lattice()
        cube = cube_from_xml(text, lattice)
        assert cube.total_cells() > 0
        year_point = lattice.point_by_description("$n:LND, $p:LND, $y:rigid")
        assert cube.cuboids[year_point][("2003",)] == 2.0


class TestProfile:
    def test_profile_prints_span_summary(self, inputs, capsys):
        query, data = inputs
        assert main(["--query", query, data, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile (top spans by wall time):" in out
        assert "engine.run" in out
        assert "xml.parse" in out
        assert "profile totals:" in out

    def test_profile_trace_out_writes_chrome_json(
        self, inputs, tmp_path, capsys
    ):
        import json

        query, data = inputs
        target = tmp_path / "trace.json"
        code = main(
            [
                "--query", query, data,
                "--profile", "--trace-out", str(target),
            ]
        )
        assert code == 0
        document = json.loads(target.read_text())
        categories = {
            e["cat"] for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert {"parse", "engine"} <= categories

    def test_trace_out_without_profile_rejected(self, inputs, capsys):
        query, data = inputs
        target = "/tmp/never-written.json"
        code = main(["--query", query, data, "--trace-out", target])
        assert code == 1
        assert "--profile" in capsys.readouterr().err
