#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the Figure 1 publication database, parses Query 1 from the
paper's augmented FLWOR syntax, extracts the annotated fact table,
computes the cube with BUC, and walks through the cuboids the paper's
motivation section discusses.

Run:  python examples/quickstart.py
"""

from repro import compute_cube, extract_fact_table, parse_x3_query
from repro.datagen.publications import QUERY1_TEXT, figure1_document


def main() -> None:
    # 1. The warehouse: Figure 1's four heterogeneous publications.
    doc = figure1_document()
    print(f"warehouse: {doc.element_count()} elements, depth {doc.max_depth()}")

    # 2. Query 1, in the paper's own syntax.
    query = parse_x3_query(QUERY1_TEXT)
    print("\nthe query round-trips back to FLWOR:")
    print(query.to_flwor())

    # 3. The relaxed-cube lattice of Fig. 3.
    lattice = query.lattice()
    print(f"\nlattice: {lattice.size()} cuboids "
          f"(top = {lattice.describe(lattice.top)})")

    # 4. One evaluation of the most relaxed pattern (Fig. 2) feeds all of
    #    them.
    table = extract_fact_table(doc, query)
    print(f"fact table: {len(table)} facts")

    # 5. Compute the cube.
    cube = compute_cube(table, algorithm="BUC")
    print(f"\n{cube.summary()}\n")

    # 6. The cuboids the paper's motivation walks through.
    year = cube.cuboid_by_description("$n:LND, $p:LND, $y:rigid")
    print("group-by year            :", dict(sorted(year.items())))
    pub_year = cube.cuboid_by_description("$n:LND, $p:rigid, $y:rigid")
    print("group-by publisher, year :", dict(sorted(pub_year.items())))
    print("  -> (p1, 2003) counts the two-author publication ONCE, and")
    print("     the online article (no publisher) is not covered here,")
    print("     so the publisher,year counts do NOT roll up to the year")
    print("     counts: that is the paper's summarizability violation.")

    # 7. Structural relaxation recovers heterogeneous matches.
    rigid_author = cube.cuboid_by_description("$n:rigid, $p:LND, $y:LND")
    relaxed_author = cube.cuboid_by_description("$n:PC-AD, $p:LND, $y:LND")
    print("\ngroup-by author (rigid)  :", dict(sorted(rigid_author.items())))
    print("group-by author (PC-AD)  :", dict(sorted(relaxed_author.items())))
    print("  -> PC-AD finds 'Smith', whose author sits under an <authors>")
    print("     wrapper the rigid pattern cannot see.")


if __name__ == "__main__":
    main()
