"""A thread-safe, cache-backed query server over one fact table.

:class:`CubeServer` is the runtime counterpart of the one-shot
materialization advisor (paper Sec. 3.6): where
:class:`repro.core.materialize.MaterializedCube` freezes a view
selection once, the server keeps answering ``cuboid``/``cell``/
``slice``/``dice`` queries across time, caching what traffic proves
hot and staying correct under concurrent incremental updates.

Every request resolves through the **sound-source ladder**, cheapest
first, each rung guarded by the summarizability rules of Sec. 2/3:

1. **cache** — the cuboid is resident in the cost-aware
   :class:`~repro.serve.cache.CuboidCache`;
2. **view** — the cuboid is one of the materialized views chosen by
   :func:`repro.core.materialize.select_views`;
3. **rollup** — some cached/materialized *finer* cuboid soundly derives
   it: the move is drop-only and the
   :class:`~repro.core.properties.PropertyOracle` proves the source
   disjoint (no double counting) and covering (no lost facts);
4. **incremental** — when the server wraps an
   :class:`~repro.core.incremental.IncrementalCube`, its maintained
   cells answer directly;
5. **recompute** — the parallel engine computes the cuboid from a row
   snapshot (identical concurrent misses are deduplicated single-flight
   so a stampede computes once).

Writes go through the same delta machinery as
:class:`~repro.core.incremental.IncrementalCube`: deltas patch cached
cuboids in place when the aggregate allows it exactly (the patch is a
continuation of the same left fold the algorithms run, so answers stay
bit-identical to recomputation), otherwise exactly the affected lattice
points are evicted.

Reads are versioned: the returned cuboid is correct for the table
version reported alongside it, and an in-flight recompute whose version
was overtaken by a write is served to its waiters (still correct at
*their* snapshot) but never admitted to the cache.
"""

from __future__ import annotations

import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro import obs
from repro.core.bindings import FactRow, FactTable, GroupKey
from repro.core.cube import CubeResult, ExecutionOptions, compute_cube
from repro.core.groupby import Cuboid
from repro.core.incremental import (
    IncrementalCube,
    affected_points,
    ingest_rows,
    retract_rows,
)
from repro.core.lattice import LatticePoint
from repro.core.materialize import ViewSelection, cuboid_sizes, select_views
from repro.core.properties import PropertyOracle
from repro.core.query import (
    Query,
    QueryExplanation,
    QueryResult,
    finish_query,
    kept_axis_name,
    resolve_point_spec,
    resolve_target,
)
from repro.core.rollup import (
    ROLLUP_AGGREGATES,
    derivable,
    rollup_cuboid,
)
from repro.errors import CubeError, InvalidQuery
from repro.obs.events import (
    EventLog,
    EvictionRecord,
    RequestEvent,
    RungDecision,
    WriteEvent,
)
from repro.obs.live import LiveTelemetry
from repro.obs.trace_store import TraceStore
from repro.obs import trace_store as tracing
from repro.serve.cache import CuboidCache
from repro.serve.singleflight import SingleFlight
from repro.timber.stats import CostModel

#: Tier names, in ladder order.
TIERS = ("cache", "view", "rollup", "incremental", "recompute")

#: Aggregates whose finalized cells can absorb an inserted fact exactly
#: (finalize-then-fold equals fold-then-finalize for them).
_PATCH_INSERT = {"COUNT", "SUM", "MIN", "MAX"}

#: Aggregates whose finalized cells can absorb a deletion exactly.  Only
#: COUNT qualifies: its value *is* the group's support, so fully
#: retracted groups are detectable and removed.  SUM could subtract the
#: measure but cannot tell a zero-sum group from a retracted one.
_PATCH_DELETE = {"COUNT"}

# Modeled serve-side costs, on the cost model's simulated-seconds scale.
_CPU_OP_SECONDS = CostModel.cpu_op_cost

#: Serializes engine-traced recomputes across every server in the
#: process: the session tracer is process-global, so two concurrently
#: active private tracers would capture each other's spans.
_ENGINE_TRACE_LOCK = threading.Lock()

PointSpec = Union[LatticePoint, str]


@dataclass(frozen=True)
class ServeStats:
    """A consistent snapshot of the server's counters."""

    requests: int
    tiers: Dict[str, int]
    modeled_cost_seconds: float
    cold_cost_seconds: float
    cache: Dict[str, int]
    cache_used_cells: int
    cache_budget_cells: int
    view_points: int
    stale_views: int
    singleflight_led: int
    singleflight_shared: int
    writes: int
    patched_points: int
    evicted_points: int
    version: int

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered without touching base data
        (anything above the recompute tier)."""
        if not self.requests:
            return 0.0
        return 1.0 - self.tiers.get("recompute", 0) / self.requests

    @property
    def modeled_speedup(self) -> float:
        """Cold recompute cost over the cost actually paid."""
        if self.modeled_cost_seconds <= 0.0:
            return 1.0
        return self.cold_cost_seconds / self.modeled_cost_seconds

    def summary(self) -> str:
        tier_text = ", ".join(
            f"{tier}={self.tiers.get(tier, 0)}"
            for tier in TIERS
            if self.tiers.get(tier, 0)
        )
        return (
            f"{self.requests} requests ({tier_text}); "
            f"hit rate {self.hit_rate:.0%}; modeled "
            f"{self.modeled_cost_seconds:.4f}s vs cold "
            f"{self.cold_cost_seconds:.4f}s "
            f"({self.modeled_speedup:.1f}x)"
        )


@dataclass(frozen=True)
class Explanation:
    """The ladder decision tree for one query, *without* executing it.

    Produced by :meth:`CubeServer.explain`: every rung of the
    sound-source ladder (DESIGN.md Sec. 5c) in order, each with the
    verdict the server would reach right now — taken, rejected (with
    the disjoint/covered proof verdicts where the rollup rung is
    concerned), or not reached because a cheaper rung answers first.
    """

    point: str  #: described lattice point
    kind: str  #: query kind the explanation is for
    version: int  #: table version the plan is valid at
    tier: str  #: the rung the query would resolve at
    rungs: Tuple[RungDecision, ...]

    def render(self) -> str:
        """Human-readable decision tree (the ``x3-serve explain`` body)."""
        lines = [
            f"explain {self.kind} {self.point} @ version "
            f"{self.version} -> {self.tier}"
        ]
        for index, decision in enumerate(self.rungs, start=1):
            if decision.taken:
                mark = "*"
            elif decision.reason.startswith("not reached"):
                mark = "."
            else:
                mark = "x"
            lines.append(
                f"  {index}. {decision.rung:<11} {mark} {decision.reason}"
            )
        lines.append("  (sound-source ladder, DESIGN.md Sec. 5c)")
        return "\n".join(lines)


@dataclass
class _Counters:
    requests: int = 0
    tiers: Dict[str, int] = field(
        default_factory=lambda: {tier: 0 for tier in TIERS}
    )
    modeled_cost_seconds: float = 0.0
    cold_cost_seconds: float = 0.0
    writes: int = 0
    patched_points: int = 0
    evicted_points: int = 0


class CubeServer:
    """Concurrent cube serving over one :class:`FactTable`.

    Args:
        table: the fact table to serve (shared with ``incremental`` when
            one is given).
        oracle: property oracle proving disjointness/coverage for the
            rollup tier and the view advisor; ``None`` is the pessimistic
            oracle, which disables rollups (never unsound, never fast).
        options: engine configuration for recomputes and view
            materialization (algorithm, workers, engine, ...).  The
            ``points`` field is managed by the server and must be unset.
        cache_cells: budget of the cuboid cache, in cells.
        view_cells: when > 0 (and no explicit ``selection``), run the
            Sec. 3.6 advisor with this space budget and materialize its
            chosen views at startup.
        selection: an explicit advisor outcome to materialize.
        incremental: serve reads from this maintained cube as the tier
            before recompute, and route writes through it.  Its table
            must be the served table.
        event_log_capacity: ring-buffer size of the structured request
            log (every query and write emits one typed event).
        telemetry: sliding-window telemetry sink; a default
            :class:`~repro.obs.live.LiveTelemetry` is created when
            omitted.
        trace_store: distributed-trace sink.  When set, every query
            joins (or, at this server's edge, mints) a
            :class:`~repro.obs.propagate.TraceContext`; sampled
            requests record a span tree — ladder walk, single-flight
            links, absorbed engine-worker spans — and stamp their trace
            id on the request/eviction events.  ``None`` (the default)
            keeps the query path exactly as before: zero tracing cost.
        engine_trace: absorb the engine's span records into traced
            recomputes.  The session tracer is process-global, so
            servers whose recomputes may run concurrently in one
            process (cluster replicas behind a scatter pool) must set
            this False — a concurrently active private tracer would
            capture the other threads' spans, breaking both span
            parentage and replay determinism.
    """

    def __init__(
        self,
        table: FactTable,
        oracle: Optional[PropertyOracle] = None,
        *,
        options: Optional[ExecutionOptions] = None,
        cache_cells: int = 4096,
        view_cells: int = 0,
        selection: Optional[ViewSelection] = None,
        incremental: Optional[IncrementalCube] = None,
        event_log_capacity: int = 4096,
        telemetry: Optional[LiveTelemetry] = None,
        trace_store: Optional[TraceStore] = None,
        engine_trace: bool = True,
    ) -> None:
        self.table = table
        self.lattice = table.lattice
        self.oracle = oracle or PropertyOracle.from_flags(
            table.lattice, False, False
        )
        if options is not None and options.points is not None:
            raise CubeError(
                "ExecutionOptions.points is managed by CubeServer; "
                "leave it unset"
            )
        self.options = options or ExecutionOptions()
        if incremental is not None and incremental.table is not table:
            raise CubeError(
                "the IncrementalCube must maintain the served table"
            )
        self._incremental = incremental
        self._aggregate = table.aggregate.function.upper()
        self._lock = threading.RLock()
        self._version = 0
        self._counters = _Counters()
        self.events = EventLog(event_log_capacity)
        self.telemetry = telemetry if telemetry is not None else LiveTelemetry()
        self.trace_store = trace_store
        self.engine_trace = engine_trace
        self._audit_local = threading.local()
        self.cache = CuboidCache(cache_cells, observer=self._on_cache_audit)
        self._flight = SingleFlight()
        # modeled recompute cost per point, measured on first recompute
        self._measured_cost: Dict[LatticePoint, float] = {}
        self._sizes: Optional[Dict[LatticePoint, int]] = None
        self._views: Dict[LatticePoint, Cuboid] = {}
        self._stale_views: Set[LatticePoint] = set()
        self.selection = selection
        if selection is None and view_cells > 0:
            self.selection = select_views(table, self.oracle, view_cells)
        if self.selection is not None and self.selection.chosen:
            self._materialize_views(self.selection.chosen)

    # ------------------------------------------------------------------
    # point resolution helpers
    # ------------------------------------------------------------------
    def resolve_point(self, spec: PointSpec) -> LatticePoint:
        """Accept a lattice point or its description string
        (:class:`InvalidQuery` on anything outside this lattice)."""
        return resolve_point_spec(self.lattice, spec)

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def snapshot(self) -> Tuple[int, Tuple[FactRow, ...]]:
        """The current (version, rows) pair, atomically."""
        with self._lock:
            return self._version, tuple(self.table.rows)

    # ------------------------------------------------------------------
    # cache audit plumbing
    # ------------------------------------------------------------------
    def _on_cache_audit(
        self, kind: str, point: LatticePoint, priority: float, cells: int
    ) -> None:
        """CuboidCache observer: route every cache-state change into the
        current operation's audit trail (when one is being captured) and
        the live telemetry.  Called with the cache lock held."""
        record = EvictionRecord(
            kind=kind,
            point=self.lattice.describe(point),
            priority=priority,
            cells=cells,
            trace_id=tracing.current_span().trace_id_hex,
        )
        sink = getattr(self._audit_local, "sink", None)
        if sink is not None:
            sink.append(record)
        self.telemetry.record_eviction(record)

    @contextmanager
    def _capture_audit(self) -> Iterator[List[EvictionRecord]]:
        """Collect this thread's cache audit records for one operation."""
        records: List[EvictionRecord] = []
        previous = getattr(self._audit_local, "sink", None)
        self._audit_local.sink = records
        try:
            yield records
        finally:
            self._audit_local.sink = previous

    # ------------------------------------------------------------------
    # reads — the CubeBackend query path
    # ------------------------------------------------------------------
    def query(self, query: Query) -> QueryResult:
        """Answer one :class:`Query` (the single read path).

        Resolves the target point (drilldown refines it one step finer
        on the requested axis), walks the sound-source ladder once, and
        wraps the answer in a :class:`QueryResult` carrying the version
        it is exact at plus the full rung trail — the same trail the
        request log records, because it *is* that event's trail.

        When a :class:`TraceStore` is attached and no upstream span is
        bound (a direct caller, not the HTTP/cluster path), the query
        opens its own trace root so standalone serving sessions are
        traceable too.
        """
        store = self.trace_store
        if store is None or tracing.bound():
            return self._query_impl(query)
        with store.root(
            "serve.query", category="serve", kind=query.kind
        ) as root:
            result = self._query_impl(query)
            if root.enabled:
                root.set_sim(result.modeled_seconds).annotate(
                    tier=result.tier, point=result.point
                )
            return result

    def _query_impl(self, query: Query) -> QueryResult:
        self._check_measure(query.measure)
        point = resolve_target(self.lattice, query)
        cuboid, version, event = self._serve(point, kind=query.kind)
        result = finish_query(
            self.lattice,
            query,
            point,
            cuboid,
            (version,),
            event.tier,
            event.rungs,
            event.modeled_seconds,
        )
        binding = tracing.current_span()
        if binding.enabled:
            result = replace(result, trace_id=binding.trace_id_hex)
            if result.deadline_exceeded:
                binding.set_status("deadline")
        return result

    def explain_query(self, query: Query) -> QueryExplanation:
        """The ladder plan for ``query``, without executing it."""
        self._check_measure(query.measure)
        point = resolve_target(self.lattice, query)
        explanation = self.explain(point, kind=query.kind)
        return QueryExplanation(
            backend="serve",
            kind=query.kind,
            point=explanation.point,
            version=(explanation.version,),
            tier=explanation.tier,
            rungs=explanation.rungs,
        )

    def version_token(self) -> Tuple[int, ...]:
        """The current version as a 1-vector (CubeBackend contract)."""
        return (self.version,)

    def _check_measure(self, measure: Optional[str]) -> None:
        if measure is not None and measure.upper() != self._aggregate:
            raise InvalidQuery(
                f"measure {measure!r} does not match this cube's "
                f"aggregate {self._aggregate}"
            )

    # ------------------------------------------------------------------
    # reads — deprecated positional shims
    # ------------------------------------------------------------------
    def _warn_positional(self, name: str) -> None:
        warnings.warn(
            f"CubeServer.{name}(...) positional queries are deprecated; "
            f"pass CubeServer.query(Query(...)) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def cuboid(self, spec: PointSpec) -> Cuboid:
        self._warn_positional("cuboid")
        return self.query(Query(point=spec)).as_cuboid()

    def cell(self, spec: PointSpec, key: GroupKey) -> Optional[float]:
        self._warn_positional("cell")
        return self.query(Query(point=spec, kind="cell", key=key)).as_cell()

    def slice(self, spec: PointSpec, axis_index: int, value: str) -> Cuboid:
        """Classic OLAP slice over the resolved cuboid (``axis_index``
        counts the point's *kept* axes).  Deprecated shim over
        :meth:`query`."""
        self._warn_positional("slice")
        point = self.resolve_point(spec)
        return self.query(
            Query(
                point=point,
                kind="slice",
                axis=kept_axis_name(self.lattice, point, axis_index),
                value=value,
            )
        ).as_cuboid()

    def dice(
        self, spec: PointSpec, predicates: Dict[int, Sequence[str]]
    ) -> Cuboid:
        self._warn_positional("dice")
        point = self.resolve_point(spec)
        return self.query(
            Query(
                point=point,
                kind="dice",
                filters=tuple(
                    (
                        kept_axis_name(self.lattice, point, index),
                        tuple(values),
                    )
                    for index, values in predicates.items()
                ),
            )
        ).as_cuboid()

    # ------------------------------------------------------------------
    # reads — the versioned core
    # ------------------------------------------------------------------
    def cuboid_versioned(
        self, spec: PointSpec, *, kind: str = "cuboid"
    ) -> Tuple[Cuboid, int]:
        """One cuboid plus the table version it is exact for."""
        cuboid, version, _ = self._serve(
            self.resolve_point(spec), kind=kind
        )
        return cuboid, version

    def _serve(
        self, point: LatticePoint, *, kind: str
    ) -> Tuple[Cuboid, int, RequestEvent]:
        """Walk the ladder once; returns the answer, its version, and
        the stamped request event (whose rung trail belongs to exactly
        this request — no racing readback from the log)."""
        described = self.lattice.describe(point)
        started = time.perf_counter()
        tspan = tracing.trace_span(
            "serve.request", category="serve", point=described, kind=kind
        )
        with obs.span(
            "serve.request",
            category="serve",
            point=described,
        ) as span, tspan:
            with self._capture_audit() as audit:
                cuboid, version, tier, cost, rungs = self._resolve(point)
            span.annotate(tier=tier, cells=len(cuboid))
            tspan.annotate(tier=tier, cells=len(cuboid)).set_sim(cost)
        wall = time.perf_counter() - started
        obs.count("x3_serve_requests_total", tier=tier)
        with self._lock:
            self._counters.requests += 1
            self._counters.tiers[tier] += 1
            self._counters.modeled_cost_seconds += cost
            cold = self._cold_cost(point)
            self._counters.cold_cost_seconds += cold
        event = self.events.append(
            RequestEvent(
                seq=0,
                kind=kind,
                point=described,
                tier=tier,
                version=version,
                modeled_seconds=cost,
                cold_seconds=cold,
                wall_seconds=wall,
                cells=len(cuboid),
                rungs=rungs,
                cache_audit=tuple(audit),
                trace_id=tracing.current_span().trace_id_hex,
            )
        )
        self.telemetry.record(event)
        return cuboid, version, event

    # ------------------------------------------------------------------
    # explain — the ladder decision tree, without executing
    # ------------------------------------------------------------------
    def explain(
        self, spec: PointSpec, *, kind: str = "cuboid"
    ) -> Explanation:
        """Which ladder rung *would* answer this query right now, and
        why every cheaper rung was rejected — without executing the
        query, touching cache priorities, or emitting events.

        The verdict agrees with the rung :meth:`cuboid` records in the
        request log when no write intervenes, because both walk the
        same decision procedure over the same locked snapshot.
        """
        point = self.resolve_point(spec)
        rungs: List[RungDecision] = []
        with self._lock:
            version = self._version
            hit = self.cache.peek(point)
            if hit is not None:
                rungs.append(
                    RungDecision(
                        "cache", True,
                        f"resident in cache ({len(hit)} cells)",
                    )
                )
            else:
                rungs.append(RungDecision("cache", False, "not resident"))
                view = self._fresh_view(point)
                if view is not None:
                    rungs.append(
                        RungDecision(
                            "view", True,
                            f"materialized view ({len(view)} cells)",
                        )
                    )
                else:
                    rungs.append(
                        RungDecision("view", False, self._view_reason(point))
                    )
                    source, reason = self._rollup_source(point)
                    if source is not None:
                        rungs.append(RungDecision("rollup", True, reason))
                    else:
                        rungs.append(RungDecision("rollup", False, reason))
                        if self._incremental is not None:
                            rungs.append(
                                RungDecision(
                                    "incremental", True,
                                    "maintained cells answer directly",
                                )
                            )
                        else:
                            rungs.append(
                                RungDecision(
                                    "incremental", False,
                                    "no IncrementalCube attached",
                                )
                            )
                            rungs.append(
                                RungDecision(
                                    "recompute", True,
                                    self._recompute_reason(
                                        len(self.table.rows)
                                    ),
                                )
                            )
        completed = self._finish_rungs(rungs)
        tier = next(d.rung for d in completed if d.taken)
        return Explanation(
            point=self.lattice.describe(point),
            kind=kind,
            version=version,
            tier=tier,
            rungs=completed,
        )

    @staticmethod
    def _recompute_reason(rows: int) -> str:
        return (
            f"engine recompute over a {rows}-row snapshot "
            "(the base operator; always sound)"
        )

    def _view_reason(self, point: LatticePoint) -> str:
        if point in self._stale_views:
            return "materialized view is stale (invalidated by a write)"
        if not self._views:
            return "no materialized views configured"
        return "not among the advisor-chosen views"

    @staticmethod
    def _finish_rungs(
        rungs: List[RungDecision],
    ) -> Tuple[RungDecision, ...]:
        """Pad the decision trail with not-reached entries so every
        event and explanation lists all five rungs, in ladder order."""
        examined = {decision.rung for decision in rungs}
        taken = next(
            (decision.rung for decision in rungs if decision.taken), "?"
        )
        padded = list(rungs)
        for tier in TIERS:
            if tier not in examined:
                padded.append(
                    RungDecision(
                        tier, False, f"not reached (resolved at {taken})"
                    )
                )
        padded.sort(key=lambda decision: TIERS.index(decision.rung))
        return tuple(padded)

    # ------------------------------------------------------------------
    # the sound-source ladder
    # ------------------------------------------------------------------
    def _resolve(
        self, point: LatticePoint
    ) -> Tuple[Cuboid, int, str, float, Tuple[RungDecision, ...]]:
        rungs: List[RungDecision] = []
        with self._lock:
            version = self._version
            hit = self.cache.get(point)
            if hit is not None:
                obs.count("x3_serve_cache_hits_total")
                rungs.append(
                    RungDecision(
                        "cache", True,
                        f"resident in cache ({len(hit)} cells)",
                    )
                )
                return (
                    dict(hit), version, "cache", self._touch_cost(hit),
                    self._finish_rungs(rungs),
                )
            obs.count("x3_serve_cache_misses_total")
            rungs.append(RungDecision("cache", False, "not resident"))
            view = self._fresh_view(point)
            if view is not None:
                rungs.append(
                    RungDecision(
                        "view", True,
                        f"materialized view ({len(view)} cells)",
                    )
                )
                return (
                    dict(view), version, "view", self._touch_cost(view),
                    self._finish_rungs(rungs),
                )
            rungs.append(
                RungDecision("view", False, self._view_reason(point))
            )
            source, rollup_reason = self._rollup_source(point)
            if source is None:
                rungs.append(RungDecision("rollup", False, rollup_reason))
                if self._incremental is not None:
                    rungs.append(
                        RungDecision(
                            "incremental", True,
                            "maintained cells answer directly",
                        )
                    )
                    # Fresh dict from the maintained cells; the cache
                    # gets its own private copy so later in-place
                    # patches never reach the caller's object.
                    cuboid = self._incremental.cuboid(point)
                    cost = self._touch_cost(cuboid)
                    self.cache.put(point, dict(cuboid), cost)
                    return (
                        cuboid, version, "incremental", cost,
                        self._finish_rungs(rungs),
                    )
                rungs.append(
                    RungDecision(
                        "incremental", False, "no IncrementalCube attached"
                    )
                )
                snapshot_rows = list(self.table.rows)
        if source is not None:
            rungs.append(RungDecision("rollup", True, rollup_reason))
            # Rollup arithmetic runs outside the lock on a source copied
            # under it; admit only if no write overtook the derivation.
            source_point, source_cuboid = source
            cuboid, cost = self._rollup_from(
                source_point, source_cuboid, point
            )
            with self._lock:
                if self._version == version:
                    self.cache.put(point, dict(cuboid), cost)
            return (
                cuboid, version, "rollup", cost, self._finish_rungs(rungs)
            )
        rungs.append(
            RungDecision(
                "recompute", True, self._recompute_reason(len(snapshot_rows))
            )
        )
        # Recompute outside the lock, deduplicated per (point, version).
        # The leader publishes its trace span identity into the flight so
        # followers can link their join spans to the span that computed.
        (cuboid, cost), shared, leader_span = self._flight.do_meta(
            (point, version),
            lambda publish: self._recompute(snapshot_rows, point, publish),
        )
        if shared:
            obs.count("x3_serve_singleflight_shared_total")
            if tracing.current_span().enabled and leader_span:
                with tracing.trace_span(
                    "serve.singleflight.join",
                    category="serve",
                    point=self.lattice.describe(point),
                    link_trace_id=leader_span[0],
                    link_span_id=leader_span[1],
                ):
                    pass
        else:
            # Only the flight leader admits, and the cache receives a
            # private copy: the flight result itself stays immutable, so
            # every waiter's dict() copy below is race-free even after
            # a concurrent write starts patching the cached copy.
            with self._lock:
                if self._version == version:
                    self.cache.put(point, dict(cuboid), cost)
                    if point in self._stale_views:
                        self._views[point] = dict(cuboid)
                        self._stale_views.discard(point)
        return (
            dict(cuboid), version, "recompute", cost,
            self._finish_rungs(rungs),
        )

    def _fresh_view(self, point: LatticePoint) -> Optional[Cuboid]:
        if point in self._stale_views:
            return None
        return self._views.get(point)

    def _rollup_source(
        self, point: LatticePoint
    ) -> Tuple[Optional[Tuple[LatticePoint, Cuboid]], str]:
        """Pick the smallest sound cached/view source for ``point``.

        Returns ``((source, private copy), reason)`` on success or
        ``(None, reason)`` where the reason carries the per-candidate
        rejection verdicts of the Sec. 2 disjoint/covered proofs.  Call
        with the server lock held; the copy lets the rollup arithmetic
        itself run outside it.
        """
        if self._aggregate not in ROLLUP_AGGREGATES:
            return None, (
                f"{self._aggregate} is not distributive; finalized "
                "cells cannot be re-aggregated"
            )
        best: Optional[Tuple[int, Cuboid, LatticePoint, str]] = None
        candidates: List[Tuple[LatticePoint, Cuboid]] = [
            (source, cuboid)
            for source, cuboid in self._views.items()
            if source not in self._stale_views
        ]
        for source in self.cache.points():
            cuboid = self.cache.peek(source)
            if cuboid is not None:
                candidates.append((source, cuboid))
        rejected: List[str] = []
        for source, cuboid in candidates:
            if source == point:
                continue
            ok, why = derivable(self.lattice, source, point, self.oracle)
            if not ok:
                rejected.append(
                    f"{self.lattice.describe(source)}: {why} "
                    f"[disjoint={self.oracle.disjoint(source)} "
                    f"covered={self.oracle.covered(source)}]"
                )
                continue
            if best is None or len(cuboid) < best[0]:
                best = (len(cuboid), cuboid, source, why)
        if best is None:
            if not rejected:
                return None, (
                    "no resident cuboid (cache or view) to derive from"
                )
            shown = "; ".join(rejected[:3])
            more = len(rejected) - 3
            if more > 0:
                shown += f"; ... {more} more"
            return None, (
                f"no sound source among {len(rejected)} resident "
                f"cuboid(s): {shown}"
            )
        size, source_cuboid, source, why = best
        reason = (
            f"derive from {self.lattice.describe(source)} "
            f"({size} cells): {why} [disjoint=True covered=True]"
        )
        return (source, dict(source_cuboid)), reason

    def _rollup_from(
        self,
        source: LatticePoint,
        source_cuboid: Cuboid,
        point: LatticePoint,
    ) -> Tuple[Cuboid, float]:
        """Derive ``point`` from an already-copied source cuboid."""
        with obs.span(
            "serve.rollup",
            category="serve",
            source=self.lattice.describe(source),
            target=self.lattice.describe(point),
        ), tracing.trace_span(
            "serve.rollup",
            category="serve",
            source=self.lattice.describe(source),
            target=self.lattice.describe(point),
        ):
            out = rollup_cuboid(
                self.lattice, source_cuboid, source, point
            )
        obs.count("x3_serve_rollups_total")
        cost = (len(source_cuboid) + len(out)) * _CPU_OP_SECONDS
        return out, cost

    def _recompute(
        self,
        rows: List[FactRow],
        point: LatticePoint,
        publish: Optional[Callable[[Any], None]] = None,
    ) -> Tuple[Cuboid, float]:
        snapshot = FactTable(self.lattice, rows, self.table.aggregate)
        tspan = tracing.trace_span(
            "serve.recompute",
            category="serve",
            point=self.lattice.describe(point),
            rows=len(rows),
        )
        # Only request a private engine trace when this server is
        # allowed to (``engine_trace``; cluster replicas are not — their
        # recomputes run concurrently and the session tracer is
        # process-global) and no session tracer is already active (with
        # one active the run joins the session trace, whose records
        # would be the whole session, not this recompute).
        want_engine_trace = (
            tspan.enabled and self.engine_trace and not obs.enabled()
        )
        options = self.options.replace(points=(point,))
        if want_engine_trace:
            options = options.replace(trace=True)
        with obs.span(
            "serve.recompute",
            category="serve",
            point=self.lattice.describe(point),
            rows=len(rows),
        ), tspan:
            if publish is not None and tspan.enabled:
                publish((tspan.trace_id_hex, tspan.span_id_hex))
            if want_engine_trace:
                # Serialize traced computes: two private tracers active
                # at once would capture each other's spans.
                with _ENGINE_TRACE_LOCK:
                    result: CubeResult = compute_cube(snapshot, options)
                if result.trace is not None:
                    tspan.absorb(
                        [
                            record
                            for record in result.trace.records
                            if record.category
                            in ("engine", "algorithm", "timber")
                        ]
                    )
            else:
                result = compute_cube(snapshot, options)
            tspan.set_sim(result.cost.simulated_seconds)
        cost = result.cost.simulated_seconds
        with self._lock:
            self._measured_cost[point] = cost
        return result.cuboids[point], cost

    # ------------------------------------------------------------------
    # modeled costs
    # ------------------------------------------------------------------
    @staticmethod
    def _touch_cost(cuboid: Cuboid) -> float:
        return max(1, len(cuboid)) * _CPU_OP_SECONDS

    def _cold_cost(self, point: LatticePoint) -> float:
        """What answering from base would have cost (modeled)."""
        measured = self._measured_cost.get(point)
        if measured is not None:
            return measured
        # Deterministic estimate before any measurement exists: one scan
        # of the fact table charging one op per row-axis touch.
        kept = len(self.lattice.kept_axes(point))
        return len(self.table.rows) * (kept + 1) * _CPU_OP_SECONDS

    # ------------------------------------------------------------------
    # views and warmup
    # ------------------------------------------------------------------
    def _materialize_views(
        self, points: Sequence[LatticePoint]
    ) -> None:
        with obs.span(
            "serve.materialize_views",
            category="serve",
            views=len(points),
        ):
            result = compute_cube(
                self.table, self.options.replace(points=tuple(points))
            )
        share = result.cost.simulated_seconds / max(1, len(points))
        for view_point in points:
            self._views[view_point] = dict(result.cuboids[view_point])
            self._measured_cost.setdefault(view_point, share)

    def sizes(self) -> Dict[LatticePoint, int]:
        """Exact per-point cell counts (cached; recomputed after writes
        only when asked again)."""
        with self._lock:
            if self._sizes is None:
                self._sizes = cuboid_sizes(self.table, self.lattice)
            return dict(self._sizes)

    def warm(
        self,
        points: Optional[Sequence[PointSpec]] = None,
        budget_cells: Optional[int] = None,
    ) -> List[LatticePoint]:
        """Pre-fill the cache with the best cuboids that fit.

        Candidates (default: the whole lattice) are ranked by modeled
        benefit density — recompute cost saved per cell — and admitted
        greedily within ``budget_cells`` (default: the cache budget).
        The chosen cuboids are computed in one engine run, so a parallel
        configuration warms in parallel.  Returns the warmed points.
        """
        budget = (
            self.cache.budget_cells if budget_cells is None else budget_cells
        )
        candidates = (
            [self.resolve_point(spec) for spec in points]
            if points is not None
            else list(self.lattice.points())
        )
        sizes = self.sizes()
        with self._lock:
            # Rank against one consistent snapshot of view/cost state;
            # the version check before admission below bounds staleness.
            fresh_views = frozenset(
                view
                for view in self._views
                if view not in self._stale_views
            )
            cold_costs = {p: self._cold_cost(p) for p in candidates}
        ranked = sorted(
            candidates,
            key=lambda p: (
                -cold_costs[p] / max(1, sizes[p]),
                p,
            ),
        )
        chosen: List[LatticePoint] = []
        space = 0
        for candidate in ranked:
            size = max(1, sizes[candidate])
            if space + size > budget:
                continue
            if candidate in fresh_views:
                continue  # already served above the cache tier
            chosen.append(candidate)
            space += size
        if not chosen:
            return []
        with self._lock:
            version = self._version
            snapshot_rows = list(self.table.rows)
        snapshot = FactTable(self.lattice, snapshot_rows, self.table.aggregate)
        with obs.span(
            "serve.warm", category="serve", points=len(chosen)
        ):
            result = compute_cube(
                snapshot, self.options.replace(points=tuple(chosen))
            )
        share = result.cost.simulated_seconds / len(chosen)
        warmed: List[LatticePoint] = []
        with self._lock:
            if self._version != version:
                return []  # a write overtook the warmup; stay cold
            for point in chosen:
                self._measured_cost.setdefault(point, share)
                if self.cache.put(
                    point,
                    dict(result.cuboids[point]),
                    self._measured_cost[point],
                ):
                    warmed.append(point)
        return warmed

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, rows: Sequence[FactRow]) -> int:
        """Ingest delta facts; returns the new table version."""
        return self._write(list(rows), op="insert")

    def delete(self, rows: Sequence[FactRow]) -> int:
        """Retract delta facts; returns the new table version.

        With an attached :class:`IncrementalCube` the aggregate must be
        invertible (its rule); without one, any aggregate works — the
        affected cuboids are evicted and recomputed on demand.
        """
        return self._write(list(rows), op="delete")

    def _write(self, rows: List[FactRow], op: str) -> int:
        patchable = (
            _PATCH_INSERT if op == "insert" else _PATCH_DELETE
        )
        started = time.perf_counter()
        with self._capture_audit() as audit:
            with self._lock, obs.span(
                f"serve.{op}", category="serve", rows=len(rows)
            ):
                if self._incremental is not None:
                    if op == "insert":
                        self._incremental.insert(rows)
                    else:
                        self._incremental.delete(rows)
                elif op == "insert":
                    ingest_rows(self.table, rows)
                else:
                    retract_rows(self.table, rows)
                patched_before = self._counters.patched_points
                evicted_before = self._counters.evicted_points
                if self._aggregate in patchable:
                    self._patch_cached(rows, op=op)
                else:
                    self._evict_affected(rows)
                patched = self._counters.patched_points - patched_before
                evicted = self._counters.evicted_points - evicted_before
                version = self._finish_write()
        self.events.append(
            WriteEvent(
                seq=0,
                op=op,
                rows=len(rows),
                version=version,
                patched_points=patched,
                evicted_points=evicted,
                wall_seconds=time.perf_counter() - started,
                cache_audit=tuple(audit),
            )
        )
        return version

    def _finish_write(self) -> int:
        self._version += 1
        self._counters.writes += 1
        self._sizes = None  # size census is stale now
        obs.count("x3_serve_writes_total")
        return self._version

    def _cached_points(self) -> List[LatticePoint]:
        return self.cache.points() + [
            point
            for point in self._views
            if point not in self._stale_views
        ]

    def _patch_cached(self, rows: List[FactRow], op: str) -> None:
        """Fold/unfold a delta batch into every resident cuboid."""
        affected = affected_points(self.table, rows, self._cached_points())
        for point in affected:
            self.cache.mutate(
                point, lambda cuboid, p=point: self._apply_delta(
                    cuboid, rows, p, op
                )
            )
            if point in self._views and point not in self._stale_views:
                self._apply_delta(self._views[point], rows, point, op)
            self._counters.patched_points += 1
        obs.count(
            "x3_serve_patched_points_total", len(affected), op=op
        )

    def _apply_delta(
        self,
        cuboid: Cuboid,
        rows: List[FactRow],
        point: LatticePoint,
        op: str,
    ) -> None:
        name = self._aggregate
        for row in rows:
            for key in self.table.key_combinations(row, point):
                if op == "insert":
                    if key not in cuboid:
                        cuboid[key] = self._first_value(row.measure)
                    elif name == "COUNT":
                        cuboid[key] += 1.0
                    elif name == "SUM":
                        cuboid[key] += row.measure
                    elif name == "MIN":
                        cuboid[key] = min(cuboid[key], row.measure)
                    else:  # MAX
                        cuboid[key] = max(cuboid[key], row.measure)
                else:  # delete — only COUNT reaches here
                    remaining = cuboid.get(key, 0.0) - 1.0
                    if remaining <= 0.0:
                        cuboid.pop(key, None)
                    else:
                        cuboid[key] = remaining

    def _first_value(self, measure: float) -> float:
        if self._aggregate == "COUNT":
            return 1.0
        return measure  # SUM/MIN/MAX of a single fact

    def _evict_affected(self, rows: List[FactRow]) -> None:
        """Evict exactly the lattice points the delta touches."""
        affected = affected_points(
            self.table,
            rows,
            self.cache.points() + list(self._views),
        )
        for point in affected:
            if self.cache.invalidate(point):
                self._counters.evicted_points += 1
            if point in self._views:
                self._stale_views.add(point)
        obs.count("x3_serve_invalidated_points_total", len(affected))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def prometheus(self) -> str:
        """Prometheus exposition text of the live serving telemetry,
        with the sliding-window gauges refreshed at call time."""
        from repro.obs.export import prometheus_text

        self.telemetry.refresh_gauges()
        return prometheus_text(self.telemetry.registry)

    def stats(self) -> ServeStats:
        with self._lock:
            return ServeStats(
                requests=self._counters.requests,
                tiers=dict(self._counters.tiers),
                modeled_cost_seconds=self._counters.modeled_cost_seconds,
                cold_cost_seconds=self._counters.cold_cost_seconds,
                cache=self.cache.stats.as_dict(),
                cache_used_cells=self.cache.used_cells,
                cache_budget_cells=self.cache.budget_cells,
                view_points=len(self._views),
                stale_views=len(self._stale_views),
                singleflight_led=self._flight.led_total,
                singleflight_shared=self._flight.shared_total,
                writes=self._counters.writes,
                patched_points=self._counters.patched_points,
                evicted_points=self._counters.evicted_points,
                version=self._version,
            )
