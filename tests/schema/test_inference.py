"""Unit + property tests for DTD inference from instances."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.dtd import Cardinality
from repro.schema.inference import infer_dtd
from repro.xmlmodel.nodes import Document, Element
from repro.xmlmodel.parser import parse


class TestInference:
    def test_regular_children_are_one(self):
        doc = parse("<r><a><x/></a><a><x/></a></r>")
        dtd = infer_dtd([doc])
        assert dtd.get("a").children["x"] is Cardinality.ONE

    def test_missing_child_optional(self):
        doc = parse("<r><a><x/></a><a/></r>")
        dtd = infer_dtd([doc])
        assert dtd.get("a").children["x"] is Cardinality.OPTIONAL

    def test_late_first_appearance_is_optional(self):
        # x first appears on the SECOND <a>: earlier instances lacked it.
        doc = parse("<r><a/><a><x/></a></r>")
        dtd = infer_dtd([doc])
        assert dtd.get("a").children["x"] is Cardinality.OPTIONAL

    def test_repeated_child_plus(self):
        doc = parse("<r><a><x/><x/></a><a><x/></a></r>")
        dtd = infer_dtd([doc])
        assert dtd.get("a").children["x"] is Cardinality.PLUS

    def test_repeated_and_missing_star(self):
        doc = parse("<r><a><x/><x/></a><a/></r>")
        dtd = infer_dtd([doc])
        assert dtd.get("a").children["x"] is Cardinality.STAR

    def test_attribute_required_vs_implied(self):
        doc = parse('<r><a id="1" x="9"/><a id="2"/></r>')
        dtd = infer_dtd([doc])
        decl = dtd.get("a")
        assert decl.attributes["id"].required
        assert not decl.attributes["x"].required

    def test_text_detection(self):
        doc = parse("<r><a>hi</a><b/></r>")
        dtd = infer_dtd([doc])
        assert dtd.get("a").has_text
        assert not dtd.get("b").has_text

    def test_multiple_documents(self):
        one = parse("<r><a><x/></a></r>")
        two = parse("<r><a/></r>")
        dtd = infer_dtd([one, two])
        assert dtd.get("a").children["x"] is Cardinality.OPTIONAL

    def test_root_recorded(self):
        dtd = infer_dtd([parse("<warehouse><f/></warehouse>")])
        assert dtd.root == "warehouse"

    def test_figure1_inference(self):
        from repro.datagen.publications import figure1_document

        dtd = infer_dtd([figure1_document()])
        pub = dtd.get("publication")
        assert pub.children["author"].may_be_absent  # pub3 nests authors
        assert pub.children["publisher"].may_be_absent
        assert pub.children["year"].may_repeat  # pub2 has two years


# ----------------------------------------------------------------------
# property: the inferred DTD never claims a property the data violates
# ----------------------------------------------------------------------

@st.composite
def random_documents(draw):
    n_parents = draw(st.integers(min_value=1, max_value=6))
    root = Element("root")
    for _ in range(n_parents):
        parent = root.make_child("p")
        for tag in ("x", "y"):
            count = draw(st.integers(min_value=0, max_value=3))
            for _ in range(count):
                parent.make_child(tag)
    return Document(root)


@given(random_documents())
@settings(max_examples=60, deadline=None)
def test_inferred_cardinalities_are_sound(doc):
    dtd = infer_dtd([doc])
    decl = dtd.get("p")
    for node in doc.find_all("p"):
        counts = {}
        for child in node.children:
            counts[child.tag] = counts.get(child.tag, 0) + 1
        for tag, card in (decl.children if decl else {}).items():
            observed = counts.get(tag, 0)
            if observed == 0:
                assert card.may_be_absent
            if observed > 1:
                assert card.may_repeat
