"""Trace and metrics exporters.

Three formats, all text, all dependency-free:

- :func:`chrome_trace_json` — the Chrome ``trace_event`` format
  (``chrome://tracing`` / Perfetto): one ``"X"`` complete event per
  span, with wall microseconds on the timeline and the simulated-time
  base tucked into ``args``.
- :func:`collapsed_stacks` — Brendan Gregg's folded-stack format
  (``root;child;leaf <weight>``), weight = wall microseconds, directly
  consumable by ``flamegraph.pl`` or speedscope.
- :func:`prometheus_text` — the Prometheus exposition format for the
  metrics registry (``# TYPE`` headers, label sets, histogram buckets).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
)
from repro.obs.tracer import SpanRecord

#: ``# HELP`` text for the well-known series; anything else gets a
#: generated line so every exported family is self-describing.
HELP_TEXTS: Dict[str, str] = {
    "x3_serve_requests_total": "Requests served, by ladder rung.",
    "x3_serve_request_modeled_seconds": (
        "Modeled (simulated) latency of served requests."
    ),
    "x3_serve_request_wall_seconds": (
        "Host wall latency of served requests."
    ),
    "x3_serve_slo_violations_total": (
        "Requests over the modeled-latency SLO threshold."
    ),
    "x3_serve_cache_audit_total": (
        "Cache-state changes, by audit kind."
    ),
    "x3_serve_window_modeled_latency_seconds": (
        "Sliding-window modeled latency quantiles."
    ),
    "x3_serve_window_wall_latency_seconds": (
        "Sliding-window wall latency quantiles."
    ),
    "x3_serve_window_requests": "Requests inside the sliding window.",
    "x3_serve_window_hit_ratio": (
        "Fraction of window requests answered above the recompute rung."
    ),
    "x3_serve_window_eviction_churn": (
        "Cache-state changes inside the sliding window."
    ),
    "x3_serve_window_slo_burn_rate": (
        "Error-budget burn rate over the sliding window (1.0 spends the"
        " budget exactly)."
    ),
    "x3_trace_started_total": "Requests that minted or joined a trace.",
    "x3_trace_sampled_total": "Requests head-sampled into the store.",
    "x3_trace_retained_total": (
        "Traces tail-retained (error / deadline / p99-slow)."
    ),
}


def _split_thread(label: str) -> tuple:
    """``pid-123/worker-0`` -> (123, "worker-0"); best-effort parse."""
    pid = os.getpid()
    name = label or "main"
    if label.startswith("pid-"):
        head, _, tail = label[4:].partition("/")
        try:
            pid = int(head)
        except ValueError:
            pass
        name = tail or "main"
    return pid, name


def chrome_trace_events(
    records: Sequence[SpanRecord],
) -> List[Dict[str, object]]:
    """Spans as ``trace_event`` dicts (complete events + thread names)."""
    tids: Dict[str, int] = {}
    events: List[Dict[str, object]] = []
    for record in records:
        pid, thread_name = _split_thread(record.thread)
        if record.thread not in tids:
            tids[record.thread] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tids[record.thread],
                    "args": {"name": thread_name},
                }
            )
        args: Dict[str, object] = dict(record.attrs)
        if record.sim_duration:
            args["sim_seconds"] = round(record.sim_duration, 9)
        events.append(
            {
                "name": record.name,
                "cat": record.category or "default",
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": pid,
                "tid": tids[record.thread],
                "args": args,
            }
        )
    return events


def chrome_trace_json(
    records: Sequence[SpanRecord],
    metrics: Optional[MetricsRegistry] = None,
) -> str:
    """The full Chrome/Perfetto trace document."""
    document: Dict[str, object] = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        document["otherData"] = {"metrics": metrics.as_dict()}
    return json.dumps(document, indent=None, separators=(",", ":"))


def collapsed_stacks(records: Sequence[SpanRecord]) -> str:
    """Folded flamegraph lines: ``a;b;c <wall microseconds>``."""
    by_id = {record.span_id: record for record in records}
    lines: List[str] = []
    for record in records:
        stack: List[str] = []
        cursor: Optional[SpanRecord] = record
        seen = set()
        while cursor is not None and cursor.span_id not in seen:
            seen.add(cursor.span_id)
            stack.append(cursor.name.replace(";", "_"))
            cursor = (
                by_id.get(cursor.parent_id)
                if cursor.parent_id is not None
                else None
            )
        stack.reverse()
        # Self time: the span's duration minus its children's — folded
        # stacks weight each frame by exclusive time.
        child_time = sum(
            child.duration
            for child in records
            if child.parent_id == record.span_id
        )
        weight = max(0.0, record.duration - child_time)
        micros = int(weight * 1e6)
        if micros > 0:
            lines.append(";".join(stack) + f" {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition format (text/plain version 0.0.4)."""
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for metric in registry.collect():
        if metric.name not in seen_types:
            seen_types[metric.name] = metric.kind
            help_text = HELP_TEXTS.get(
                metric.name, f"{metric.name} ({metric.kind})."
            )
            lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{metric.name}{metric.label_string} "
                f"{_prom_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            base_labels = list(metric.labels)
            # bucket_counts are already cumulative (observe() increments
            # every bucket whose bound covers the value).
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                bucket_labels = base_labels + [("le", _prom_value(bound))]
                inner = ",".join(
                    f'{key}="{escape_label_value(value)}"'
                    for key, value in bucket_labels
                )
                lines.append(
                    f"{metric.name}_bucket{{{inner}}} {count}"
                )
            lines.append(
                f"{metric.name}_sum{metric.label_string} "
                f"{_prom_value(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{metric.label_string} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
