"""BUC/TD columnar-vs-dict benchmarks: the kernel duel.

The acceptance signal is :func:`repro.bench.harness.run_buc_td_duel`:
each of BUC and TD runs its legacy dict path and its columnar kernel on
the same dense / covered / disjoint table, results validated
bit-identical against the dict run.  CI runs the duel at a reduced fact
count to stay inside the job budget; the committed ``BENCH_engine.json``
/ ``BENCH_figures.json`` artifacts carry the full 10^5-fact duel, where
both modeled speedups clear 3x.

The modeled speedup is deterministic (code-range slicing and counting
bucketing replace the dict path's per-row dict churn and comparison
sorts), so it gets the hard bar — matching the perf gate's 2.0 absolute
floors with headroom.  Wall clock depends on the host, so its bar is
conservative.
"""

import pytest

from repro.bench.harness import run_buc_td_duel

CI_DUEL_FACTS = 20_000
MODELED_TARGET = 3.0
WALL_TARGET = 1.5


@pytest.fixture(scope="module")
def duel():
    return run_buc_td_duel(CI_DUEL_FACTS)


@pytest.mark.parametrize("prefix", ["buc", "td"])
def test_duel_results_bit_identical(duel, prefix):
    runs, summary = duel
    algorithm = prefix.upper()
    columnar = next(
        run
        for run in runs
        if run.algorithm == algorithm and run.encoding != "dict"
    )
    assert columnar.correct is True
    assert summary[f"{prefix}_identical"] is True


@pytest.mark.parametrize("prefix", ["buc", "td"])
def test_duel_modeled_speedup(duel, prefix):
    _, summary = duel
    assert summary[f"{prefix}_modeled_speedup"] >= MODELED_TARGET, summary


@pytest.mark.parametrize("prefix", ["buc", "td"])
def test_duel_wall_speedup(duel, prefix):
    _, summary = duel
    assert summary[f"{prefix}_wall_speedup"] >= WALL_TARGET, summary


def test_duel_times_both_encodings(duel):
    runs, _ = duel
    assert {(run.algorithm, run.encoding) for run in runs} == {
        ("BUC", "dict"),
        ("BUC", "auto"),
        ("TD", "dict"),
        ("TD", "auto"),
    }
