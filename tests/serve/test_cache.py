"""Unit tests for the cost-aware cuboid cache (GreedyDual-Size)."""

import pytest

from repro.errors import CubeError
from repro.serve.cache import CuboidCache, entry_totals

P1 = (0, 0)
P2 = (0, 1)
P3 = (1, 0)
P4 = (1, 1)


def cuboid_of(cells):
    return {("k%d" % i,): float(i) for i in range(cells)}


class TestBasics:
    def test_negative_budget_rejected(self):
        with pytest.raises(CubeError):
            CuboidCache(-1)

    def test_put_then_get(self):
        cache = CuboidCache(10)
        cuboid = cuboid_of(3)
        assert cache.put(P1, cuboid, cost=1.0)
        assert cache.get(P1) == cuboid
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_miss_counts(self):
        cache = CuboidCache(10)
        assert cache.get(P1) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_peek_touches_nothing(self):
        cache = CuboidCache(10)
        cache.put(P1, cuboid_of(2), cost=1.0)
        before = cache.stats.as_dict()
        assert cache.peek(P1) == cuboid_of(2)
        assert cache.peek(P2) is None
        assert cache.stats.as_dict() == before

    def test_contains_len_points(self):
        cache = CuboidCache(10)
        cache.put(P1, cuboid_of(2), cost=1.0)
        cache.put(P2, cuboid_of(3), cost=1.0)
        assert P1 in cache and P2 in cache and P3 not in cache
        assert len(cache) == 2
        assert set(cache.points()) == {P1, P2}
        assert entry_totals(cache) == (2, 5)

    def test_empty_cuboid_counts_one_cell(self):
        cache = CuboidCache(10)
        cache.put(P1, {}, cost=1.0)
        assert cache.used_cells == 1

    def test_zero_budget_rejects_everything(self):
        cache = CuboidCache(0)
        assert not cache.put(P1, cuboid_of(1), cost=100.0)
        assert cache.stats.rejections == 1
        assert len(cache) == 0


class TestReplacement:
    def test_put_replaces_same_point(self):
        cache = CuboidCache(10)
        cache.put(P1, cuboid_of(2), cost=1.0)
        cache.put(P1, cuboid_of(5), cost=1.0)
        assert len(cache) == 1
        assert cache.used_cells == 5
        assert cache.peek(P1) == cuboid_of(5)

    def test_oversized_put_also_drops_stale_version(self):
        cache = CuboidCache(4)
        cache.put(P1, cuboid_of(2), cost=1.0)
        assert not cache.put(P1, cuboid_of(9), cost=1.0)
        assert P1 not in cache
        assert cache.used_cells == 0

    def test_uniform_costs_degrade_to_lru(self):
        cache = CuboidCache(2)
        cache.put(P1, cuboid_of(1), cost=1.0)
        cache.put(P2, cuboid_of(1), cost=1.0)
        cache.get(P1)  # refresh P1: P2 is now least valuable
        cache.put(P3, cuboid_of(1), cost=1.0)
        assert P1 in cache and P3 in cache and P2 not in cache
        assert cache.stats.evictions == 1

    def test_expensive_entry_survives_cheap_newcomers(self):
        cache = CuboidCache(2)
        cache.put(P1, cuboid_of(1), cost=100.0)
        cache.put(P2, cuboid_of(1), cost=0.1)
        cache.put(P3, cuboid_of(1), cost=0.1)  # evicts P2, not P1
        assert P1 in cache and P3 in cache and P2 not in cache

    def test_worthless_newcomer_rejects_itself(self):
        cache = CuboidCache(2)
        cache.put(P1, cuboid_of(1), cost=10.0)
        cache.put(P2, cuboid_of(1), cost=10.0)
        admitted = cache.put(P3, cuboid_of(2), cost=0.001)
        assert not admitted
        assert P1 in cache and P2 in cache and P3 not in cache
        assert cache.stats.rejections == 1
        assert cache.stats.evictions == 0

    def test_clock_rises_with_evictions(self):
        """After churn, long-resident entries eventually age out: the
        clock inherits evicted priorities so newcomers outrank entries
        that were valuable long ago but never touched since."""
        cache = CuboidCache(2)
        cache.put(P1, cuboid_of(1), cost=5.0)
        cache.put(P2, cuboid_of(1), cost=1.0)
        for _ in range(8):  # churn the second slot with modest costs
            cache.put(P3, cuboid_of(1), cost=2.0)
            cache.put(P4, cuboid_of(1), cost=2.0)
        assert P1 not in cache  # aged out despite the highest cost

    def test_eviction_accounting_is_exact(self):
        cache = CuboidCache(7)
        cache.put(P1, cuboid_of(3), cost=1.0)
        cache.put(P2, cuboid_of(3), cost=1.0)
        cache.put(P3, cuboid_of(4), cost=5.0)
        assert cache.used_cells <= 7
        assert cache.used_cells == sum(
            info.size for info in cache.entries()
        )


class TestInvalidation:
    def test_invalidate(self):
        cache = CuboidCache(10)
        cache.put(P1, cuboid_of(4), cost=1.0)
        assert cache.invalidate(P1)
        assert not cache.invalidate(P1)
        assert cache.used_cells == 0
        assert cache.stats.invalidations == 1

    def test_clear(self):
        cache = CuboidCache(10)
        cache.put(P1, cuboid_of(2), cost=1.0)
        cache.put(P2, cuboid_of(2), cost=1.0)
        assert cache.clear() == 2
        assert len(cache) == 0 and cache.used_cells == 0


class TestMutate:
    def test_mutate_patches_in_place(self):
        cache = CuboidCache(10)
        cache.put(P1, {("a",): 1.0}, cost=1.0)

        def patch(cuboid):
            cuboid[("a",)] += 1.0
            cuboid[("b",)] = 1.0

        assert cache.mutate(P1, patch)
        assert cache.peek(P1) == {("a",): 2.0, ("b",): 1.0}
        assert cache.used_cells == 2
        assert cache.stats.patches == 1

    def test_mutate_absent_point(self):
        cache = CuboidCache(10)
        assert not cache.mutate(P1, lambda cuboid: None)

    def test_mutate_growth_rebalances_budget(self):
        cache = CuboidCache(4)
        cache.put(P1, cuboid_of(2), cost=0.5)
        cache.put(P2, cuboid_of(2), cost=50.0)

        def grow(cuboid):
            for i in range(3):
                cuboid[("new%d" % i,)] = 1.0

        survived = cache.mutate(P1, grow)
        assert cache.used_cells <= 4
        # P1 grew to 5 cells; something had to go, and the cheap grown
        # entry is the natural victim.
        assert not survived
        assert P2 in cache


class TestEntryInfo:
    def test_entries_report_sizes_costs_hits(self):
        cache = CuboidCache(10)
        cache.put(P1, cuboid_of(3), cost=2.0)
        cache.get(P1)
        cache.get(P1)
        (info,) = list(cache.entries())
        assert info.point == P1
        assert info.size == 3
        assert info.cost == 2.0
        assert info.hits == 2
        assert info.priority > 0

    def test_stats_dict_keys(self):
        cache = CuboidCache(10)
        assert set(cache.stats.as_dict()) == {
            "hits",
            "misses",
            "insertions",
            "evictions",
            "rejections",
            "invalidations",
            "patches",
        }


class TestAuditObserver:
    """Every cache-state change reaches the observer — evictions are
    never silent (they feed the serving layer's request log)."""

    def observed(self, budget):
        records = []
        cache = CuboidCache(
            budget,
            observer=lambda kind, point, priority, cells: records.append(
                (kind, point, priority, cells)
            ),
        )
        return cache, records

    def test_admission(self):
        cache, records = self.observed(10)
        cache.put(P1, cuboid_of(3), cost=1.0)
        assert len(records) == 1
        kind, point, priority, cells = records[0]
        assert (kind, point, cells) == ("admitted", P1, 3)
        assert priority > 0

    def test_budget_eviction_reports_victim_priority_and_cells(self):
        cache, records = self.observed(4)
        cache.put(P1, cuboid_of(3), cost=0.1)
        (_, _, admit_priority, _) = records[0]
        records.clear()
        cache.put(P2, cuboid_of(3), cost=50.0)
        kinds = [record[0] for record in records]
        assert kinds == ["evicted", "admitted"]
        kind, point, priority, cells = records[0]
        assert point == P1
        assert cells == 3
        assert priority == admit_priority
        assert cache.stats.evictions == 1

    def test_rejection_of_the_newcomer(self):
        cache, records = self.observed(4)
        cache.put(P1, cuboid_of(3), cost=50.0)
        records.clear()
        cache.put(P2, cuboid_of(3), cost=0.01)
        assert [record[0] for record in records] == ["rejected"]
        assert records[0][1] == P2
        assert cache.stats.rejections == 1

    def test_oversize_rejection(self):
        cache, records = self.observed(2)
        cache.put(P1, cuboid_of(5), cost=1.0)
        assert [record[0] for record in records] == ["rejected"]
        assert records[0][3] == 5

    def test_invalidation(self):
        cache, records = self.observed(10)
        cache.put(P1, cuboid_of(2), cost=1.0)
        records.clear()
        cache.invalidate(P1)
        assert [record[0] for record in records] == ["invalidated"]
        assert records[0][1] == P1
        assert records[0][3] == 2

    def test_mutate_eviction_is_audited(self):
        cache, records = self.observed(4)
        cache.put(P1, cuboid_of(2), cost=0.5)
        cache.put(P2, cuboid_of(2), cost=50.0)
        records.clear()

        def grow(cuboid):
            for i in range(3):
                cuboid[("new%d" % i,)] = 1.0

        cache.mutate(P1, grow)
        evicted = [record for record in records if record[0] == "evicted"]
        assert evicted and evicted[0][1] == P1

    def test_no_observer_is_fine(self):
        cache = CuboidCache(4)
        cache.put(P1, cuboid_of(3), cost=1.0)
        cache.put(P2, cuboid_of(3), cost=50.0)
        assert cache.stats.evictions == 1
