"""Unit tests for the tag postings index."""

from repro.timber.buffer_pool import BufferPool
from repro.timber.node_store import NodeStore
from repro.timber.pages import Disk
from repro.timber.stats import CostModel
from repro.timber.tag_index import TagIndex
from repro.xmlmodel.parser import parse


def build(docs, page_capacity=4):
    disk = Disk(page_capacity=page_capacity)
    cost = CostModel()
    pool = BufferPool(disk, cost, capacity_pages=64)
    store = NodeStore(disk, pool)
    for doc in docs:
        store.load_document(parse(doc))
    index = TagIndex(disk, pool)
    index.build(store)
    return index, cost


class TestBuild:
    def test_tags_sorted(self):
        index, _ = build(["<a><c/><b/></a>"])
        assert index.tags() == ["a", "b", "c"]

    def test_cardinality(self):
        index, _ = build(["<a><b/><b/><c/></a>"])
        assert index.cardinality("b") == 2
        assert index.cardinality("missing") == 0

    def test_postings_sorted_by_start(self):
        index, _ = build(["<a><b/><c><b/></c></a>"])
        postings = index.scan_list("b")
        assert [posting.start for posting in postings] == sorted(
            posting.start for posting in postings
        )

    def test_postings_across_documents(self):
        index, _ = build(["<a><b/></a>", "<a><b/><b/></a>"])
        postings = index.scan_list("b")
        assert [posting.doc_id for posting in postings] == [0, 1, 1]

    def test_rebuild_replaces(self):
        disk = Disk()
        cost = CostModel()
        pool = BufferPool(disk, cost, capacity_pages=8)
        store = NodeStore(disk, pool)
        store.load_document(parse("<a><b/></a>"))
        index = TagIndex(disk, pool)
        index.build(store)
        store.load_document(parse("<a><b/></a>"))
        index.build(store)
        assert index.cardinality("b") == 2


class TestPostings:
    def test_contains(self):
        index, _ = build(["<a><b><c/></b></a>"])
        a = index.scan_list("a")[0]
        c = index.scan_list("c")[0]
        assert a.contains(c)
        assert not c.contains(a)

    def test_is_parent_of(self):
        index, _ = build(["<a><b><c/></b></a>"])
        a = index.scan_list("a")[0]
        b = index.scan_list("b")[0]
        c = index.scan_list("c")[0]
        assert a.is_parent_of(b)
        assert not a.is_parent_of(c)

    def test_cross_document_no_containment(self):
        index, _ = build(["<a/>", "<a/>"])
        first, second = index.scan_list("a")
        assert not first.contains(second)

    def test_scan_many_merged_order(self):
        index, _ = build(["<a><b/><c/><b/></a>"])
        merged = list(index.scan_many(["b", "c"]))
        keys = [posting.sort_key for posting in merged]
        assert keys == sorted(keys)
        assert len(merged) == 3

    def test_cold_index_scans_charge_io(self):
        disk = Disk(page_capacity=2)
        cost = CostModel()
        pool = BufferPool(disk, cost, capacity_pages=64)
        store = NodeStore(disk, pool)
        store.load_document(parse("<a>" + "<b/>" * 20 + "</a>"))
        index = TagIndex(disk, pool)
        index.build(store)
        pool.drop_all()
        cost.reset()
        index.scan_list("b")
        assert cost.io.page_reads > 0
