"""The HTTP front door over the unified :class:`CubeBackend` API.

Sub-modules:

- :mod:`repro.server.model` — the logical cube model: named cubes,
  dimensions and level hierarchies as JSON metadata, bound to physical
  lattice coordinates at registration time;
- :mod:`repro.server.http` — the transport-independent API core
  (:class:`X3Api`) plus the stdlib ``ThreadingHTTPServer`` wrapper
  (:class:`X3HttpServer`), with bearer-token auth and bounded-admission
  backpressure;
- :mod:`repro.server.loadgen` — the deterministic closed-loop load
  generator that drives a live front door and reports latency
  distributions on both time bases;
- :mod:`repro.server.cli` — the ``x3-server`` entry point.
"""

from repro.server.http import (
    AdmissionController,
    ApiResponse,
    TenantAuth,
    X3Api,
    X3HttpServer,
)
from repro.server.loadgen import LoadGenerator, LoadReport
from repro.server.model import (
    BoundCube,
    CubeCatalog,
    LogicalCube,
    LogicalDimension,
)

__all__ = [
    "AdmissionController",
    "ApiResponse",
    "BoundCube",
    "CubeCatalog",
    "LoadGenerator",
    "LoadReport",
    "LogicalCube",
    "LogicalDimension",
    "TenantAuth",
    "X3Api",
    "X3HttpServer",
]
