"""Unit tests for the Sec. 4.4 scaling driver."""

import pytest

from repro.bench.scaling import (
    ScalingResult,
    format_scaling,
    run_scaling,
)


@pytest.fixture(scope="module")
def result() -> ScalingResult:
    return run_scaling(
        scales=(60, 240), n_axes=3,
        algorithms=("COUNTER", "BUC", "TD", "TDOPT"),
        memory_entries=1500,
    )


class TestScaling:
    def test_times_grow_with_scale(self, result):
        for algorithm, points in result.series.items():
            assert points[-1][1] > points[0][1], algorithm

    def test_optimized_gain_grows_with_scale(self, result):
        gains = result.optimization_gain("TD", "TDOPT")
        assert gains[-1][1] > gains[0][1]

    def test_growth_factor(self, result):
        assert result.growth_factor("BUC") > 1.0

    def test_counter_thrash_onset(self):
        """COUNTER begins multi-pass at a smaller axis count when the
        input grows (Sec. 4.4's last observation)."""
        result = run_scaling(
            scales=(60, 600), n_axes=4,
            algorithms=("COUNTER",), memory_entries=1500,
        )
        passes = dict(result.passes["COUNTER"])
        assert passes[600] > passes[60]

    def test_format(self, result):
        text = format_scaling(result)
        assert "scaling" in text
        assert "BUC" in text
        assert "60" in text and "240" in text
