"""Columnar fact storage: the dictionary-encoded twin of :class:`FactTable`.

The dict engine iterates :class:`~repro.core.bindings.FactRow` objects one
at a time and re-derives per-axis value lists per (row, point) pair.  This
module stores the same annotated fact table *by column*:

- per axis, a **dictionary** mapping each distinct grouping value to a
  small integer code (first-seen order, so encode/decode is stable);
- per axis, flat ``array('q')`` **code** and ``array('Q')`` **mask**
  columns holding every annotated value of every row, addressed through a
  CSR-style ``array('q')`` **offsets** column (row ``i`` owns the slice
  ``offsets[i]:offsets[i+1]``) — multi-valued axes cost nothing extra;
- per axis, a per-row **union mask** (OR of the row's value masks).  For a
  structural state ``s``, bit ``s`` of the union mask is the row's
  participation bit, so ``union & (1 << s) == 0`` *is* the paper's
  coverage gap — the null mask falls out of the encoding;
- a typed ``array('d')`` **measure** column and two ``array('q')``
  fact-id columns, so decoding is lossless.

Everything lives in stdlib :mod:`array` buffers exposed through
:class:`memoryview` accessors; there is no third-party dependency.

The encoded table answers ``key_combinations`` / ``participates`` with
exactly the :class:`FactTable` semantics (Sec. 3.3 combinatorial
incrementing, coverage gaps excluded), and the single-pass sweep kernel
(:mod:`repro.core.algorithms.columnar_sweep`) reads the per-state
:class:`StateView` projections this module caches.

Page accounting: the encoded form is what a columnar scan reads.
Dictionary codes pack roughly eight times denser than the pointer-rich
row form (``ENTRIES_PER_PAGE = 128``), so the simulated storage layer
charges ``COLUMNAR_ENTRIES_PER_PAGE = 1024`` entries per page — the
compression win real columnar stores get from dictionary encoding.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bindings import AnnotatedValue, FactRow, FactTable, GroupKey
from repro.core.lattice import CubeLattice, LatticePoint

#: Encoded entries per simulated 8 KB page.  The row layout packs 128
#: entries per page (:data:`repro.core.algorithms.base.ENTRIES_PER_PAGE`);
#: dictionary-encoded integer columns pack 8x denser.
COLUMNAR_ENTRIES_PER_PAGE = 1024


@dataclass(frozen=True)
class AxisColumn:
    """One axis of the encoded table.

    Attributes:
        dictionary: distinct values in first-seen order; the code of a
            value is its index here.
        codes: one code per annotated value, rows concatenated.
        masks: the structural-state bitmask of each annotated value,
            parallel to ``codes``.
        offsets: CSR offsets, length ``n_rows + 1``; row ``i`` owns
            ``codes[offsets[i]:offsets[i+1]]``.
        union_masks: per row, the OR of its value masks (participation
            bitset over structural states).
    """

    dictionary: Tuple[str, ...]
    codes: "array[int]"
    masks: "array[int]"
    offsets: "array[int]"
    union_masks: "array[int]"

    @property
    def radix(self) -> int:
        """Dictionary size, floored at 1 so mixed-radix math stays sane."""
        return max(1, len(self.dictionary))


@dataclass(frozen=True)
class StateView:
    """An axis projected onto one structural state.

    Exactly one of ``flat`` / ``per_row`` is set.  When every row binds at
    most one distinct code under the state, ``flat`` holds one code per
    row with ``-1`` for a coverage gap (the vectorizable fast path).
    Otherwise ``per_row`` holds each row's distinct codes in first-seen
    order (the Sec. 3.3 cross-product path).
    """

    flat: Optional["array[int]"]
    per_row: Optional[Tuple[Tuple[int, ...], ...]]
    missing: int

    def codes_of(self, row_index: int) -> Tuple[int, ...]:
        """The row's distinct codes under this state (may be empty)."""
        if self.per_row is not None:
            return self.per_row[row_index]
        assert self.flat is not None
        code = self.flat[row_index]
        return () if code < 0 else (code,)


class ColumnarFactTable:
    """The columnar encoding of a :class:`FactTable`.

    Build once with :meth:`from_table` (or the memoizing
    :meth:`FactTable.columnar` accessor); the encoding is immutable.
    """

    def __init__(
        self,
        lattice: CubeLattice,
        aggregate: object,
        columns: Tuple[AxisColumn, ...],
        measures: "array[float]",
        fact_hi: "array[int]",
        fact_lo: "array[int]",
    ) -> None:
        self.lattice = lattice
        self.aggregate = aggregate
        self.columns = columns
        self.measures = measures
        self.fact_hi = fact_hi
        self.fact_lo = fact_lo
        self.n_rows = len(measures)
        self._views: Dict[Tuple[int, int], StateView] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: FactTable) -> "ColumnarFactTable":
        """Encode a fact table column-by-column (one pass over the rows)."""
        lattice = table.lattice
        axis_count = lattice.axis_count
        dictionaries: List[Dict[str, int]] = [{} for _ in range(axis_count)]
        codes: List["array[int]"] = [array("q") for _ in range(axis_count)]
        masks: List["array[int]"] = [array("Q") for _ in range(axis_count)]
        offsets: List["array[int]"] = [
            array("q", [0]) for _ in range(axis_count)
        ]
        unions: List["array[int]"] = [array("Q") for _ in range(axis_count)]
        measures: "array[float]" = array("d")
        fact_hi: "array[int]" = array("q")
        fact_lo: "array[int]" = array("q")
        for row in table.rows:
            measures.append(row.measure)
            fact_hi.append(row.fact_id[0])
            fact_lo.append(row.fact_id[1])
            for position in range(axis_count):
                dictionary = dictionaries[position]
                axis_codes = codes[position]
                axis_masks = masks[position]
                union = 0
                for annotated in row.axes[position]:
                    code = dictionary.setdefault(
                        annotated.value, len(dictionary)
                    )
                    axis_codes.append(code)
                    axis_masks.append(annotated.mask)
                    union |= annotated.mask
                offsets[position].append(len(axis_codes))
                unions[position].append(union)
        columns = tuple(
            AxisColumn(
                dictionary=tuple(dictionaries[position]),
                codes=codes[position],
                masks=masks[position],
                offsets=offsets[position],
                union_masks=unions[position],
            )
            for position in range(axis_count)
        )
        return cls(
            lattice, table.aggregate, columns, measures, fact_hi, fact_lo
        )

    # ------------------------------------------------------------------
    # state projections (what the sweep kernel reads)
    # ------------------------------------------------------------------
    def state_view(self, axis_position: int, state_index: int) -> StateView:
        """The axis projected onto one structural state (cached)."""
        key = (axis_position, state_index)
        view = self._views.get(key)
        if view is None:
            view = self._build_view(axis_position, state_index)
            self._views[key] = view
        return view

    def _build_view(self, axis_position: int, state_index: int) -> StateView:
        column = self.columns[axis_position]
        bit = 1 << state_index
        offsets = column.offsets
        codes = column.codes
        masks = column.masks
        unions = column.union_masks
        flat_codes: List[int] = []
        per_row: List[Tuple[int, ...]] = []
        multi = False
        missing = 0
        for i in range(self.n_rows):
            if not unions[i] & bit:
                flat_codes.append(-1)
                per_row.append(())
                missing += 1
                continue
            distinct: List[int] = []
            for j in range(offsets[i], offsets[i + 1]):
                if masks[j] & bit:
                    code = codes[j]
                    if code not in distinct:
                        distinct.append(code)
            per_row.append(tuple(distinct))
            flat_codes.append(distinct[0])
            if len(distinct) > 1:
                multi = True
        if multi:
            return StateView(flat=None, per_row=tuple(per_row), missing=missing)
        return StateView(
            flat=array("q", flat_codes), per_row=None, missing=missing
        )

    def null_mask(self, axis_position: int, state_index: int) -> bytes:
        """One byte per row: 1 where the row has *no* value under the
        state (the paper's coverage gap), else 0."""
        bit = 1 << state_index
        unions = self.columns[axis_position].union_masks
        return bytes(
            0 if unions[i] & bit else 1 for i in range(self.n_rows)
        )

    # ------------------------------------------------------------------
    # FactTable-compatible semantics
    # ------------------------------------------------------------------
    def values_under(
        self, row_index: int, axis_position: int, state_index: int
    ) -> Tuple[str, ...]:
        """Distinct values of one row's axis under a structural state, in
        first-seen order — :meth:`FactRow.values_under`, decoded."""
        dictionary = self.columns[axis_position].dictionary
        return tuple(
            dictionary[code]
            for code in self.state_view(axis_position, state_index).codes_of(
                row_index
            )
        )

    def key_combinations(
        self, row_index: int, point: LatticePoint
    ) -> List[GroupKey]:
        """All group keys the row contributes to at a lattice point —
        exactly :meth:`FactTable.key_combinations` on the decoded row."""
        per_axis: List[Sequence[str]] = []
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            values = self.values_under(row_index, position, state)
            if not values:
                return []
            per_axis.append(values)
        if not per_axis:
            return [()]
        keys: List[GroupKey] = [()]
        for values in per_axis:
            keys = [key + (value,) for key in keys for value in values]
        return keys

    def participates(self, row_index: int, point: LatticePoint) -> bool:
        """Does the row appear in any group of the cuboid at ``point``?"""
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            bit = 1 << state
            if not self.columns[position].union_masks[row_index] & bit:
                return False
        return True

    # ------------------------------------------------------------------
    # lossless decode
    # ------------------------------------------------------------------
    def decode_row(self, row_index: int) -> FactRow:
        """Reconstruct the original row, duplicates and order included."""
        axes: List[Tuple[AnnotatedValue, ...]] = []
        for column in self.columns:
            start = column.offsets[row_index]
            stop = column.offsets[row_index + 1]
            axes.append(
                tuple(
                    AnnotatedValue(
                        column.dictionary[column.codes[j]], column.masks[j]
                    )
                    for j in range(start, stop)
                )
            )
        return FactRow(
            fact_id=(self.fact_hi[row_index], self.fact_lo[row_index]),
            measure=self.measures[row_index],
            axes=tuple(axes),
        )

    def to_fact_table(self) -> FactTable:
        """Decode the whole table (round-trip partner of
        :meth:`from_table`)."""
        from repro.core.aggregates import AggregateSpec

        aggregate = self.aggregate
        assert isinstance(aggregate, AggregateSpec)
        return FactTable(
            self.lattice,
            [self.decode_row(i) for i in range(self.n_rows)],
            aggregate,
        )

    # ------------------------------------------------------------------
    # storage accounting and raw buffer access
    # ------------------------------------------------------------------
    @property
    def encoded_entries(self) -> int:
        """Abstract entry footprint of the encoded table: one entry per
        row (measure + ids) plus one per annotated value plus the
        dictionaries — the columnar mirror of ``table_entries``."""
        return self.n_rows + sum(
            len(column.codes) + len(column.dictionary)
            for column in self.columns
        )

    @property
    def encoded_pages(self) -> int:
        """Simulated pages one sequential scan of the encoding reads."""
        return max(
            1, -(-self.encoded_entries // COLUMNAR_ENTRIES_PER_PAGE)
        )

    def measures_view(self) -> memoryview:
        """Zero-copy view of the measure column."""
        return memoryview(self.measures)

    def codes_view(self, axis_position: int) -> memoryview:
        """Zero-copy view of an axis's code column."""
        return memoryview(self.columns[axis_position].codes)

    def offsets_view(self, axis_position: int) -> memoryview:
        """Zero-copy view of an axis's CSR offsets column."""
        return memoryview(self.columns[axis_position].offsets)

    # ------------------------------------------------------------------
    # introspection (goldens, docs, debugging)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Shape summary of the encoding."""
        return {
            "n_rows": self.n_rows,
            "n_axes": len(self.columns),
            "encoded_entries": self.encoded_entries,
            "encoded_pages": self.encoded_pages,
            "cardinalities": [
                len(column.dictionary) for column in self.columns
            ],
            "value_counts": [len(column.codes) for column in self.columns],
        }

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able dump of the full physical layout (golden tests).

        Per axis: the dictionary, the code/mask/offset columns, and one
        null-mask row per structural state.  Layout changes show up as a
        golden diff, so they are deliberate.
        """
        axes: List[Dict[str, object]] = []
        for position, states in enumerate(self.lattice.axis_states):
            column = self.columns[position]
            axes.append(
                {
                    "axis": states.axis.name,
                    "dictionary": list(column.dictionary),
                    "codes": list(column.codes),
                    "masks": list(column.masks),
                    "offsets": list(column.offsets),
                    "union_masks": list(column.union_masks),
                    "null_masks": {
                        states.describe(index): list(
                            self.null_mask(position, index)
                        )
                        for index in range(len(states.states))
                    },
                }
            )
        return {
            "n_rows": self.n_rows,
            "measures": list(self.measures),
            "fact_ids": [
                [self.fact_hi[i], self.fact_lo[i]]
                for i in range(self.n_rows)
            ],
            "axes": axes,
        }

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ColumnarFactTable rows={self.n_rows} "
            f"axes={len(self.columns)} entries={self.encoded_entries}>"
        )
