"""The acceptance harness: a 4-shard / 2-replica cluster under seeded
chaos (crashes, stragglers, stale replicas, interleaved writes) answers
100/100 queries *identically* to a serial NAIVE recompute over the rows
the write log implies at each answer's version."""

import pytest

from repro.cluster import ChaosEngine, ClusterCoordinator, get_profile
from repro.core.bindings import FactTable
from repro.core.cube import ExecutionOptions, compute_cube
from repro.serve.cli import sample_points
from repro.testing import small_workload

N_REQUESTS = 100
N_SHARDS = 4
N_REPLICAS = 2
CHAOS_SEED = 11  # chosen so the heavy profile injects every fault kind


def reference_cuboid(table, rows, point):
    snapshot = FactTable(table.lattice, list(rows), table.aggregate)
    result = compute_cube(
        snapshot, ExecutionOptions(algorithm="NAIVE", points=(point,))
    )
    return result.cuboids[point]


@pytest.mark.slow
class TestChaosStress:
    def test_degraded_cluster_equals_serial_naive(self):
        workload = small_workload()
        table = workload.fact_table()
        oracle = workload.oracle(table)
        chaos = ChaosEngine(get_profile("heavy"), seed=CHAOS_SEED)
        points = sample_points(table.lattice, N_REQUESTS, seed=13)
        rows = list(table.rows)
        removed = []

        with ClusterCoordinator(
            table,
            N_SHARDS,
            N_REPLICAS,
            oracle=oracle,
            chaos=chaos,
            hedge_deadline_seconds=0.05,
        ) as cluster:
            matched = 0
            reference_cache = {}
            epoch = 0
            for index, point in enumerate(points):
                if index and index % 20 == 0:
                    # Interleave writes so stale-replica faults have
                    # versions to lag behind: alternate deleting a
                    # slice and re-inserting it.
                    if index % 40 == 20:
                        batch = rows[:4]
                        cluster.delete(batch)
                        removed = batch
                        rows = rows[4:]
                    else:
                        cluster.insert(removed)
                        rows = rows + removed
                        removed = []
                    epoch += 1
                cuboid, vector = cluster.cuboid_versioned(point)
                key = (epoch, point)
                if key not in reference_cache:
                    reference_cache[key] = reference_cuboid(
                        table, rows, point
                    )
                assert cuboid == reference_cache[key], (
                    f"request {index} ({table.lattice.describe(point)}) "
                    f"diverged from serial NAIVE at {vector}"
                )
                matched += 1
            assert matched == N_REQUESTS

            # The run must actually have been degraded: the seed is
            # pinned so the heavy profile injects at least one crash
            # and one straggler (plus stale writes).
            assert chaos.injected["crash"] >= 1
            assert chaos.injected["straggle"] >= 1
            assert chaos.injected["stale"] >= 1

            # ... and the event log must show the cluster *deciding*
            # to degrade: failover past the crashed replica, hedges on
            # stragglers, syncs on stale replicas.
            kinds = {e.kind for e in cluster.events.cluster_events()}
            assert "crash" in kinds
            assert "failover" in kinds
            assert "straggle" in kinds
            stats = cluster.stats()
            assert stats.failovers >= 1
            assert stats.requests == N_REQUESTS

    def test_chaos_replay_is_deterministic(self):
        workload = small_workload()
        table = workload.fact_table()
        oracle = workload.oracle(table)
        points = sample_points(table.lattice, 40, seed=13)

        def run():
            chaos = ChaosEngine(get_profile("heavy"), seed=CHAOS_SEED)
            with ClusterCoordinator(
                table,
                N_SHARDS,
                N_REPLICAS,
                oracle=oracle,
                chaos=chaos,
                hedge_deadline_seconds=0.05,
            ) as cluster:
                answers = [
                    tuple(sorted(cluster.cuboid(point).items()))
                    for point in points
                ]
                trail = [
                    (e.kind, e.shard, e.replica)
                    for e in cluster.events.cluster_events()
                ]
                return answers, trail, chaos.summary()

        assert run() == run()
