"""Unit tests for the Figure 1 database and its scalable variant."""

from repro.datagen.publications import (
    QUERY1_TEXT,
    query1,
    random_publications,
)
from repro.xmlmodel.nodes import validate_regions


class TestFigure1:
    def test_four_publications(self, fig1_doc):
        pubs = fig1_doc.find_all("publication")
        assert [pub.attrs["id"] for pub in pubs] == ["1", "2", "3", "4"]

    def test_pub1_two_authors(self, fig1_doc):
        pub1 = fig1_doc.find_all("publication")[0]
        names = [n.text for n in pub1.find_descendants("name")]
        assert names == ["John", "Jane"]

    def test_pub2_two_editions(self, fig1_doc):
        pub2 = fig1_doc.find_all("publication")[1]
        years = [y.text for y in pub2.find_children("year")]
        assert years == ["2004", "2005"]

    def test_pub3_no_publisher_nested_author(self, fig1_doc):
        pub3 = fig1_doc.find_all("publication")[2]
        assert pub3.find_descendants("publisher") == []
        assert pub3.find_children("author") == []
        assert len(pub3.find_descendants("author")) == 1

    def test_pub4_pubdata_wrapper(self, fig1_doc):
        pub4 = fig1_doc.find_all("publication")[3]
        assert pub4.find_children("year") == []
        pubdata = pub4.find_children("pubData")[0]
        assert pubdata.find_children("publisher")
        assert pubdata.find_children("year")

    def test_regions_valid(self, fig1_doc):
        validate_regions(fig1_doc)

    def test_query1_text_parses_to_query1(self):
        from repro.core.xq_parser import parse_x3_query

        parsed = parse_x3_query(QUERY1_TEXT)
        built = query1()
        assert parsed.fact_tag == built.fact_tag
        assert [a.steps for a in parsed.axes] == [a.steps for a in built.axes]
        assert [a.relaxations for a in parsed.axes] == [
            a.relaxations for a in built.axes
        ]


class TestRandomPublications:
    def test_deterministic(self):
        one = random_publications(30, seed=5)
        two = random_publications(30, seed=5)
        from repro.xmlmodel.serializer import serialize

        assert serialize(one) == serialize(two)

    def test_count(self):
        doc = random_publications(25)
        assert len(doc.find_all("publication")) == 25

    def test_zero_knobs_regular(self):
        doc = random_publications(
            40,
            p_missing_publisher=0,
            p_extra_author=0,
            p_nested_author=0,
            p_pubdata=0,
            p_second_year=0,
        )
        for pub in doc.find_all("publication"):
            assert len(pub.find_children("author")) == 1
            assert len(pub.find_children("publisher")) == 1
            assert len(pub.find_children("year")) == 1

    def test_knobs_inject_heterogeneity(self):
        doc = random_publications(
            120, seed=3,
            p_missing_publisher=0.5, p_nested_author=0.5, p_second_year=0.5,
        )
        pubs = doc.find_all("publication")
        assert any(not pub.find_descendants("publisher") for pub in pubs)
        assert any(pub.find_children("authors") for pub in pubs)
        assert any(len(pub.find_children("year")) == 2 for pub in pubs)
