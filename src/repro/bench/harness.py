"""Run cube algorithms over workloads and collect measurements.

Each run reports two time measures:

- ``simulated_seconds`` — the deterministic cost model (CPU operations +
  page I/O), which is what reproduces the *shape* of the paper's figures
  independent of host speed;
- ``wall_seconds`` — real elapsed time of the Python execution, captured
  for completeness and used by the pytest-benchmark targets.

Parallel runs (``workers > 1``) additionally report the engine's modeled
critical path (``par_sim_seconds``: the busiest worker's simulated
seconds) and merge time, so speedups are measurable even on single-core
hosts where wall-clock parallelism cannot show up.

Runs optionally validate results against the NAIVE oracle; for the
optimized variants on property-violating inputs the validation is
*expected* to fail (the paper timed those runs anyway, Fig. 9 — so do
we, recording ``correct=False``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.algorithms.registry import COLUMNAR_CAPABLE
from repro.core.bindings import FactTable
from repro.core.cube import CubeResult, ExecutionOptions, compute_cube
from repro.core.properties import PropertyOracle
from repro.datagen.workload import Workload, WorkloadConfig, build_workload


@dataclass
class AlgorithmRun:
    """One (workload, algorithm) measurement."""

    workload: str
    algorithm: str
    n_axes: int
    n_facts: int
    simulated_seconds: float
    wall_seconds: float
    cells: int
    passes: int
    correct: Optional[bool] = None
    dnf: bool = False
    workers: int = 1
    engine: str = "serial"
    par_sim_seconds: float = 0.0
    merge_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    encoding: str = "auto"
    #: The full cube result, kept only when ``run_algorithm`` is told to
    #: (``keep_result=True``) so a duel can reuse one run's output as the
    #: next run's reference without recomputing.  Never serialized.
    result: Optional[CubeResult] = field(
        default=None, repr=False, compare=False
    )

    @property
    def modeled_speedup(self) -> float:
        """Total simulated work over the schedule's critical path."""
        if self.par_sim_seconds <= 0.0:
            return 1.0
        return self.simulated_seconds / self.par_sim_seconds

    def as_row(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "algorithm": self.algorithm,
            "axes": self.n_axes,
            "facts": self.n_facts,
            "sim_seconds": round(self.simulated_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "cells": self.cells,
            "passes": self.passes,
            "correct": self.correct,
            "dnf": self.dnf,
            "workers": self.workers,
            "engine": self.engine,
            "par_sim_seconds": round(self.par_sim_seconds, 6),
            "merge_seconds": round(self.merge_seconds, 6),
            "queue_wait_seconds": round(self.queue_wait_seconds, 6),
            "encoding": self.encoding,
        }


def run_algorithm(
    table: FactTable,
    algorithm: Optional[str] = None,
    oracle: Optional[PropertyOracle] = None,
    memory_entries: Optional[int] = None,
    reference: Optional[CubeResult] = None,
    workload_name: str = "",
    n_facts: int = 0,
    dnf_simulated_limit: Optional[float] = None,
    options: Optional[ExecutionOptions] = None,
    keep_result: bool = False,
) -> AlgorithmRun:
    """Time one algorithm over an extracted fact table.

    Pass either an ``algorithm`` name plus the oracle/memory shorthands,
    or a full :class:`ExecutionOptions` (which wins and may carry
    ``workers``/``engine`` for parallel runs).  ``keep_result=True``
    attaches the :class:`CubeResult` to the run so it can serve as the
    reference for a later run without a second compute.
    """
    if options is None:
        options = ExecutionOptions(
            algorithm=algorithm or "NAIVE",
            oracle=oracle,
            memory_entries=memory_entries,
        )
    elif algorithm is not None:
        options = options.replace(algorithm=algorithm)
    begin = time.perf_counter()
    result = compute_cube(table, options)
    wall = time.perf_counter() - begin
    correct = (
        result.same_contents(reference) if reference is not None else None
    )
    dnf = (
        dnf_simulated_limit is not None
        and result.simulated_seconds > dnf_simulated_limit
    )
    metrics = result.metrics
    return AlgorithmRun(
        workload=workload_name,
        algorithm=options.algorithm,
        n_axes=table.lattice.axis_count,
        n_facts=n_facts or len(table),
        simulated_seconds=result.simulated_seconds,
        wall_seconds=wall,
        cells=result.total_cells(),
        passes=result.passes,
        correct=correct,
        dnf=dnf,
        workers=options.workers,
        engine=metrics.engine if metrics is not None else options.effective_engine,
        par_sim_seconds=result.cost.parallel_simulated_seconds,
        merge_seconds=result.cost.merge_seconds,
        queue_wait_seconds=(
            metrics.queue_wait_seconds if metrics is not None else 0.0
        ),
        encoding=options.encoding,
        result=result if keep_result else None,
    )


def prepare_columnar(table: FactTable, algorithms: Sequence[str]) -> None:
    """Materialize the columnar encoding before timing starts.

    The paper's protocol materializes the witness file up front and
    excludes it from the cubing measurement; the columnar encoding is
    the same kind of load-time artifact (built once per table, reused by
    every run), so benchmark preparation builds it here.  The *modeled*
    cost still charges the encode on every run (see
    :class:`~repro.core.algorithms.columnar_sweep.ColumnarSweepAlgorithm`),
    so simulated seconds never depend on this warm-up.
    """
    columnar_users = ("COLUMNAR", "AUTO") + COLUMNAR_CAPABLE
    if any(name in columnar_users for name in algorithms):
        table.columnar()


def run_workload(
    workload: Workload,
    algorithms: Sequence[str],
    memory_entries: Optional[int] = None,
    validate: bool = False,
    dnf_simulated_limit: Optional[float] = None,
    workers: int = 1,
    engine: str = "auto",
    encodings: Sequence[str] = ("auto",),
) -> List[AlgorithmRun]:
    """Extract once, then time each algorithm (the paper's protocol).

    ``encodings`` times every algorithm once per entry — the duel
    figures pass ``("dict", "auto")`` to race the legacy kernels against
    the columnar ones on the same extracted table.
    """
    table = workload.fact_table()
    oracle = workload.oracle(table)
    prepare_columnar(table, algorithms)
    reference = (
        compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        if validate
        else None
    )
    runs: List[AlgorithmRun] = []
    for algorithm in algorithms:
        for encoding in encodings:
            runs.append(
                run_algorithm(
                    table,
                    options=ExecutionOptions(
                        algorithm=algorithm,
                        oracle=oracle,
                        memory_entries=memory_entries,
                        workers=workers,
                        engine=engine,
                        encoding=encoding,
                    ),
                    reference=reference,
                    workload_name=workload.name,
                    n_facts=len(table),
                    dnf_simulated_limit=dnf_simulated_limit,
                )
            )
    return runs


def run_config(
    config: WorkloadConfig,
    algorithms: Sequence[str],
    memory_entries: Optional[int] = None,
    validate: bool = False,
    dnf_simulated_limit: Optional[float] = None,
    workers: int = 1,
    engine: str = "auto",
    encodings: Sequence[str] = ("auto",),
) -> List[AlgorithmRun]:
    """Build the workload from its config, then run."""
    return run_workload(
        build_workload(config),
        algorithms,
        memory_entries=memory_entries,
        validate=validate,
        dnf_simulated_limit=dnf_simulated_limit,
        workers=workers,
        engine=engine,
        encodings=encodings,
    )


SMOKE_ALGORITHMS = ("NAIVE", "COUNTER", "COLUMNAR", "BUC", "TD")
SMOKE_CONFIG = WorkloadConfig(kind="treebank", n_facts=80, n_axes=3)

#: The columnar-vs-dict duel setting: the dense low-dimensional regime
#: where the advisor picks the counter strategy, at 10^5 facts.
DUEL_FACTS = 100_000
DUEL_CONFIG = WorkloadConfig(
    kind="treebank",
    n_facts=DUEL_FACTS,
    n_axes=3,
    density="dense",
    coverage=True,
    disjoint=True,
)


def run_smoke(workers: int = 4, engine: str = "thread") -> List[AlgorithmRun]:
    """The CI smoke benchmark: a small workload, serial and parallel.

    Every serial run is validated against NAIVE; every parallel run must
    be result-identical to its serial twin (the engine's contract), so a
    ``correct=False`` row fails the smoke.
    """
    workload = build_workload(SMOKE_CONFIG)
    table = workload.fact_table()
    oracle = workload.oracle(table)
    prepare_columnar(table, SMOKE_ALGORITHMS)
    reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
    runs: List[AlgorithmRun] = []
    for algorithm in SMOKE_ALGORITHMS:
        for n_workers in (1, workers):
            runs.append(
                run_algorithm(
                    table,
                    options=ExecutionOptions(
                        algorithm=algorithm,
                        oracle=oracle,
                        workers=n_workers,
                        engine="serial" if n_workers == 1 else engine,
                    ),
                    reference=reference,
                    workload_name=workload.name,
                    n_facts=len(table),
                )
            )
    return runs


def run_columnar_duel(
    n_facts: int = DUEL_FACTS,
    memory_entries: Optional[int] = None,
) -> "tuple[List[AlgorithmRun], Dict[str, object]]":
    """The columnar-vs-dict duel: COUNTER and COLUMNAR, head to head.

    One workload (dense / covered / disjoint — the regime where the
    advisor picks the counter strategy), both kernels timed serially on
    the same extracted table with the encoding pre-built (see
    :func:`prepare_columnar`).  The COLUMNAR run is validated against
    the COUNTER result, so a kernel divergence fails the smoke.

    Returns ``(runs, summary)`` where ``summary`` carries the modeled
    and wall speedups the artifact and perf gate report.
    """
    config = WorkloadConfig(
        kind=DUEL_CONFIG.kind,
        n_facts=n_facts,
        n_axes=DUEL_CONFIG.n_axes,
        density=DUEL_CONFIG.density,
        coverage=DUEL_CONFIG.coverage,
        disjoint=DUEL_CONFIG.disjoint,
    )
    workload = build_workload(config)
    table = workload.fact_table()
    oracle = workload.oracle(table)
    prepare_columnar(table, ("COLUMNAR",))
    counter = run_algorithm(
        table,
        options=ExecutionOptions(
            algorithm="COUNTER", oracle=oracle, memory_entries=memory_entries
        ),
        workload_name=workload.name,
        n_facts=len(table),
        keep_result=True,
    )
    columnar = run_algorithm(
        table,
        options=ExecutionOptions(
            algorithm="COLUMNAR", oracle=oracle, memory_entries=memory_entries
        ),
        reference=counter.result,
        workload_name=workload.name,
        n_facts=len(table),
    )
    summary = {
        "workload": workload.name,
        "facts": len(table),
        "counter_sim_seconds": round(counter.simulated_seconds, 6),
        "columnar_sim_seconds": round(columnar.simulated_seconds, 6),
        "counter_wall_seconds": round(counter.wall_seconds, 6),
        "columnar_wall_seconds": round(columnar.wall_seconds, 6),
        "modeled_speedup": round(
            counter.simulated_seconds / columnar.simulated_seconds, 3
        ),
        "wall_speedup": round(
            counter.wall_seconds / columnar.wall_seconds, 3
        ),
        "identical": bool(columnar.correct),
    }
    return [counter, columnar], summary


def run_buc_td_duel(
    n_facts: int = DUEL_FACTS,
    memory_entries: Optional[int] = None,
) -> "Tuple[List[AlgorithmRun], Dict[str, object]]":
    """The BUC/TD kernel duel: dict path vs columnar path, per algorithm.

    Same workload as the columnar duel (dense / covered / disjoint at
    10^5 facts).  For each of BUC and TD the legacy dict kernel is timed
    with ``encoding="dict"`` and the columnar kernel with the default
    encoding; the columnar run is validated against the dict run's
    result, so any kernel divergence fails the smoke.  The summary is
    flat (``buc_``/``td_`` prefixed) so the perf gate can lift the
    speedups straight into its metric set.
    """
    config = WorkloadConfig(
        kind=DUEL_CONFIG.kind,
        n_facts=n_facts,
        n_axes=DUEL_CONFIG.n_axes,
        density=DUEL_CONFIG.density,
        coverage=DUEL_CONFIG.coverage,
        disjoint=DUEL_CONFIG.disjoint,
    )
    workload = build_workload(config)
    table = workload.fact_table()
    oracle = workload.oracle(table)
    prepare_columnar(table, ("BUC", "TD"))
    runs: List[AlgorithmRun] = []
    summary: Dict[str, object] = {
        "workload": workload.name,
        "facts": len(table),
    }
    for algorithm in ("BUC", "TD"):
        dict_run = run_algorithm(
            table,
            options=ExecutionOptions(
                algorithm=algorithm,
                oracle=oracle,
                memory_entries=memory_entries,
                encoding="dict",
            ),
            workload_name=workload.name,
            n_facts=len(table),
            keep_result=True,
        )
        columnar_run = run_algorithm(
            table,
            options=ExecutionOptions(
                algorithm=algorithm,
                oracle=oracle,
                memory_entries=memory_entries,
            ),
            reference=dict_run.result,
            workload_name=workload.name,
            n_facts=len(table),
        )
        runs.extend((dict_run, columnar_run))
        prefix = algorithm.lower()
        summary[f"{prefix}_dict_sim_seconds"] = round(
            dict_run.simulated_seconds, 6
        )
        summary[f"{prefix}_columnar_sim_seconds"] = round(
            columnar_run.simulated_seconds, 6
        )
        summary[f"{prefix}_dict_wall_seconds"] = round(
            dict_run.wall_seconds, 6
        )
        summary[f"{prefix}_columnar_wall_seconds"] = round(
            columnar_run.wall_seconds, 6
        )
        summary[f"{prefix}_modeled_speedup"] = round(
            dict_run.simulated_seconds / columnar_run.simulated_seconds, 3
        )
        summary[f"{prefix}_wall_speedup"] = round(
            dict_run.wall_seconds / columnar_run.wall_seconds, 3
        )
        summary[f"{prefix}_identical"] = bool(columnar_run.correct)
    return runs, summary
