"""End-to-end tests over the real socket transport.

The centerpiece is the concurrency bit-identity test: reader threads
hammer the HTTP front door while a writer ingests delta batches, and
every answer must equal a serial NAIVE recomputation over the table
rows *at the version the response reports* — the serving contract of
``repro.serve``, preserved verbatim across the HTTP boundary.
"""

import http.client
import json
import threading

import pytest

from repro.core.bindings import FactTable
from repro.core.cube import ExecutionOptions, compute_cube
from repro.core.incremental import split_rows
from repro.serve import CubeServer
from repro.server import CubeCatalog, LogicalCube, X3Api, X3HttpServer
from repro.testing import small_workload

READERS = 3
REQUESTS_PER_READER = 30
WRITE_BATCHES = 6


def reference_cuboid(table, rows, point):
    snapshot = FactTable(table.lattice, list(rows), table.aggregate)
    result = compute_cube(
        snapshot, ExecutionOptions(algorithm="NAIVE", points=(point,))
    )
    return result.cuboids[point]


def groups_to_cuboid(groups):
    return {
        tuple(
            None if part is None else str(part) for part in group["key"]
        ): group["value"]
        for group in groups
    }


def http_post(host, port, path, body):
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(body),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        connection.close()


@pytest.fixture()
def stack():
    workload = small_workload(n_facts=60)
    table = workload.fact_table()
    initial, delta = split_rows(table, 0.5)
    live = FactTable(table.lattice, list(initial), table.aggregate)
    server = CubeServer(live, workload.oracle(table))
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("cube", live.lattice), server
    )
    front = X3HttpServer(X3Api(catalog))
    front.start()
    yield front, server, live, initial, delta
    front.close()


class TestSocketBasics:
    def test_get_catalog_over_socket(self, stack):
        front, *_ = stack
        connection = http.client.HTTPConnection(
            front.host, front.port, timeout=30
        )
        try:
            connection.request("GET", "/api/v1/cubes")
            response = connection.getresponse()
            assert response.status == 200
            decoded = json.loads(response.read().decode())
            assert decoded["cubes"][0]["name"] == "cube"
            # Persistent connection: a second request reuses it.
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            assert response.status == 200
            assert b"x3_http_requests_total" in response.read()
        finally:
            connection.close()

    def test_errors_cross_the_socket(self, stack):
        front, *_ = stack
        status, decoded = http_post(
            front.host,
            front.port,
            "/api/v1/cubes/nope/aggregate",
            {},
        )
        assert status == 404
        assert decoded["error"]["kind"] == "unknown_cube"


class TestConcurrentBitIdentity:
    def test_http_answers_equal_serial_naive_at_their_version(
        self, stack
    ):
        front, server, live, initial, delta = stack
        lattice = live.lattice
        batch_size = max(1, len(delta) // WRITE_BATCHES)
        batches = [
            delta[start:start + batch_size]
            for start in range(0, len(delta), batch_size)
        ]
        rows_at = {0: list(initial)}
        for version, batch in enumerate(batches, start=1):
            rows_at[version] = rows_at[version - 1] + list(batch)

        points = [
            lattice.describe(point)
            for point in lattice.topo_finer_first()[:4]
        ]
        observed = [[] for _ in range(READERS)]
        writer_done = threading.Event()

        def read(reader):
            for index in range(REQUESTS_PER_READER):
                status, decoded = http_post(
                    front.host,
                    front.port,
                    "/api/v1/cubes/cube/aggregate",
                    {"point": points[(reader + index) % len(points)]},
                )
                assert status == 200, decoded
                observed[reader].append(
                    (
                        decoded["point"],
                        tuple(decoded["version"]),
                        groups_to_cuboid(decoded["groups"]),
                    )
                )

        def write():
            for batch in batches:
                server.insert(batch)
                threading.Event().wait(0.002)
            writer_done.set()

        threads = [
            threading.Thread(target=read, args=(reader,))
            for reader in range(READERS)
        ] + [threading.Thread(target=write)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert writer_done.is_set()

        versions_seen = set()
        for reader_records in observed:
            assert len(reader_records) == REQUESTS_PER_READER
            for described, version, cuboid in reader_records:
                assert len(version) == 1
                versions_seen.add(version[0])
                point = lattice.point_by_description(described)
                expected = reference_cuboid(
                    live, rows_at[version[0]], point
                )
                assert cuboid == expected, (described, version)
        # The replay straddled the writes: answers from more than one
        # version actually got checked.
        assert len(versions_seen) > 1, versions_seen

    def test_read_version_fences_over_http(self, stack):
        front, server, live, initial, delta = stack
        point = live.lattice.describe(live.lattice.topo_finer_first()[0])
        status, decoded = http_post(
            front.host,
            front.port,
            "/api/v1/cubes/cube/aggregate",
            {"point": point, "read_version": [1]},
        )
        assert status == 409
        server.insert(delta)
        status, decoded = http_post(
            front.host,
            front.port,
            "/api/v1/cubes/cube/aggregate",
            {"point": point, "read_version": [1]},
        )
        assert status == 200
        assert decoded["version"] == [1]
