"""W3C-traceparent-style context propagation primitives.

This module is the *pure* half of distributed tracing: ids, the header
codec, and sampling decisions.  It holds no state beyond a seeded
counter and imports nothing from the serving stack, so every layer
(HTTP front door, cluster coordinator, shard servers, engine workers)
can depend on it without cycles.

Three design rules, all serving replay determinism:

- **Seeded ids.**  :class:`IdSource` derives 128-bit trace ids and
  64-bit span ids from a seed plus an atomic counter through the
  SplitMix64 finalizer — never from ``os.urandom`` or wall time — so a
  deterministic replay mints byte-identical ids on every run.
- **Derived child ids.**  Spans created concurrently (scatter-gather
  fan-out, process-pool absorption) get ids *derived* from the parent
  id and a stable key (:func:`derive_span_id`), not allocated from a
  shared counter, so thread scheduling cannot permute them.
- **Sampling is a pure function of the trace id.**
  :meth:`HeadSampler.decide` hashes the trace id; every process that
  sees the same trace makes the same head-sampling call without any
  coordination.

The header format is the W3C ``traceparent`` single-line form::

    00-<32 hex trace id>-<16 hex span id>-<2 hex flags>

with version ``00`` and the low flag bit meaning *sampled*.  Parsing is
strict: malformed headers, version ``ff``, and all-zero ids are
rejected (returning ``None``) and the server mints a fresh context
instead — a bad upstream header must never corrupt local telemetry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

#: The request/response header name carrying the context.
TRACEPARENT_HEADER = "traceparent"

_MASK64 = (1 << 64) - 1
_MASK128 = (1 << 128) - 1

#: Golden-ratio increment, the classic SplitMix64 stream constant.
_SEED_SALT = 0x9E3779B97F4A7C15
#: Distinct salt so sampling buckets are independent of id bits reuse.
_SAMPLE_SALT = 0xA24BAED4963EE407


def mix64(value: int) -> int:
    """The SplitMix64 finalizer: a fast, well-mixed 64-bit bijection."""
    value &= _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value


def _fnv64(text: str) -> int:
    """FNV-1a over UTF-8 bytes; stable across runs and platforms."""
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        acc = ((acc ^ byte) * 0x100000001B3) & _MASK64
    return acc


@dataclass(frozen=True)
class TraceContext:
    """One request's trace identity: ids plus the sampling verdict.

    ``trace_id`` is 128 bits and shared by every span of the request
    across every process; ``span_id`` is the 64-bit id of the *current*
    span (the one a downstream callee should parent under).
    """

    trace_id: int
    span_id: int
    sampled: bool

    @property
    def trace_id_hex(self) -> str:
        return f"{self.trace_id & _MASK128:032x}"

    @property
    def span_id_hex(self) -> str:
        return f"{self.span_id & _MASK64:016x}"

    def to_traceparent(self) -> str:
        """Render the W3C single-line header value."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id_hex}-{self.span_id_hex}-{flags}"

    def child(self, span_id: int) -> "TraceContext":
        """The context a callee should propagate: same trace, new span."""
        return TraceContext(self.trace_id, span_id, self.sampled)


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header value; ``None`` when invalid.

    Accepts any known-shape version except the reserved ``ff``; the
    trace id and parent span id must be well-formed hex and non-zero,
    per the W3C spec.  Returning ``None`` (rather than raising) lets
    the server fall back to minting a fresh context.
    """
    if header is None:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_hex, span_hex, flags = parts[0], parts[1], parts[2], parts[3]
    if len(parts) > 4 and version == "00":
        return None  # version 00 allows no extra fields
    if (
        len(version) != 2
        or len(trace_hex) != 32
        or len(span_hex) != 16
        or len(flags) != 2
    ):
        return None
    if version == "ff":
        return None
    try:
        int(version, 16)
        trace_id = int(trace_hex, 16)
        span_id = int(span_hex, 16)
        flag_bits = int(flags, 16)
    except ValueError:
        return None
    if trace_id == 0 or span_id == 0:
        return None
    return TraceContext(trace_id, span_id, bool(flag_bits & 1))


class IdSource:
    """Deterministic, thread-safe trace/span id generation.

    Every id is ``mix64`` of the seed and an atomic counter, so a
    replay with the same seed mints the same ids in the same order —
    the property the determinism CI job diffs for.  Ids are never zero
    (the W3C invalid value); the astronomically unlikely zero output is
    bumped to one.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = mix64(seed ^ _SEED_SALT)
        self._lock = threading.Lock()
        self._counter = 0

    def _next(self) -> int:
        with self._lock:
            self._counter += 1
            return self._counter

    def trace_id(self) -> int:
        """A fresh 128-bit trace id (two mixed 64-bit halves)."""
        n = self._next()
        high = mix64(self._seed ^ (2 * n))
        low = mix64(self._seed ^ (2 * n + 1))
        value = ((high << 64) | low) & _MASK128
        return value or 1

    def span_id(self) -> int:
        """A fresh 64-bit span id."""
        value = mix64(self._seed + 3 * self._next())
        return value or 1


def derive_span_id(parent_span_id: int, key: str) -> int:
    """A child span id as a pure function of its parent and a key.

    Concurrent span creators (one per shard in a scatter, one per
    engine partition) derive their ids from ``(parent, stable key)``
    instead of racing on a shared counter, so the resulting id tree is
    identical no matter how the pool interleaves the work.
    """
    value = mix64((parent_span_id & _MASK64) ^ _fnv64(key))
    return value or 1


@dataclass(frozen=True)
class HeadSampler:
    """Head-based sampling: keep a fixed fraction of traces.

    The verdict is a pure function of the trace id (a hash bucket
    compare), so every process in the request path independently
    reaches the same decision, and replays are stable.
    """

    rate: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(
                f"sample rate must be in [0, 1], got {self.rate!r}"
            )

    def decide(self, trace_id: int) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        bucket = mix64(trace_id ^ _SAMPLE_SALT) % (1 << 32)
        return bucket < int(self.rate * (1 << 32))
