"""Schema-based summarizability reasoning (paper Sec. 3.7).

Given a DTD and an axis *path* (the relative path from the fact element to
the grouping value, already rewritten for the lattice point's relaxation
state), decide:

- **disjointness**: can the path ever bind more than one value for a single
  fact?  If not, every cuboid grouping on this axis keeps facts in a single
  group per axis (pairwise-disjoint partition w.r.t. this axis).
- **coverage**: can the path ever bind *no* value for a fact?  If not,
  total coverage holds between a cuboid keeping this axis and its
  LND-parent.

Both answers are conservative: ``UNKNOWN`` is returned when a tag on the
path is undeclared, and the customized algorithms treat ``UNKNOWN`` as
"property may fail".
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Sequence

from repro.schema.dtd import Cardinality, Dtd
from repro.xmlmodel.navigation import Step, StepAxis


class PropertyVerdict(Enum):
    """Three-valued verdict of schema reasoning."""

    HOLDS = "holds"
    FAILS = "may-fail"
    UNKNOWN = "unknown"

    @property
    def guaranteed(self) -> bool:
        return self is PropertyVerdict.HOLDS


def path_cardinality(
    dtd: Dtd, fact_tag: str, steps: Sequence[Step]
) -> Optional[Cardinality]:
    """Cardinality of the whole path from a single fact element.

    Returns None when some tag is not declared (schema cannot help).
    Attribute final steps contribute OPTIONAL/ONE from the attribute
    declaration.
    """
    current = fact_tag
    product = Cardinality.ONE
    for step in steps:
        if step.is_attribute:
            decl = dtd.get(current)
            if decl is None:
                return None
            attr = decl.attributes.get(step.attribute_name)
            if attr is None:
                # Undeclared attribute: may be absent, never repeats.
                contribution = Cardinality.OPTIONAL
            else:
                contribution = (
                    Cardinality.ONE if attr.required else Cardinality.OPTIONAL
                )
            if step.axis is StepAxis.DESCENDANT:
                # @attr reachable anywhere below: conservatively repeatable.
                contribution = Cardinality.STAR
            return _product(product, contribution)
        if step.test == "*":
            return None
        if step.axis is StepAxis.CHILD:
            decl = dtd.get(current)
            if decl is None:
                return None
            contribution = decl.child_cardinality(step.test)
            if contribution is None:
                # Declared parent never has this child: the path is dead;
                # it binds nothing, i.e. absent and non-repeating.
                return Cardinality.OPTIONAL
        else:
            contribution = dtd.descendant_step_cardinality(current, step.test)
            if contribution is None:
                return Cardinality.OPTIONAL
        product = _product(product, contribution)
        current = step.test
    return product


def axis_disjointness(
    dtd: Dtd, fact_tag: str, steps: Sequence[Step]
) -> PropertyVerdict:
    """Does the schema guarantee <= 1 binding per fact on this path?"""
    card = path_cardinality(dtd, fact_tag, steps)
    if card is None:
        return PropertyVerdict.UNKNOWN
    return PropertyVerdict.HOLDS if not card.may_repeat else PropertyVerdict.FAILS


def axis_coverage(
    dtd: Dtd, fact_tag: str, steps: Sequence[Step]
) -> PropertyVerdict:
    """Does the schema guarantee >= 1 binding per fact on this path?"""
    card = path_cardinality(dtd, fact_tag, steps)
    if card is None:
        return PropertyVerdict.UNKNOWN
    return PropertyVerdict.HOLDS if not card.may_be_absent else PropertyVerdict.FAILS


def sp_equivalent(dtd: Dtd, fact_tag: str, via: str, target: str) -> bool:
    """Sec. 3.7's third observation: if every declared path from the fact
    tag to ``target`` goes through ``via``, then the SP-relaxed pattern
    (``fact[.//target]``) has exactly the same coverage as the rigid one
    (``fact/via/target``) and the two lattice points coincide.
    """
    paths = dtd._tag_paths_between(fact_tag, target, max_depth=16)
    if not paths:
        return False
    return all(via in path for path in paths)


def _product(outer: Cardinality, inner: Cardinality) -> Cardinality:
    absent = outer.may_be_absent or inner.may_be_absent
    repeat = outer.may_repeat or inner.may_repeat
    if absent and repeat:
        return Cardinality.STAR
    if absent:
        return Cardinality.OPTIONAL
    if repeat:
        return Cardinality.PLUS
    return Cardinality.ONE
