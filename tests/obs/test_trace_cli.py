"""Tests for the x3-trace explorer CLI (repro.obs.trace_cli)."""

import json

import pytest

from repro.obs.trace_cli import (
    canonical_line,
    filter_traces,
    find_trace,
    load_traces,
    main,
    render_waterfall,
    to_span_records,
)
from repro.obs.trace_store import TraceStore, trace_span


@pytest.fixture
def trace_file(tmp_path):
    """A real store dump: three traces (ok / error / keyed fan-out)."""
    store = TraceStore(seed=21)
    with store.root("serve.query", category="serve") as root:
        with trace_span("serve.recompute", category="serve"):
            pass
        root.set_sim(0.002)
    with pytest.raises(RuntimeError):
        with store.root("cluster.query", category="cluster") as root:
            root.set_sim(0.009)
            raise RuntimeError("boom")
    with store.root("cluster.query", category="cluster") as root:
        for shard in range(3):
            with trace_span(
                "cluster.shard", key=f"s{shard}", shard=shard
            ):
                pass
        root.set_sim(0.004)
    path = tmp_path / "traces.jsonl"
    store.write_jsonl(str(path))
    return str(path)


class TestLoadAndFilter:
    def test_load_parses_every_line(self, trace_file):
        records = load_traces(trace_file)
        assert len(records) == 3
        assert all("trace_id" in record for record in records)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace_id": "a"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_traces(str(path))

    def test_load_rejects_non_trace_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"foo": 1}\n')
        with pytest.raises(ValueError, match="trace_id"):
            load_traces(str(path))

    def test_filter_by_status_name_retained(self, trace_file):
        records = load_traces(trace_file)
        assert len(filter_traces(records, status="error")) == 1
        assert len(filter_traces(records, name="cluster")) == 2
        retained = filter_traces(records, retained=True)
        assert [record["status"] for record in retained] == ["error"]

    def test_find_by_unique_prefix(self, trace_file):
        records = load_traces(trace_file)
        full = records[0]["trace_id"]
        assert find_trace(records, full[:8])["trace_id"] == full

    def test_find_unknown_prefix_raises(self, trace_file):
        with pytest.raises(ValueError, match="no trace"):
            find_trace(load_traces(trace_file), "zzzz")

    def test_find_ambiguous_prefix_raises(self, trace_file):
        with pytest.raises(ValueError, match="ambiguous"):
            find_trace(load_traces(trace_file), "")


class TestWaterfall:
    def test_renders_children_indented_under_the_root(self, trace_file):
        records = load_traces(trace_file)
        fanout = next(
            record
            for record in records
            if len(record["spans"]) == 4
        )
        text = render_waterfall(fanout)
        lines = text.split("\n")
        assert lines[0].startswith(f"trace {fanout['trace_id']}")
        assert "spans=4" in lines[0]
        shard_lines = [li for li in lines if "cluster.shard" in li]
        assert len(shard_lines) == 3
        root_line = next(
            li for li in lines[1:] if "cluster.query" in li
        )
        # children are indented deeper than the root
        root_indent = len(root_line.split("] ")[1]) - len(
            root_line.split("] ")[1].lstrip()
        )
        child_indent = len(shard_lines[0].split("] ")[1]) - len(
            shard_lines[0].split("] ")[1].lstrip()
        )
        assert child_indent > root_indent
        assert "shard=0" in text

    def test_error_status_flagged(self, trace_file):
        records = load_traces(trace_file)
        bad = next(r for r in records if r["status"] == "error")
        assert "[ERROR]" in render_waterfall(bad)

    def test_empty_trace_renders_header_only(self):
        text = render_waterfall(
            {"trace_id": "t", "name": "r", "status": "ok", "spans": []}
        )
        assert text.startswith("trace t")
        assert "\n" not in text


class TestChromeConversion:
    def test_span_records_carry_remapped_ids(self, trace_file):
        records = load_traces(trace_file)
        fanout = next(r for r in records if len(r["spans"]) == 4)
        spans = to_span_records(fanout)
        assert len(spans) == 4
        root = next(s for s in spans if s.parent_id is None)
        children = [s for s in spans if s.parent_id == root.span_id]
        assert len(children) == 3
        assert all(
            s.thread == f"trace-{fanout['trace_id'][:8]}" for s in spans
        )

    def test_non_ok_status_lands_in_attrs(self, trace_file):
        records = load_traces(trace_file)
        bad = next(r for r in records if r["status"] == "error")
        spans = to_span_records(bad)
        assert any(s.attrs.get("status") == "error" for s in spans)


class TestMain:
    def test_list_table(self, trace_file, capsys):
        assert main(["list", trace_file]) == 0
        out = capsys.readouterr().out
        assert "3 trace(s)" in out
        assert "serve.query" in out

    def test_list_jsonl_is_canonical_and_deterministic(
        self, trace_file, capsys
    ):
        assert main(["list", trace_file, "--jsonl"]) == 0
        first = capsys.readouterr().out
        assert main(["list", trace_file, "--jsonl"]) == 0
        second = capsys.readouterr().out
        assert first == second
        for line in first.strip().split("\n"):
            decoded = json.loads(line)
            assert canonical_line(decoded) == line

    def test_list_filters_compose(self, trace_file, capsys):
        assert (
            main(["list", trace_file, "--status", "ok", "--name", "serve"])
            == 0
        )
        out = capsys.readouterr().out
        assert "1 trace(s)" in out

    def test_list_no_matches(self, trace_file, capsys):
        assert main(["list", trace_file, "--status", "deadline"]) == 0
        assert "no matching traces" in capsys.readouterr().out

    def test_show_waterfall(self, trace_file, capsys):
        records = load_traces(trace_file)
        prefix = records[0]["trace_id"][:10]
        assert main(["show", trace_file, prefix]) == 0
        assert "serve.recompute" in capsys.readouterr().out

    def test_show_chrome_out(self, trace_file, tmp_path, capsys):
        records = load_traces(trace_file)
        fanout = next(r for r in records if len(r["spans"]) == 4)
        out_path = tmp_path / "chrome.json"
        assert (
            main(
                [
                    "show",
                    trace_file,
                    fanout["trace_id"][:10],
                    "--chrome-out",
                    str(out_path),
                ]
            )
            == 0
        )
        document = json.loads(out_path.read_text())
        names = {
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        assert "cluster.shard" in names

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["list", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_prefix_is_an_error(self, trace_file, capsys):
        assert main(["show", trace_file, "zzzz"]) == 1
        assert "no trace" in capsys.readouterr().err
