"""The engine proper: partition, dispatch, run, merge.

``execute`` is what :func:`repro.core.cube.compute_cube` calls.  One
worker (or a one-point lattice) takes the deterministic serial path —
the registered algorithm runs exactly as it always has, so serial results
and costs are bit-identical to the pre-engine code.  More workers fan the
partitions out over ``concurrent.futures`` pools:

- ``thread``: cheap dispatch, shared memory; the GIL serializes pure
  Python, so wall-clock gains need multiple cores mostly for the I/O-ish
  parts — but the *modeled* speedup (cost-model critical path) is exact
  either way.
- ``process``: true parallelism at the price of forking and pickling the
  fact table once per worker; wins for CPU-bound cubes on multi-core
  hosts.  Falls back to threads (with a ``RuntimeWarning``) where the
  host cannot create worker processes.

Every partition is an ordinary ``algorithm.run(points=...)`` call, so any
registered algorithm — including AUTO's delegation — parallelizes without
knowing about the engine.

Observability (:mod:`repro.obs`): when tracing is on — an active
``obs.trace()`` or ``ExecutionOptions(trace=True)`` — the run produces
one coherent span tree (``engine.run`` > ``engine.plan`` /
``engine.partition`` / ``engine.merge``, with algorithm and timber spans
nested under each partition).  Thread workers report into the shared
tracer directly; process workers record into a local tracer whose
(picklable) spans ride back on the :class:`PartitionOutcome` and are
absorbed into the parent trace.  After the run, the merged cost snapshot
and engine metrics are folded into the tracer's metrics registry and the
report is attached as ``result.trace``.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro import obs
from repro.core.bindings import FactTable
from repro.core.cube import CubeResult, ExecutionOptions
from repro.core.engine.merge import (
    PartitionOutcome,
    merge_costs,
    merge_cuboids,
    merge_passes,
    merged_algorithm_name,
)
from repro.core.engine.metrics import EngineMetrics, PartitionStats
from repro.core.engine.partition import Partition, partition_points
from repro.core.lattice import LatticePoint
from repro.core.lattice_graph import partition_cut_edges
from repro.core.properties import PropertyOracle

PARTITIONS_PER_WORKER = 2
"""Oversubscription factor: more partitions than workers lets the pool
rebalance when partitions turn out unequal."""


def _worker_id() -> str:
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid-{os.getpid()}"
    return f"pid-{os.getpid()}/{thread.name}"


def _run_partition(
    table: FactTable,
    partition_index: int,
    algorithm: str,
    oracle: Optional[PropertyOracle],
    memory_entries: Optional[int],
    min_support: float,
    encoding: str,
    points: Tuple[LatticePoint, ...],
    submitted_at: float,
    traced: bool = False,
    trace_parent: Optional[int] = None,
    parent_pid: Optional[int] = None,
) -> PartitionOutcome:
    """One partition, run by whichever worker picks it up.

    Module-level so process pools can pickle it; clocks use
    ``time.monotonic`` (system-wide on Linux) so queue wait is comparable
    across processes.  A *fresh* algorithm instance per partition: the
    registry's singletons keep per-run state on ``self``, which thread
    pools would race on.

    Tracing: in a thread pool the process-wide active tracer is shared,
    so the partition span lands in the parent trace directly (parented
    to the ``engine.run`` span via ``trace_parent``).  In a process
    pool the worker records into a local tracer whose records are
    returned in the outcome for the parent to absorb.  The ``pid``
    comparison (not ``shared.enabled``) decides which case this is: a
    *forked* child inherits the parent's enabled active tracer, but
    recording into that copy would be silently lost with the process.
    """
    from repro.core.algorithms.registry import new_instance

    shared = obs.current_tracer()
    in_parent_process = parent_pid is None or os.getpid() == parent_pid
    local: Optional[obs.Tracer] = None
    if traced and not (in_parent_process and shared.enabled):
        local = obs.Tracer(enabled=True)
    tracer = local if local is not None else shared

    def _execute_one():
        started_at = time.monotonic()
        with tracer.span(
            "engine.partition",
            category="engine",
            parent=None if local is not None else trace_parent,
            index=partition_index,
            points=len(points),
        ) as span:
            run_result = new_instance(algorithm).run(
                table,
                oracle=oracle,
                memory_entries=memory_entries,
                points=list(points),
                min_support=min_support,
                encoding=encoding,
            )
            span.annotate(
                sim_seconds=run_result.cost.simulated_seconds,
                worker=_worker_id(),
            )
        return started_at, run_result

    if local is not None:
        with obs.activate(local):
            started, result = _execute_one()
        spans = tuple(local.records())
        counters = tuple(
            (metric.name, metric.labels, metric.value)
            for metric in local.metrics.collect()
            if isinstance(metric, obs.metrics.Counter)
        )
    else:
        started, result = _execute_one()
        spans = ()
        counters = ()
    finished = time.monotonic()
    return PartitionOutcome(
        index=partition_index,
        points=len(points),
        cuboids=result.cuboids,
        cost=result.cost.as_dict(),
        passes=result.passes,
        algorithm=result.algorithm,
        worker=_worker_id(),
        queue_wait_seconds=max(0.0, started - submitted_at),
        wall_seconds=finished - started,
        spans=spans,
        counters=counters,
    )


def _serial_result(
    table: FactTable,
    options: ExecutionOptions,
    points: List[LatticePoint],
    total_begin: float,
) -> CubeResult:
    """The deterministic fallback: one direct algorithm run."""
    from repro.core.algorithms.registry import get_algorithm

    result = get_algorithm(options.algorithm).run(
        table,
        oracle=options.oracle,
        memory_entries=options.memory_entries,
        points=points,
        min_support=options.min_support,
        encoding=options.encoding,
    )
    wall = time.perf_counter() - total_begin
    result.metrics = EngineMetrics(
        engine="serial",
        strategy=options.partition_strategy,
        requested_workers=options.workers,
        workers_used=1,
        partitions=(
            PartitionStats(
                index=0,
                points=len(points),
                weight=float(len(points)),
                worker="serial",
                queue_wait_seconds=0.0,
                wall_seconds=result.cost.wall_seconds,
                simulated_seconds=result.cost.simulated_seconds,
            ),
        ),
        cut_edges=0,
        partition_seconds=0.0,
        merge_seconds=0.0,
        total_wall_seconds=wall,
    )
    return result


def _make_pool(engine: str, max_workers: int) -> Executor:
    if engine == "process":
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
            # Surface broken multiprocessing (sandboxes without /dev/shm,
            # missing sem_open) now, not at first submit.
            pool.submit(os.getpid).result()
            return pool
        except (OSError, PermissionError, RuntimeError) as error:
            warnings.warn(
                f"process pool unavailable ({error}); falling back to "
                f"threads",
                RuntimeWarning,
                stacklevel=3,
            )
    return ThreadPoolExecutor(
        max_workers=max_workers, thread_name_prefix="x3-engine"
    )


def execute(table: FactTable, options: ExecutionOptions) -> CubeResult:
    """Run one cube computation under the given options.

    Fast path first: with tracing off (no active tracer, no
    ``options.trace``) the run proceeds exactly as before — no spans are
    allocated and ``result.trace`` stays ``None``.
    """
    active = obs.current_tracer()
    if not active.enabled and not options.trace:
        return _execute(table, options, obs.NULL_TRACER)
    tracer = active if active.enabled else obs.Tracer(enabled=True)
    with obs.activate(tracer):
        result = _execute(table, options, tracer)
    tracer.metrics.absorb_cost(result.cost, algorithm=result.algorithm)
    if result.metrics is not None:
        tracer.metrics.absorb_engine(
            result.metrics, algorithm=result.algorithm
        )
    result.trace = tracer.trace()
    return result


def _execute(
    table: FactTable, options: ExecutionOptions, tracer: "obs.Tracer"
) -> CubeResult:
    total_begin = time.perf_counter()
    points: List[LatticePoint] = (
        list(options.points)
        if options.points is not None
        else list(table.lattice.points())
    )
    engine = options.effective_engine
    if engine == "serial" or options.workers <= 1 or len(points) <= 1:
        with tracer.span(
            "engine.run",
            category="engine",
            engine="serial",
            algorithm=options.algorithm,
            points=len(points),
        ):
            return _serial_result(table, options, points, total_begin)

    with tracer.span(
        "engine.run",
        category="engine",
        engine=engine,
        algorithm=options.algorithm,
        workers=options.workers,
        strategy=options.partition_strategy,
        points=len(points),
    ) as run_span:
        trace_parent = run_span.span_id if tracer.enabled else None

        lattice = table.lattice
        partition_begin = time.perf_counter()
        with tracer.span("engine.plan", category="engine"):
            partitions: List[Partition] = partition_points(
                lattice,
                points,
                n_partitions=min(
                    len(points), options.workers * PARTITIONS_PER_WORKER
                ),
                strategy=options.partition_strategy,
            )
            cut_edges = partition_cut_edges(
                lattice, [list(part.points) for part in partitions]
            )
        partition_seconds = time.perf_counter() - partition_begin

        max_workers = min(options.workers, len(partitions))
        outcomes: List[PartitionOutcome] = []
        submit_offsets: List[float] = []
        pool = _make_pool(engine, max_workers)
        try:
            futures = []
            for part in partitions:
                submit_offsets.append(tracer.now() if tracer.enabled else 0.0)
                futures.append(
                    pool.submit(
                        _run_partition,
                        table,
                        part.index,
                        options.algorithm,
                        options.oracle,
                        options.memory_entries,
                        options.min_support,
                        options.encoding,
                        part.points,
                        time.monotonic(),
                        tracer.enabled,
                        trace_parent,
                        os.getpid(),
                    )
                )
            outcomes = [future.result() for future in futures]
        finally:
            pool.shutdown(wait=True)

        if tracer.enabled:
            # Absorb process-worker span batches into the parent trace
            # (thread workers recorded into the shared tracer already and
            # ship no spans).
            for offset, outcome in zip(submit_offsets, outcomes):
                if outcome.spans:
                    tracer.absorb(
                        outcome.spans,
                        parent_id=trace_parent,
                        shift=offset + outcome.queue_wait_seconds,
                    )
                for name, labels, value in outcome.counters:
                    if value:
                        tracer.metrics.counter(
                            name, **dict(labels)
                        ).inc(value)

        merge_begin = time.perf_counter()
        with tracer.span(
            "engine.merge", category="engine", partitions=len(outcomes)
        ):
            cuboids = merge_cuboids(outcomes)
        merge_seconds = time.perf_counter() - merge_begin
        total_wall = time.perf_counter() - total_begin
        cost = merge_costs(outcomes, merge_seconds, total_wall, max_workers)

        by_index = {outcome.index: outcome for outcome in outcomes}
        stats = tuple(
            PartitionStats(
                index=part.index,
                points=len(part.points),
                weight=part.weight,
                worker=by_index[part.index].worker,
                queue_wait_seconds=by_index[part.index].queue_wait_seconds,
                wall_seconds=by_index[part.index].wall_seconds,
                simulated_seconds=by_index[part.index].simulated_seconds,
            )
            for part in partitions
        )
        metrics = EngineMetrics(
            engine=engine,
            strategy=options.partition_strategy,
            requested_workers=options.workers,
            workers_used=len({outcome.worker for outcome in outcomes}),
            partitions=stats,
            cut_edges=cut_edges,
            partition_seconds=partition_seconds,
            merge_seconds=merge_seconds,
            total_wall_seconds=total_wall,
        )
        run_span.annotate(
            sim_seconds=cost.simulated_seconds,
            speedup=round(cost.speedup_estimate, 4),
        )
        return CubeResult(
            lattice=lattice,
            cuboids=cuboids,
            algorithm=merged_algorithm_name(outcomes),
            cost=cost,
            passes=merge_passes(outcomes),
            aggregate=table.aggregate.function.upper(),
            metrics=metrics,
        )
