"""Unit tests for the parallel execution engine: partitioning, merging,
metrics, and result-identity with the direct serial path."""

import pytest

from repro.core.cube import (
    ExecutionOptions,
    compute_cube,
)
from repro.core.engine.merge import (
    PartitionOutcome,
    merge_costs,
    merge_cuboids,
    merged_algorithm_name,
)
from repro.core.engine.partition import partition_points, point_weight
from repro.core.lattice_graph import partition_cut_edges
from repro.errors import CubeError


def options(**overrides):
    defaults = dict(algorithm="NAIVE", workers=2, engine="thread")
    defaults.update(overrides)
    return ExecutionOptions(**defaults)


class TestPartitioning:
    @pytest.mark.parametrize("strategy", ["balanced", "antichain", "axis"])
    @pytest.mark.parametrize("n_partitions", [1, 2, 3, 5])
    def test_disjoint_cover(self, fig1_table, strategy, n_partitions):
        lattice = fig1_table.lattice
        points = list(lattice.points())
        partitions = partition_points(
            lattice, points, n_partitions, strategy=strategy
        )
        assert 1 <= len(partitions) <= n_partitions
        seen = [p for part in partitions for p in part.points]
        assert len(seen) == len(points)
        assert set(seen) == set(points)

    def test_deterministic(self, fig1_table):
        lattice = fig1_table.lattice
        points = list(lattice.points())
        first = partition_points(lattice, points, 4)
        second = partition_points(lattice, list(reversed(points)), 4)
        assert [p.points for p in first] == [p.points for p in second]

    def test_balanced_is_weight_balanced(self, fig1_table):
        lattice = fig1_table.lattice
        partitions = partition_points(lattice, list(lattice.points()), 4)
        weights = [part.weight for part in partitions]
        assert max(weights) <= min(weights) + max(
            point_weight(lattice, point) for point in lattice.points()
        )

    def test_respects_point_subset(self, fig1_table):
        lattice = fig1_table.lattice
        subset = [lattice.top, lattice.bottom]
        partitions = partition_points(lattice, subset, 8)
        covered = {p for part in partitions for p in part.points}
        assert covered == set(subset)

    def test_bad_strategy_rejected(self, fig1_table):
        with pytest.raises(CubeError):
            partition_points(
                fig1_table.lattice, [fig1_table.lattice.top], 1, "magic"
            )

    def test_cut_edges_zero_for_single_partition(self, fig1_table):
        lattice = fig1_table.lattice
        points = list(lattice.points())
        assert partition_cut_edges(lattice, [points]) == 0
        split = partition_points(lattice, points, 4)
        assert partition_cut_edges(
            lattice, [list(part.points) for part in split]
        ) > 0

    def test_cut_edges_bounded_by_total_edges(self, fig1_table):
        lattice = fig1_table.lattice
        points = list(lattice.points())
        total_edges = sum(
            len(lattice.successors(point)) for point in points
        )
        for strategy in ("balanced", "antichain", "axis"):
            parts = partition_points(lattice, points, 4, strategy)
            cut = partition_cut_edges(
                lattice, [list(part.points) for part in parts]
            )
            assert 0 < cut <= total_edges


def outcome(index, cuboids, sim=1.0, worker="w0", passes=1):
    return PartitionOutcome(
        index=index,
        points=len(cuboids),
        cuboids=cuboids,
        cost={"cpu_ops": 10.0, "page_reads": 2.0, "simulated_seconds": sim},
        passes=passes,
        algorithm="NAIVE",
        worker=worker,
        queue_wait_seconds=0.01,
        wall_seconds=0.5,
    )


class TestMerge:
    def test_union_of_disjoint_points(self):
        merged = merge_cuboids(
            [
                outcome(0, {(0, 0): {("a",): 1.0}}),
                outcome(1, {(0, 1): {("b",): 2.0}}),
            ]
        )
        assert set(merged) == {(0, 0), (0, 1)}

    def test_overlap_rejected(self):
        with pytest.raises(CubeError):
            merge_cuboids(
                [
                    outcome(0, {(0, 0): {}}),
                    outcome(1, {(0, 0): {}}),
                ]
            )

    def test_cost_sums_and_critical_path(self):
        cost = merge_costs(
            [
                outcome(0, {(0, 0): {}}, sim=1.0, worker="w0"),
                outcome(1, {(0, 1): {}}, sim=2.0, worker="w1"),
                outcome(2, {(0, 2): {}}, sim=0.5, worker="w0"),
            ],
            merge_seconds=0.1,
            total_wall_seconds=3.0,
        )
        assert cost.cpu_ops == 30
        assert cost.page_reads == 6
        assert cost.simulated_seconds == pytest.approx(3.5)
        # Busiest worker: w1 at 2.0 > w0 at 1.5.
        assert cost.parallel_simulated_seconds == pytest.approx(2.0)
        assert cost.speedup_estimate == pytest.approx(3.5 / 2.0)
        assert cost.merge_seconds == pytest.approx(0.1)
        assert cost.wall_seconds == pytest.approx(3.0)
        assert {w.worker for w in cost.workers} == {"w0", "w1"}

    def test_scheduled_critical_path_is_deterministic_lpt(self):
        from repro.core.engine.merge import scheduled_critical_path

        # LPT: 2.0 | 1.0 + 0.5 — independent of which thread ran what.
        assert scheduled_critical_path([1.0, 2.0, 0.5], 2) == pytest.approx(2.0)
        assert scheduled_critical_path([], 4) == 0.0
        assert scheduled_critical_path([1.0], 0) == 0.0
        # More workers than partitions: path = heaviest partition.
        assert scheduled_critical_path([0.5, 0.25], 8) == pytest.approx(0.5)

    def test_merge_costs_uses_schedule_when_pool_size_known(self):
        outcomes = [
            outcome(0, {(0, 0): {}}, sim=1.0, worker="w0"),
            outcome(1, {(0, 1): {}}, sim=2.0, worker="w0"),
            outcome(2, {(0, 2): {}}, sim=0.5, worker="w0"),
        ]
        # All three ran on one thread (a stalled pool), but the modeled
        # path must still be the 2-worker LPT schedule.
        cost = merge_costs(
            outcomes, merge_seconds=0.0, total_wall_seconds=1.0, max_workers=2
        )
        assert cost.parallel_simulated_seconds == pytest.approx(2.0)

    def test_algorithm_name_merge(self):
        same = [outcome(0, {(0, 0): {}}), outcome(1, {(0, 1): {}})]
        assert merged_algorithm_name(same) == "NAIVE"


class TestEngineExecution:
    @pytest.mark.parametrize("engine", ["thread", "process"])
    @pytest.mark.parametrize("algorithm", ["NAIVE", "COUNTER", "BUC", "TD"])
    def test_parallel_matches_serial(self, fig1_table, engine, algorithm):
        serial = compute_cube(
            fig1_table, ExecutionOptions(algorithm=algorithm)
        )
        parallel = compute_cube(
            fig1_table, options(algorithm=algorithm, engine=engine)
        )
        assert parallel.same_contents(serial), parallel.diff(serial)

    @pytest.mark.parametrize(
        "strategy", ["balanced", "antichain", "axis"]
    )
    def test_all_strategies_correct(self, fig1_table, strategy):
        serial = compute_cube(fig1_table, ExecutionOptions())
        parallel = compute_cube(
            fig1_table, options(workers=3, partition_strategy=strategy)
        )
        assert parallel.same_contents(serial)
        assert parallel.metrics.strategy == strategy

    def test_serial_fallback_identical_costs(self, fig1_table):
        direct = compute_cube(fig1_table, ExecutionOptions(algorithm="BUC"))
        engine = compute_cube(
            fig1_table,
            ExecutionOptions(algorithm="BUC", workers=1, engine="serial"),
        )
        assert engine.same_contents(direct)
        assert engine.cost.cpu_ops == direct.cost.cpu_ops
        assert engine.cost.simulated_seconds == pytest.approx(
            direct.cost.simulated_seconds
        )
        assert engine.metrics.engine == "serial"

    def test_metrics_populated(self, fig1_table):
        result = compute_cube(fig1_table, options(workers=4))
        metrics = result.metrics
        assert metrics.engine == "thread"
        assert metrics.requested_workers == 4
        assert 1 <= metrics.workers_used <= 4
        assert sum(metrics.partition_sizes) == fig1_table.lattice.size()
        assert metrics.merge_seconds >= 0.0
        assert metrics.total_wall_seconds > 0.0
        assert metrics.queue_wait_seconds >= 0.0
        assert "engine=thread" in metrics.summary()
        assert metrics.as_dict()["n_partitions"] == len(metrics.partitions)

    def test_per_worker_breakdown_in_cost(self, fig1_table):
        result = compute_cube(fig1_table, options(workers=2))
        assert result.cost.workers
        assert sum(w.points for w in result.cost.workers) == (
            fig1_table.lattice.size()
        )
        total = sum(w.simulated_seconds for w in result.cost.workers)
        assert total == pytest.approx(result.cost.simulated_seconds)
        assert result.cost.parallel_simulated_seconds <= total + 1e-12

    def test_min_support_filter_applies_per_partition(self, fig1_table):
        serial = compute_cube(
            fig1_table, ExecutionOptions(algorithm="BUC", min_support=2)
        )
        parallel = compute_cube(
            fig1_table, options(algorithm="BUC", min_support=2)
        )
        assert parallel.same_contents(serial)

    def test_points_restriction_respected(self, fig1_table):
        lattice = fig1_table.lattice
        wanted = (lattice.top, lattice.bottom)
        result = compute_cube(fig1_table, options(points=wanted, workers=2))
        assert set(result.cuboids) == set(wanted)

    def test_stateful_algorithms_safe_under_thread_pool(self):
        """Regression: BUC/TD keep per-run state on ``self``; the engine
        must give each thread-pool task a fresh instance, not the
        registry singleton, or concurrent partitions clobber each other
        (observed as overlap errors / wrong cuboids on larger lattices).
        """
        from repro.datagen.workload import WorkloadConfig, build_workload

        workload = build_workload(
            WorkloadConfig(
                kind="treebank",
                n_facts=200,
                n_axes=4,
                density="dense",
                coverage=True,
                disjoint=True,
            )
        )
        table = workload.fact_table()
        oracle = workload.oracle(table)
        serial = compute_cube(
            table, ExecutionOptions(algorithm="NAIVE", oracle=oracle)
        )
        for algorithm in ("BUC", "TD", "AUTO"):
            for _ in range(3):
                parallel = compute_cube(
                    table,
                    ExecutionOptions(
                        algorithm=algorithm,
                        oracle=oracle,
                        workers=4,
                        engine="thread",
                    ),
                )
                assert parallel.same_contents(serial), algorithm

    def test_auto_engine_resolution(self):
        assert ExecutionOptions(workers=1).effective_engine == "serial"
        assert ExecutionOptions(workers=2).effective_engine == "thread"
        assert (
            ExecutionOptions(workers=2, engine="process").effective_engine
            == "process"
        )
