"""Navigation axes and simple path evaluation over the in-memory model.

These helpers implement the XPath-style axes needed by the pattern matcher
and the data generators.  Steps use ``/`` (child) and ``//`` (descendant)
and may address attributes with ``@name``.  This is *not* a full XPath
engine — predicates and functions live in the tree-pattern layer
(:mod:`repro.patterns`), which is the paper's query formalism.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import PatternParseError
from repro.xmlmodel.nodes import Document, Element


class StepAxis(Enum):
    """Axis of one path step."""

    CHILD = "child"
    DESCENDANT = "descendant"

    def __str__(self) -> str:  # pragma: no cover - display
        return "/" if self is StepAxis.CHILD else "//"


@dataclass(frozen=True)
class Step:
    """One step of a simple path: an axis plus a node test.

    ``test`` is an element tag, ``*`` (any element), or ``@name`` for an
    attribute (only valid as the final step).
    """

    axis: StepAxis
    test: str

    @property
    def is_attribute(self) -> bool:
        return self.test.startswith("@")

    @property
    def attribute_name(self) -> str:
        return self.test[1:]

    def __str__(self) -> str:
        return f"{self.axis}{self.test}"


def parse_path(path: str) -> List[Step]:
    """Parse ``a/b//c/@id``-style relative paths into steps.

    A leading ``/`` or ``//`` sets the axis of the first step; a bare name
    defaults to the child axis.
    """
    if not path or path.strip() != path:
        raise PatternParseError(f"bad path: {path!r}")
    steps: List[Step] = []
    index = 0
    axis = StepAxis.CHILD
    text = path
    while index < len(text):
        if text.startswith("//", index):
            axis = StepAxis.DESCENDANT
            index += 2
        elif text.startswith("/", index):
            axis = StepAxis.CHILD
            index += 1
        begin = index
        while index < len(text) and text[index] != "/":
            index += 1
        name = text[begin:index]
        if not name or name == "@":
            raise PatternParseError(f"empty step in path {path!r}")
        if name.startswith("@") and index < len(text):
            raise PatternParseError(
                f"attribute step {name!r} must be last in path {path!r}"
            )
        steps.append(Step(axis, name))
    if not steps:
        raise PatternParseError(f"empty path: {path!r}")
    return steps


def path_to_string(steps: Sequence[Step]) -> str:
    """Render steps back to path text (first child axis is implicit)."""
    parts: List[str] = []
    for position, step in enumerate(steps):
        if position == 0 and step.axis is StepAxis.CHILD:
            parts.append(step.test)
        else:
            parts.append(str(step))
    return "".join(parts)


def axis_nodes(context: Element, step: Step) -> Iterator[Element]:
    """Elements reachable from ``context`` via one (element) step."""
    if step.is_attribute:
        raise PatternParseError("attribute steps do not yield elements")
    if step.axis is StepAxis.CHILD:
        candidates: Iterator[Element] = iter(context.children)
    else:
        candidates = context.iter_descendants()
    if step.test == "*":
        yield from candidates
    else:
        for node in candidates:
            if node.tag == step.test:
                yield node


PathTarget = Union[Element, Tuple[Element, str]]


def evaluate_path(
    context: Element, steps: Sequence[Step]
) -> List[PathTarget]:
    """Evaluate steps from a context element.

    Returns element nodes, or ``(owner_element, value)`` pairs when the
    path ends with an attribute step.  Results are in document order and
    deduplicated (descendant steps can reach a node through several
    intermediate matches).
    """
    frontier: List[Element] = [context]
    for step in steps[:-1]:
        next_frontier: List[Element] = []
        seen = set()
        for node in frontier:
            for match in axis_nodes(node, step):
                if id(match) not in seen:
                    seen.add(id(match))
                    next_frontier.append(match)
        frontier = next_frontier
    last = steps[-1]
    if last.is_attribute:
        results: List[PathTarget] = []
        seen = set()
        owners: Iterator[Element]
        for node in frontier:
            if last.axis is StepAxis.CHILD:
                owners = iter([node])
            else:
                # Descendant attribute step: attributes of *proper*
                # descendants (PC-AD never applies to attribute edges, so
                # this arises only from paths that were already //@x).
                owners = node.iter_descendants()
            for owner in owners:
                value = owner.attrs.get(last.attribute_name)
                if value is not None and id(owner) not in seen:
                    seen.add(id(owner))
                    results.append((owner, value))
        return results
    out: List[Element] = []
    seen = set()
    for node in frontier:
        for match in axis_nodes(node, last):
            if id(match) not in seen:
                seen.add(id(match))
                out.append(match)
    return out


def evaluate_path_str(context: Element, path: str) -> List[PathTarget]:
    """Convenience: parse then evaluate a path string."""
    return evaluate_path(context, parse_path(path))


def select(doc: Document, path: str) -> List[PathTarget]:
    """Evaluate an absolute path against a document.

    ``/a/b`` starts at the root (the first step must match the root tag
    when using the child axis); ``//a`` searches the whole tree.
    """
    absolute = path.startswith("/") and not path.startswith("//")
    steps = parse_path(path.lstrip("/") if absolute else path)
    if path.startswith("//"):
        # Descendant-or-self from a virtual super-root.
        first = steps[0]
        rest = steps[1:]
        matches: List[Element] = [
            node
            for node in doc.root.iter_subtree()
            if first.test in ("*", node.tag)
        ]
        if not rest:
            return list(matches)
        out: List[PathTarget] = []
        seen = set()
        for node in matches:
            for result in evaluate_path(node, rest):
                key = id(result[0]) if isinstance(result, tuple) else id(result)
                if key not in seen:
                    seen.add(key)
                    out.append(result)
        return out
    first = steps[0]
    if first.test not in ("*", doc.root.tag):
        return []
    if len(steps) == 1:
        return [doc.root]
    return evaluate_path(doc.root, steps[1:])


def common_ancestor(first: Element, second: Element) -> Optional[Element]:
    """Lowest common ancestor of two elements in the same tree."""
    chain = [first] + list(first.iter_ancestors())
    chain_ids = {id(node) for node in chain}
    for candidate in [second] + list(second.iter_ancestors()):
        if id(candidate) in chain_ids:
            return candidate
    return None
