"""Unit tests for the DTD subset parser."""

import pytest

from repro.errors import DtdParseError
from repro.schema.dtd import Cardinality
from repro.schema.dtd_parser import parse_dtd


class TestElementDecls:
    def test_sequence_with_indicators(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b, c?, d*, e+)>"
            "<!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>"
            "<!ELEMENT d (#PCDATA)><!ELEMENT e (#PCDATA)>"
        )
        decl = dtd.get("a")
        assert decl.children["b"] is Cardinality.ONE
        assert decl.children["c"] is Cardinality.OPTIONAL
        assert decl.children["d"] is Cardinality.STAR
        assert decl.children["e"] is Cardinality.PLUS

    def test_pcdata_flag(self):
        dtd = parse_dtd("<!ELEMENT t (#PCDATA)>")
        assert dtd.get("t").has_text
        assert dtd.get("t").children == {}

    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT e EMPTY><!ELEMENT a ANY>")
        assert dtd.get("e").children == {}
        assert dtd.get("a").has_text

    def test_choice_makes_optional(self):
        dtd = parse_dtd("<!ELEMENT a (b | c)>")
        assert dtd.get("a").children["b"].may_be_absent
        assert dtd.get("a").children["c"].may_be_absent

    def test_starred_choice(self):
        dtd = parse_dtd("<!ELEMENT a (b | c)*>")
        assert dtd.get("a").children["b"] is Cardinality.STAR

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em)*>")
        assert dtd.get("p").has_text
        assert dtd.get("p").children["em"] is Cardinality.STAR

    def test_nested_groups_flattened(self):
        dtd = parse_dtd("<!ELEMENT a (b, (c | d)*)>")
        decl = dtd.get("a")
        assert decl.children["b"] is Cardinality.ONE
        assert decl.children["c"] is Cardinality.STAR
        assert decl.children["d"] is Cardinality.STAR

    def test_duplicate_child_repeats(self):
        dtd = parse_dtd("<!ELEMENT a (b, c, b)>")
        assert dtd.get("a").children["b"].may_repeat

    def test_root_defaults_to_first(self):
        dtd = parse_dtd("<!ELEMENT r (x)><!ELEMENT x EMPTY>")
        assert dtd.root == "r"

    def test_explicit_root(self):
        dtd = parse_dtd("<!ELEMENT r (x)><!ELEMENT x EMPTY>", root="x")
        assert dtd.root == "x"


class TestAttlist:
    def test_required_and_implied(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY>"
            "<!ATTLIST a id CDATA #REQUIRED note CDATA #IMPLIED>"
        )
        decl = dtd.get("a")
        assert decl.attributes["id"].required
        assert not decl.attributes["note"].required

    def test_attlist_before_element(self):
        dtd = parse_dtd(
            "<!ATTLIST a id CDATA #REQUIRED><!ELEMENT a EMPTY>"
        )
        assert dtd.get("a").attributes["id"].required

    def test_enumerated_attribute(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a kind (x|y) \"x\">"
        )
        assert "kind" in dtd.get("a").attributes


class TestErrors:
    def test_garbage_rejected(self):
        with pytest.raises(DtdParseError):
            parse_dtd("not a dtd at all")

    def test_bad_content_model(self):
        with pytest.raises(DtdParseError):
            parse_dtd("<!ELEMENT a b>")

    def test_unbalanced_group(self):
        with pytest.raises(DtdParseError):
            parse_dtd("<!ELEMENT a (b, (c)>")

    def test_comments_skipped(self):
        dtd = parse_dtd(
            "<!-- a comment --><!ELEMENT a (b)><!ELEMENT b EMPTY>"
        )
        assert "a" in dtd


class TestDblpFragment:
    def test_paper_cardinalities(self):
        from repro.datagen.dblp import DBLP_DTD

        dtd = parse_dtd(DBLP_DTD)
        article = dtd.get("article")
        assert article.children["author"] is Cardinality.STAR
        assert article.children["month"] is Cardinality.OPTIONAL
        assert article.children["year"] is Cardinality.ONE
        assert article.children["journal"] is Cardinality.ONE
        assert article.attributes["key"].required
