"""The Sec. 4.6 algorithm advisor.

"In summary, summarizability together with cube characteristics
determine the choice of the algorithm.  The bottom-up algorithm is best
in average for a high dimensional cube.  The counter-based is best for
a low dimensional cube.  Only if the cube is dense and total coverage
is known to hold that we can efficiently use the top-down algorithm.
Knowing that disjointness holds does also improve the performance for
both the top-down and the bottom-up algorithms."

:func:`choose_algorithm` encodes that guidance (correctness gating
first, cube characteristics second); :func:`recommend_for_table`
derives the characteristics from a fact table.  The
:class:`~repro.core.estimate.CostEstimator` complements this with
quantitative predictions; the advisor stays rule-based because its
job includes *correctness* gating, which no cost model captures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bindings import FactTable
from repro.core.properties import PropertyOracle


@dataclass(frozen=True)
class Recommendation:
    """The Sec. 4.6 decision, with its reasoning."""

    algorithm: str
    rationale: str


def choose_algorithm(
    oracle: PropertyOracle,
    dense: bool,
    n_axes: int,
    cube_cells_estimate: int,
    memory_entries: int,
) -> Recommendation:
    """The paper's closing guidance as a decision procedure."""
    disjoint = oracle.globally_disjoint()
    covered = oracle.globally_covered()
    if cube_cells_estimate <= memory_entries and n_axes <= 4:
        return Recommendation(
            "COLUMNAR",
            "low-dimensional cube that fits the counter budget: the "
            "single-pass counter strategy is optimal (Sec. 4.6), and the "
            "vectorized columnar sweep is its fastest implementation",
        )
    if dense and covered and disjoint:
        return Recommendation(
            "TDOPTALL",
            "dense cube with both summarizability properties: pure "
            "top-down roll-up wins (Fig. 8), running as columnar "
            "group-id remaps on the encoded columns",
        )
    if disjoint:
        return Recommendation(
            "BUCOPT",
            "disjointness holds: bottom-up with exclusive partitioning "
            "is safe and fastest for sparse/high-dimensional cubes "
            "(Figs. 4-7); the columnar kernel partitions by code-range "
            "slicing with vectorized gathers",
        )
    lattice = oracle.lattice
    partially_disjoint = any(
        oracle.axis_disjoint(position, states.rigid_index)
        for position, states in enumerate(lattice.axis_states)
    )
    if partially_disjoint:
        return Recommendation(
            "BUCCUST",
            "disjointness holds on some axes only: the customized "
            "bottom-up algorithm exploits it locally while staying "
            "correct (Sec. 4.5)",
        )
    return Recommendation(
        "BUC",
        "no summarizability property is safe to assume: the safe "
        "bottom-up algorithm is the best always-correct choice "
        "(Sec. 4.6: 'we may have no choice but to use' the safe ones)",
    )


def recommend_for_table(
    table: FactTable,
    oracle: PropertyOracle,
    memory_entries: int,
) -> Recommendation:
    """Derive the cube characteristics from the table, then decide."""
    lattice = table.lattice
    cells = 0
    for point in lattice.points():
        keys = set()
        for row in table.rows:
            keys.update(table.key_combinations(row, point))
        cells += len(keys)
    n_facts = max(1, len(table))
    top_keys = set()
    for row in table.rows:
        top_keys.update(table.key_combinations(row, lattice.top))
    dense = len(top_keys) < 0.5 * n_facts
    return choose_algorithm(
        oracle,
        dense=dense,
        n_axes=lattice.axis_count,
        cube_cells_estimate=cells,
        memory_entries=memory_entries,
    )
