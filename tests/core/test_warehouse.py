"""Unit tests for the warehouse facade and the Sec. 4.6 advisor."""

import pytest

from repro.core.cube import compute_cube
from repro.core.properties import PropertyOracle
from repro.datagen.dblp import DBLP_DTD, DblpConfig, generate_dblp
from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.errors import QueryError
from repro.schema.dtd_parser import parse_dtd
from repro.warehouse import Recommendation, XmlWarehouse, choose_algorithm
from repro.xmlmodel.serializer import serialize


class TestChooseAlgorithm:
    def _oracle(self, lattice, disjoint, covered):
        return PropertyOracle.from_flags(lattice, disjoint, covered)

    def _lattice(self):
        from repro.datagen.publications import query1

        return query1().lattice()

    def test_columnar_counter_for_small_low_dimensional(self):
        oracle = self._oracle(self._lattice(), False, False)
        rec = choose_algorithm(
            oracle, dense=True, n_axes=3,
            cube_cells_estimate=100, memory_entries=10_000,
        )
        assert rec.algorithm == "COLUMNAR"

    def test_tdoptall_for_dense_summarizable(self):
        oracle = self._oracle(self._lattice(), True, True)
        rec = choose_algorithm(
            oracle, dense=True, n_axes=6,
            cube_cells_estimate=10**6, memory_entries=10_000,
        )
        assert rec.algorithm == "TDOPTALL"

    def test_bucopt_when_disjoint(self):
        oracle = self._oracle(self._lattice(), True, False)
        rec = choose_algorithm(
            oracle, dense=False, n_axes=6,
            cube_cells_estimate=10**6, memory_entries=10_000,
        )
        assert rec.algorithm == "BUCOPT"

    def test_buccust_with_partial_disjointness(self):
        from repro.datagen.dblp import dblp_dtd, dblp_query

        lattice = dblp_query().lattice()
        oracle = PropertyOracle.from_schema(lattice, dblp_dtd(), "article")
        rec = choose_algorithm(
            oracle, dense=False, n_axes=4,
            cube_cells_estimate=10**6, memory_entries=10_000,
        )
        assert rec.algorithm == "BUCCUST"

    def test_safe_buc_fallback(self):
        oracle = self._oracle(self._lattice(), False, False)
        rec = choose_algorithm(
            oracle, dense=False, n_axes=6,
            cube_cells_estimate=10**6, memory_entries=10_000,
        )
        assert rec.algorithm == "BUC"
        assert "correct" in rec.rationale


class TestXmlWarehouse:
    def test_empty_warehouse_rejects_query(self):
        with pytest.raises(QueryError):
            XmlWarehouse().query(QUERY1_TEXT)

    def test_end_to_end_with_inferred_schema(self):
        warehouse = XmlWarehouse()
        warehouse.add(serialize(figure1_document()))
        session = warehouse.query(QUERY1_TEXT)
        cube = session.compute()
        assert session.cuboid("$n:LND, $p:LND, $y:rigid") == {
            ("2003",): 2.0, ("2004",): 1.0, ("2005",): 1.0,
        }
        # The chosen algorithm must be a correct one on this data.
        reference = compute_cube(session.table, "NAIVE")
        assert cube.same_contents(reference)

    def test_declared_dtd_drives_oracle(self):
        warehouse = XmlWarehouse(dtd=parse_dtd(DBLP_DTD))
        warehouse.add(serialize(generate_dblp(DblpConfig(n_articles=60))))
        text = (
            'for $a in doc("dblp.xml")//article, $y in $a/year, '
            "$j in $a/journal X^3 $a/@key by $y (LND), $j (LND) "
            "return COUNT($a)."
        )
        session = warehouse.query(text)
        report = session.properties_report()
        assert report["$y"] == (True, True)
        assert report["$j"] == (True, True)

    def test_inferred_dtd_refreshes_on_add(self):
        warehouse = XmlWarehouse()
        warehouse.add("<db><f><a>1</a></f></db>")
        first = warehouse.dtd
        assert not first.get("f").children["a"].may_be_absent
        warehouse.add("<db><f/></db>")
        second = warehouse.dtd
        assert second.get("f").children["a"].may_be_absent

    def test_recommendation_shapes(self):
        warehouse = XmlWarehouse()
        warehouse.add(serialize(figure1_document()))
        session = warehouse.query(QUERY1_TEXT)
        rec = session.recommend()
        assert isinstance(rec, Recommendation)
        assert rec.algorithm in {
            "COUNTER", "COLUMNAR", "BUC", "BUCOPT", "BUCCUST", "TDOPTALL",
        }

    def test_fact_count(self):
        warehouse = XmlWarehouse()
        warehouse.add(serialize(figure1_document()))
        warehouse.add(serialize(figure1_document()))
        assert warehouse.fact_count("publication") == 8

    def test_structured_query_accepted(self):
        from repro.datagen.publications import query1

        warehouse = XmlWarehouse()
        warehouse.add(serialize(figure1_document()))
        session = warehouse.query(query1())
        assert len(session.table) == 4

    def test_result_property_computes_lazily(self):
        warehouse = XmlWarehouse()
        warehouse.add(serialize(figure1_document()))
        session = warehouse.query(QUERY1_TEXT)
        assert session.result.total_cells() > 0
